//! Incremental merging: patching an [`IntegratedView`] in place under
//! conformed-object deltas instead of rebuilding it from scratch.
//!
//! [`IncrementalMerge`] owns the conformed pair and the integrated view
//! plus the auxiliary state a from-scratch [`crate::merge`] recomputes
//! every time: per-rule join-key indexes, the match adjacency, active
//! similarity memberships, union-find groups keyed by their minimum
//! member id, a reverse-reference index, and the per-class extent sets /
//! per-(local class, remote class) overlap counters driving hierarchy
//! inference. [`IncrementalMerge::apply`] feeds a batch of
//! [`ConformedDelta`]s (produced by `interop_conform`'s per-object
//! re-conformation) through that state and patches only what the deltas
//! can reach.
//!
//! # Invariants
//!
//! * **Patched output equals a from-scratch merge byte for byte.** Every
//!   identity is a pure function of content: group ids derive from the
//!   minimum member id ([`global_id_for`]), leaders are
//!   order-independent, and all outputs are emitted from sorted
//!   collections — so the insertion-order permutations that patching
//!   introduces in the conformed extents cannot leak into the view
//!   (differentially tested against [`crate::merge`] on randomized
//!   mutation sequences).
//! * **Re-matching is closed over references.** A delta's *touched set*
//!   is expanded transitively through the reverse-reference index before
//!   rules re-run, because interobject conditions and similarity
//!   formulas navigate paths; groups whose members merely *reference* a
//!   re-grouped object are re-fused (one level — a member's own id never
//!   changes from re-fusing).
//! * **Counters never go negative.** Unmerging a group decrements extent
//!   sets and overlap counters with explicit underflow checks; a failed
//!   check surfaces as a [`MergeError`] instead of silently corrupting
//!   hierarchy inference.
//! * **Anomaly notes are keyed by global id** and re-emitted whenever a
//!   group is re-fused, so the concatenated note list stays in the
//!   ascending-gid order the scratch pass produces.

use std::collections::{BTreeMap, BTreeSet};

use interop_conform::{apply_deltas, Conformed, ConformedDelta};
use interop_constraint::eval::{eval_formula, eval_path_ref, Truth};
use interop_constraint::{CmpOp, Formula, Path};
use interop_model::{ClassName, FxHashMap, Object, ObjectId, Value};
use interop_spec::{Relationship, Side};

use crate::fuse::{global_id_for, Fuser, GlobalObject};
use crate::hierarchy::{chain_any, ChainSide, Hierarchy, IntersectionClass};
use crate::resolve::{check_pair, resolve, MergeError};
use crate::view::{merge, IntegratedView, MergeOptions};

/// One compiled equality rule plus its maintained join-key indexes.
struct EqRule {
    /// Position in `conf.spec.rules` (for [`check_pair`]).
    ridx: usize,
    /// Counterpart (local-side) class.
    local_class: ClassName,
    /// Subject (remote-side) class.
    remote_class: ClassName,
    /// The hash-join key paths (first equality interobject condition),
    /// if any; rules without one fall back to a nested-loop re-check.
    join_local: Option<Path>,
    join_remote: Option<Path>,
    /// A join-index hit *is* the match (single equality condition, no
    /// intraobject gates) — mirrors the scratch resolver's fast path.
    bucket_decides: bool,
    /// join key → local ids currently carrying it.
    l_index: FxHashMap<Value, BTreeSet<ObjectId>>,
    /// join key → remote ids currently carrying it.
    r_index: FxHashMap<Value, BTreeSet<ObjectId>>,
    /// id → the key it is indexed under (both sides; spaces disjoint).
    /// Needed to unindex an object whose key can no longer be computed
    /// from the patched database.
    keyed: FxHashMap<ObjectId, Value>,
}

/// One compiled similarity rule.
struct SimRule {
    /// Position in `conf.spec.rules`.
    ridx: usize,
    /// The target class on the other side.
    target: ClassName,
    /// The virtual common superclass (approximate similarity only).
    virtual_class: Option<ClassName>,
}

/// The incremental merge engine: a patchable [`IntegratedView`] over an
/// owned conformed pair.
///
/// Built once from a conformed pair (paying one from-scratch merge),
/// then fed conformed deltas via [`IncrementalMerge::apply`]; the
/// maintained view is always byte-identical to what [`merge`] would
/// produce on the patched pair.
pub struct IncrementalMerge {
    conf: Conformed,
    opts: MergeOptions,
    eq_rules: Vec<EqRule>,
    sim_rules: Vec<SimRule>,
    /// Match adjacency: conformed id → matched ids on the other side.
    pairs_of: FxHashMap<ObjectId, BTreeSet<ObjectId>>,
    /// Active similarity memberships as `(sim-rule index, subject id)`.
    sim_active: BTreeSet<(u32, ObjectId)>,
    /// Conformed id → its group's leader (minimum member id).
    leader_of: FxHashMap<ObjectId, ObjectId>,
    /// Leader → ascending member ids.
    members_of: FxHashMap<ObjectId, Vec<ObjectId>>,
    /// Reverse references: conformed target id → conformed source ids.
    referrers: FxHashMap<ObjectId, BTreeSet<ObjectId>>,
    /// Memoised per-class side + upward closure (schemas never change).
    chain_cache: FxHashMap<ClassName, (ChainSide, Vec<ClassName>)>,
    /// Accumulated per-class extents (global ids), mirroring the scratch
    /// pass-1 accumulator.
    class_ext: BTreeMap<ClassName, BTreeSet<ObjectId>>,
    /// Per-(local class, remote class) overlap counters.
    overlap: BTreeMap<(ClassName, ClassName), u64>,
    /// Static `isa` edges from both conformed schemas.
    schema_edges: BTreeSet<(ClassName, ClassName)>,
    /// Fusion anomaly notes per global object (ascending-gid concat
    /// reproduces the scratch note order).
    notes_by_gid: BTreeMap<ObjectId, Vec<String>>,
    view: IntegratedView,
}

impl IncrementalMerge {
    /// Builds the engine from a conformed pair, paying one from-scratch
    /// merge to seed the view and the maintained indexes.
    pub fn new(conf: Conformed, opts: MergeOptions) -> Result<Self, MergeError> {
        let view = merge(&conf, &opts)?;
        let mut eq_rules = Vec::new();
        let mut sim_rules = Vec::new();
        for (ridx, rule) in conf.spec.rules.iter().enumerate() {
            match &rule.relationship {
                Relationship::Equality => {
                    let local_class = rule
                        .counterpart_class
                        .clone()
                        .ok_or_else(|| MergeError::UnknownClass(ClassName::new("<missing>")))?;
                    let join = rule.inter.iter().find(|ic| ic.op == CmpOp::Eq);
                    let bucket_decides = join.is_some()
                        && rule.inter.len() == 1
                        && rule.intra_counterpart == Formula::True
                        && rule.intra_subject == Formula::True;
                    eq_rules.push(EqRule {
                        ridx,
                        local_class,
                        remote_class: rule.subject_class.clone(),
                        join_local: join.map(|ic| ic.local.clone()),
                        join_remote: join.map(|ic| ic.remote.clone()),
                        bucket_decides,
                        l_index: FxHashMap::default(),
                        r_index: FxHashMap::default(),
                        keyed: FxHashMap::default(),
                    });
                }
                Relationship::StrictSimilarity { class } => sim_rules.push(SimRule {
                    ridx,
                    target: class.clone(),
                    virtual_class: None,
                }),
                Relationship::ApproxSimilarity {
                    class,
                    virtual_class,
                } => sim_rules.push(SimRule {
                    ridx,
                    target: class.clone(),
                    virtual_class: Some(virtual_class.clone()),
                }),
                _ => {}
            }
        }
        let mut schema_edges = BTreeSet::new();
        for schema in [&conf.local.db.schema, &conf.remote.db.schema] {
            for def in schema.classes() {
                if let Some(p) = &def.parent {
                    schema_edges.insert((def.name.clone(), p.clone()));
                }
            }
        }
        let mut this = IncrementalMerge {
            conf,
            opts,
            eq_rules,
            sim_rules,
            pairs_of: FxHashMap::default(),
            sim_active: BTreeSet::new(),
            leader_of: FxHashMap::default(),
            members_of: FxHashMap::default(),
            referrers: FxHashMap::default(),
            chain_cache: FxHashMap::default(),
            class_ext: BTreeMap::new(),
            overlap: BTreeMap::new(),
            schema_edges,
            notes_by_gid: BTreeMap::new(),
            view,
        };
        this.seed()?;
        Ok(this)
    }

    /// The maintained integrated view.
    pub fn view(&self) -> &IntegratedView {
        &self.view
    }

    /// The owned (patched) conformed pair.
    pub fn conformed(&self) -> &Conformed {
        &self.conf
    }

    /// Applies a batch of conformed deltas for one side, patching the
    /// view in place. Returns the patched view.
    pub fn apply(
        &mut self,
        side: Side,
        deltas: &[ConformedDelta],
    ) -> Result<&IntegratedView, MergeError> {
        if deltas.is_empty() {
            return Ok(&self.view);
        }
        // 1. Snapshot the pre-patch versions of directly touched ids
        //    (needed to unhook references the patch removes).
        let mut touched: BTreeSet<ObjectId> = BTreeSet::new();
        for d in deltas {
            touched.insert(match d {
                ConformedDelta::Upserted(o) => o.id,
                ConformedDelta::Removed(id) => *id,
            });
        }
        let db = match side {
            Side::Local => &self.conf.local.db,
            Side::Remote => &self.conf.remote.db,
        };
        let old_objs: FxHashMap<ObjectId, Option<Object>> = touched
            .iter()
            .map(|&id| (id, db.object(id).cloned()))
            .collect();
        // 2. Patch the conformed database.
        {
            let db = match side {
                Side::Local => &mut self.conf.local.db,
                Side::Remote => &mut self.conf.remote.db,
            };
            apply_deltas(db, deltas).map_err(|e| MergeError::Model(e.to_string()))?;
        }
        // 3. Maintain the reverse-reference index.
        for (&id, old) in &old_objs {
            if let Some(o) = old {
                for t in ref_targets(o) {
                    if let Some(s) = self.referrers.get_mut(&t) {
                        s.remove(&id);
                        if s.is_empty() {
                            self.referrers.remove(&t);
                        }
                    }
                }
            }
        }
        {
            let db = match side {
                Side::Local => &self.conf.local.db,
                Side::Remote => &self.conf.remote.db,
            };
            for &id in old_objs.keys() {
                if let Some(o) = db.object(id) {
                    for t in ref_targets(o) {
                        self.referrers.entry(t).or_default().insert(id);
                    }
                }
            }
        }
        // 4. Close the touched set over referrers: interobject conditions
        //    and similarity formulas navigate paths, so anything that
        //    (transitively) references a touched object can change its
        //    match status without changing itself.
        let mut queue: Vec<ObjectId> = touched.iter().copied().collect();
        while let Some(t) = queue.pop() {
            if let Some(srcs) = self.referrers.get(&t) {
                for &s in srcs {
                    if touched.insert(s) {
                        queue.push(s);
                    }
                }
            }
        }
        // 5. Re-match the closure: clear, re-index, re-probe.
        let mut seeds: BTreeSet<ObjectId> = touched.clone();
        for &t in &touched {
            if let Some(partners) = self.pairs_of.remove(&t) {
                for p in partners {
                    seeds.insert(p);
                    if let Some(sp) = self.pairs_of.get_mut(&p) {
                        sp.remove(&t);
                        if sp.is_empty() {
                            self.pairs_of.remove(&p);
                        }
                    }
                }
            }
            for er in &mut self.eq_rules {
                if let Some(key) = er.keyed.remove(&t) {
                    for index in [&mut er.l_index, &mut er.r_index] {
                        if let Some(s) = index.get_mut(&key) {
                            s.remove(&t);
                            if s.is_empty() {
                                index.remove(&key);
                            }
                        }
                    }
                }
            }
            for si in 0..self.sim_rules.len() as u32 {
                self.sim_active.remove(&(si, t));
            }
        }
        for &t in &touched {
            self.index_object(t)?;
        }
        let mut new_pairs: Vec<(ObjectId, ObjectId)> = Vec::new();
        for &t in &touched {
            self.probe_object(t, &mut new_pairs)?;
            self.sim_object(t)?;
        }
        for (l, r) in new_pairs {
            seeds.insert(l);
            seeds.insert(r);
            self.pairs_of.entry(l).or_default().insert(r);
            self.pairs_of.entry(r).or_default().insert(l);
        }
        // 6. Affected groups: every group holding a seed (touched ids
        //    plus endpoints of removed/added matches). Every match has at
        //    least one touched endpoint, so one round is closed.
        let mut affected_leaders: BTreeSet<ObjectId> = BTreeSet::new();
        let mut affected_members: BTreeSet<ObjectId> = BTreeSet::new();
        for &s in &seeds {
            match self.leader_of.get(&s) {
                Some(&l) => {
                    affected_leaders.insert(l);
                }
                None => {
                    affected_members.insert(s);
                }
            }
        }
        for &l in &affected_leaders {
            if let Some(ms) = self.members_of.get(&l) {
                affected_members.extend(ms.iter().copied());
            }
        }
        // 7. Unmerge the affected groups: remove their global objects and
        //    decrement their hierarchy contributions (underflow-checked).
        let mut old_gid: FxHashMap<ObjectId, ObjectId> = FxHashMap::default();
        for &l in &affected_leaders {
            let gid = global_id_for(l);
            let g = self.view.objects.remove(&gid).ok_or_else(|| {
                MergeError::Model(format!(
                    "incremental state desync: global object {gid} missing while unmerging"
                ))
            })?;
            self.decrement(&g)?;
            self.notes_by_gid.remove(&gid);
            for m in self.members_of.remove(&l).unwrap_or_default() {
                self.leader_of.remove(&m);
                self.view.id_map.remove(&m);
                old_gid.insert(m, gid);
            }
        }
        // 8. Regroup the surviving members with a local union-find
        //    (leader = minimum member id, as in the scratch pass).
        let live: Vec<ObjectId> = affected_members
            .iter()
            .copied()
            .filter(|&m| conf_object(&self.conf, m).is_some())
            .collect();
        let groups = regroup(&live, &self.pairs_of);
        let mut changed: BTreeSet<ObjectId> = BTreeSet::new();
        for (l, members) in &groups {
            let gid = global_id_for(*l);
            if self.view.objects.contains_key(&gid) {
                return Err(MergeError::Model(format!(
                    "global id collision: group of leader {l} packs to already-assigned id {gid}"
                )));
            }
            for &m in members {
                self.view.id_map.insert(m, gid);
                self.leader_of.insert(m, *l);
            }
            self.members_of.insert(*l, members.clone());
        }
        for (&m, &og) in &old_gid {
            if self.view.id_map.get(&m) != Some(&og) {
                changed.insert(m);
            }
        }
        for (l, members) in &groups {
            let gid = global_id_for(*l);
            for &m in members {
                if old_gid.get(&m) != Some(&gid) {
                    changed.insert(m);
                }
            }
        }
        // 9. Re-fuse the new groups against the updated id map.
        let fused_new = self.fuse_groups(groups.iter().map(|(l, m)| (*l, m.as_slice())));
        for (gid, g, notes) in fused_new {
            self.increment(&g);
            if !notes.is_empty() {
                self.notes_by_gid.insert(gid, notes);
            }
            self.view.objects.insert(gid, g);
        }
        // 10. Reference cascade: groups whose members reference an id
        //     with a changed global id carry stale `Ref` values — re-fuse
        //     them in place (their own ids and classes are unchanged, so
        //     counters stay put).
        let new_leaders: BTreeSet<ObjectId> = groups.iter().map(|(l, _)| *l).collect();
        let mut cascade: BTreeSet<ObjectId> = BTreeSet::new();
        for c in &changed {
            if let Some(srcs) = self.referrers.get(c) {
                for s in srcs {
                    if let Some(&l) = self.leader_of.get(s) {
                        if !new_leaders.contains(&l) {
                            cascade.insert(l);
                        }
                    }
                }
            }
        }
        let cascade_groups: Vec<(ObjectId, Vec<ObjectId>)> = cascade
            .iter()
            .map(|&l| (l, self.members_of[&l].clone()))
            .collect();
        let refused = self.fuse_groups(cascade_groups.iter().map(|(l, m)| (*l, m.as_slice())));
        for (gid, g, notes) in refused {
            debug_assert_eq!(
                self.view.objects[&gid].classes, g.classes,
                "cascade re-fuse must not change class memberships"
            );
            if notes.is_empty() {
                self.notes_by_gid.remove(&gid);
            } else {
                self.notes_by_gid.insert(gid, notes);
            }
            self.view.objects.insert(gid, g);
        }
        // 11. Re-derive the hierarchy from the patched counters and the
        //     notes from the per-gid map.
        let h = self.rebuild_hierarchy();
        self.view.hierarchy = h;
        self.view.notes = self
            .notes_by_gid
            .values()
            .flat_map(|v| v.iter().cloned())
            .collect();
        Ok(&self.view)
    }

    /// Seeds the maintained indexes from a from-scratch resolution of
    /// the owned pair (so the initial state matches [`merge`] exactly).
    fn seed(&mut self) -> Result<(), MergeError> {
        for o in self
            .conf
            .local
            .db
            .objects()
            .chain(self.conf.remote.db.objects())
        {
            for t in ref_targets(o) {
                self.referrers.entry(t).or_default().insert(o.id);
            }
        }
        let (eqs, sims) = resolve(&self.conf)?;
        for m in &eqs {
            self.pairs_of.entry(m.local).or_default().insert(m.remote);
            self.pairs_of.entry(m.remote).or_default().insert(m.local);
        }
        let by_id: FxHashMap<&str, u32> = self
            .sim_rules
            .iter()
            .enumerate()
            .map(|(si, sr)| (self.conf.spec.rules[sr.ridx].id.as_str(), si as u32))
            .collect();
        for s in &sims {
            let si = *by_id
                .get(s.rule.as_str())
                .ok_or_else(|| MergeError::Model(format!("unknown similarity rule {}", s.rule)))?;
            self.sim_active.insert((si, s.subject));
        }
        let all: Vec<ObjectId> = self
            .conf
            .local
            .db
            .objects()
            .chain(self.conf.remote.db.objects())
            .map(|o| o.id)
            .collect();
        for id in all {
            self.index_object(id)?;
        }
        // Group state from the seeded view's id map.
        let mut members_by_gid: BTreeMap<ObjectId, Vec<ObjectId>> = BTreeMap::new();
        for (&cid, &gid) in &self.view.id_map {
            members_by_gid.entry(gid).or_default().push(cid);
        }
        for (gid, members) in members_by_gid {
            let leader = members[0];
            debug_assert_eq!(global_id_for(leader), gid);
            for &m in &members {
                self.leader_of.insert(m, leader);
            }
            self.members_of.insert(leader, members);
        }
        for g in self.view.objects.values() {
            let (ext, lset, rset) = contribution(
                &mut self.chain_cache,
                &self.conf.local.db.schema,
                &self.conf.remote.db.schema,
                g,
            );
            for c in ext {
                self.class_ext.entry(c).or_default().insert(g.id);
            }
            for a in &lset {
                for b in &rset {
                    *self.overlap.entry((a.clone(), b.clone())).or_insert(0) += 1;
                }
            }
        }
        // Regenerate the per-group anomaly notes (notes depend only on a
        // group's members, which fuse in ascending-id order).
        let group_list: Vec<(ObjectId, Vec<ObjectId>)> = self
            .view
            .objects
            .keys()
            .map(|&gid| {
                let leader = leader_of_gid(gid);
                (leader, self.members_of[&leader].clone())
            })
            .collect();
        let fused = self.fuse_groups(group_list.iter().map(|(l, m)| (*l, m.as_slice())));
        for (gid, _, notes) in fused {
            if !notes.is_empty() {
                self.notes_by_gid.insert(gid, notes);
            }
        }
        debug_assert_eq!(
            self.view.notes,
            self.notes_by_gid
                .values()
                .flat_map(|v| v.iter().cloned())
                .collect::<Vec<_>>(),
            "seeded per-gid notes must concatenate to the scratch note list"
        );
        Ok(())
    }

    /// (Re-)indexes one object's join keys into every applicable rule.
    fn index_object(&mut self, id: ObjectId) -> Result<(), MergeError> {
        let Some((side, obj)) = conf_object(&self.conf, id) else {
            return Ok(());
        };
        for er in &mut self.eq_rules {
            let (rule_class, jpath, db, index) = match side {
                Side::Local => (
                    &er.local_class,
                    er.join_local.as_ref(),
                    &self.conf.local.db,
                    &mut er.l_index,
                ),
                Side::Remote => (
                    &er.remote_class,
                    er.join_remote.as_ref(),
                    &self.conf.remote.db,
                    &mut er.r_index,
                ),
            };
            if !db.schema.is_subclass(&obj.class, rule_class) {
                continue;
            }
            let Some(jp) = jpath else {
                continue; // nested-loop rule: nothing to index
            };
            let key = eval_path_ref(db, obj, jp)?.into_owned();
            if key.is_null() {
                continue;
            }
            index.entry(key.clone()).or_default().insert(id);
            er.keyed.insert(id, key);
        }
        Ok(())
    }

    /// Re-evaluates every equality rule for one object, pushing matched
    /// pairs as `(local, remote)`.
    fn probe_object(
        &self,
        id: ObjectId,
        out: &mut Vec<(ObjectId, ObjectId)>,
    ) -> Result<(), MergeError> {
        let Some((side, obj)) = conf_object(&self.conf, id) else {
            return Ok(());
        };
        for er in &self.eq_rules {
            let rule = &self.conf.spec.rules[er.ridx];
            match side {
                Side::Local => {
                    if !self
                        .conf
                        .local
                        .db
                        .schema
                        .is_subclass(&obj.class, &er.local_class)
                    {
                        continue;
                    }
                    let cands: Vec<ObjectId> = match &er.join_local {
                        Some(jp) => {
                            let key = eval_path_ref(&self.conf.local.db, obj, jp)?;
                            if key.is_null() {
                                continue;
                            }
                            er.r_index
                                .get(key.as_ref())
                                .map(|s| s.iter().copied().collect())
                                .unwrap_or_default()
                        }
                        None => self.conf.remote.db.extension(&er.remote_class),
                    };
                    for c in cands {
                        let robj = self.conf.remote.db.object(c).ok_or_else(|| {
                            MergeError::Model(format!("unknown conformed object {c}"))
                        })?;
                        if er.bucket_decides || check_pair(&self.conf, rule, obj, robj)? {
                            out.push((id, c));
                        }
                    }
                }
                Side::Remote => {
                    if !self
                        .conf
                        .remote
                        .db
                        .schema
                        .is_subclass(&obj.class, &er.remote_class)
                    {
                        continue;
                    }
                    let cands: Vec<ObjectId> = match &er.join_remote {
                        Some(jp) => {
                            let key = eval_path_ref(&self.conf.remote.db, obj, jp)?;
                            if key.is_null() {
                                continue;
                            }
                            er.l_index
                                .get(key.as_ref())
                                .map(|s| s.iter().copied().collect())
                                .unwrap_or_default()
                        }
                        None => self.conf.local.db.extension(&er.local_class),
                    };
                    for c in cands {
                        let lobj = self.conf.local.db.object(c).ok_or_else(|| {
                            MergeError::Model(format!("unknown conformed object {c}"))
                        })?;
                        if er.bucket_decides || check_pair(&self.conf, rule, lobj, obj)? {
                            out.push((c, id));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Re-evaluates every similarity rule for one object.
    fn sim_object(&mut self, id: ObjectId) -> Result<(), MergeError> {
        let Some((side, obj)) = conf_object(&self.conf, id) else {
            return Ok(());
        };
        for (si, sr) in self.sim_rules.iter().enumerate() {
            let rule = &self.conf.spec.rules[sr.ridx];
            if rule.subject_side != side {
                continue;
            }
            let db = match side {
                Side::Local => &self.conf.local.db,
                Side::Remote => &self.conf.remote.db,
            };
            if !db.schema.is_subclass(&obj.class, &rule.subject_class) {
                continue;
            }
            if eval_formula(db, obj, &rule.intra_subject)? == Truth::True {
                self.sim_active.insert((si as u32, id));
            }
        }
        Ok(())
    }

    /// Fuses the given groups (leader, ascending members) against the
    /// current id map, returning `(gid, object, notes)` per group.
    fn fuse_groups<'g>(
        &self,
        groups: impl Iterator<Item = (ObjectId, &'g [ObjectId])>,
    ) -> Vec<(ObjectId, GlobalObject, Vec<String>)> {
        let mut fuser = Fuser::new(&self.conf);
        let global_of = |id: ObjectId| self.view.id_map.get(&id).copied();
        let mut out = Vec::new();
        for (leader, members) in groups {
            let gid = global_id_for(leader);
            let sim_classes = self.sim_classes_of(members);
            let mut notes = Vec::new();
            let g = fuser.fuse_group(
                gid,
                members.iter().map(|&m| {
                    conf_object(&self.conf, m).expect("group members are live conformed objects")
                }),
                &sim_classes,
                &global_of,
                &mut notes,
            );
            out.push((gid, g, notes));
        }
        out
    }

    /// The sorted, deduplicated similarity class memberships of a group
    /// (target class, or the virtual superclass for approximate rules).
    fn sim_classes_of(&self, members: &[ObjectId]) -> Vec<ClassName> {
        let mut set: BTreeSet<ClassName> = BTreeSet::new();
        for &m in members {
            for (si, sr) in self.sim_rules.iter().enumerate() {
                if self.sim_active.contains(&(si as u32, m)) {
                    set.insert(
                        sr.virtual_class
                            .clone()
                            .unwrap_or_else(|| sr.target.clone()),
                    );
                }
            }
        }
        set.into_iter().collect()
    }

    /// Adds a global object's extent/overlap contribution.
    /// Validates the patched counter state against a from-scratch
    /// recount over the maintained view, plus hierarchy acyclicity.
    ///
    /// The counters are unsigned and every decrement underflow-checks,
    /// so negativity is unrepresentable — what this verifies is the
    /// stronger invariant the property suites lean on: after any patch
    /// sequence, every per-class extent and per-(local, remote) overlap
    /// counter equals what seeding from the current view would produce
    /// (no drift in either direction), and the inferred hierarchy is
    /// still a DAG.
    pub fn check_invariants(&mut self) -> Result<(), String> {
        let mut ext: BTreeMap<ClassName, BTreeSet<ObjectId>> = BTreeMap::new();
        let mut ovl: BTreeMap<(ClassName, ClassName), u64> = BTreeMap::new();
        for g in self.view.objects.values() {
            let (e, lset, rset) = contribution(
                &mut self.chain_cache,
                &self.conf.local.db.schema,
                &self.conf.remote.db.schema,
                g,
            );
            for c in e {
                ext.entry(c).or_default().insert(g.id);
            }
            for a in &lset {
                for b in &rset {
                    *ovl.entry((a.clone(), b.clone())).or_insert(0) += 1;
                }
            }
        }
        if ext != self.class_ext {
            return Err("patched class extents drifted from a scratch recount".into());
        }
        if ovl != self.overlap {
            return Err("patched overlap counters drifted from a scratch recount".into());
        }
        if !self.view.hierarchy.is_acyclic() {
            return Err("patched hierarchy is cyclic".into());
        }
        Ok(())
    }

    fn increment(&mut self, g: &GlobalObject) {
        let (ext, lset, rset) = contribution(
            &mut self.chain_cache,
            &self.conf.local.db.schema,
            &self.conf.remote.db.schema,
            g,
        );
        for c in ext {
            self.class_ext.entry(c).or_default().insert(g.id);
        }
        for a in &lset {
            for b in &rset {
                *self.overlap.entry((a.clone(), b.clone())).or_insert(0) += 1;
            }
        }
    }

    /// Removes a global object's extent/overlap contribution, erroring
    /// on underflow instead of corrupting the counters.
    fn decrement(&mut self, g: &GlobalObject) -> Result<(), MergeError> {
        let (ext, lset, rset) = contribution(
            &mut self.chain_cache,
            &self.conf.local.db.schema,
            &self.conf.remote.db.schema,
            g,
        );
        for c in ext {
            let removed = match self.class_ext.get_mut(&c) {
                Some(s) => {
                    let r = s.remove(&g.id);
                    if s.is_empty() {
                        self.class_ext.remove(&c);
                    }
                    r
                }
                None => false,
            };
            if !removed {
                return Err(MergeError::Model(format!(
                    "extent underflow: {} missing from class {c} while unmerging",
                    g.id
                )));
            }
        }
        for a in &lset {
            for b in &rset {
                let k = (a.clone(), b.clone());
                match self.overlap.get_mut(&k) {
                    Some(n) if *n > 1 => *n -= 1,
                    Some(_) => {
                        self.overlap.remove(&k);
                    }
                    None => {
                        return Err(MergeError::Model(format!(
                            "overlap counter underflow for ({a}, {b}) while unmerging {}",
                            g.id
                        )))
                    }
                }
            }
        }
        Ok(())
    }

    /// Re-derives the output [`Hierarchy`] from the maintained counters
    /// — the exact passes 2–4 of [`crate::hierarchy::infer_hierarchy`],
    /// with the per-object pass 1 replaced by the patched accumulators.
    fn rebuild_hierarchy(&self) -> Hierarchy {
        let mut h = Hierarchy {
            edges: self.schema_edges.clone(),
            ..Hierarchy::default()
        };
        // The overlap map iterates in ascending (local, remote) name
        // order — the order the scratch pass sorts its pairs into.
        for ((a, b), &shared) in &self.overlap {
            let ea = self.class_ext.get(a);
            let eb = self.class_ext.get(b);
            let na = ea.map_or(0, |s| s.len());
            let nb = eb.map_or(0, |s| s.len());
            let shared = shared as usize;
            let a_in_b = shared == na;
            let b_in_a = shared == nb;
            if a_in_b && b_in_a {
                h.edges.insert((b.clone(), a.clone()));
            } else if a_in_b {
                h.edges.insert((a.clone(), b.clone()));
            } else if b_in_a {
                h.edges.insert((b.clone(), a.clone()));
            } else {
                let inter: BTreeSet<ObjectId> = match (ea, eb) {
                    (Some(x), Some(y)) => x.intersection(y).copied().collect(),
                    _ => BTreeSet::new(),
                };
                debug_assert_eq!(inter.len(), shared);
                let name = self
                    .opts
                    .intersection_names
                    .get(&(a.clone(), b.clone()))
                    .cloned()
                    .unwrap_or_else(|| ClassName::new(format!("{b}And{a}")));
                h.extensions.insert(name.clone(), inter.clone());
                h.edges.insert((name.clone(), a.clone()));
                h.edges.insert((name.clone(), b.clone()));
                h.intersections.push(IntersectionClass {
                    name,
                    parents: (a.clone(), b.clone()),
                    extension: inter,
                });
            }
        }
        for (name, ids) in &self.class_ext {
            if !ids.is_empty() {
                h.extensions
                    .entry(name.clone())
                    .or_insert_with(|| ids.clone());
            }
        }
        for &(si, subject) in &self.sim_active {
            let sr = &self.sim_rules[si as usize];
            if let Some(v) = &sr.virtual_class {
                h.virtual_superclasses.insert(v.clone());
                let mut ext = h.extension(&sr.target).clone();
                if let Some(gid) = self.view.id_map.get(&subject) {
                    ext.insert(*gid);
                }
                h.extensions.entry(v.clone()).or_default().extend(ext);
                h.edges.insert((sr.target.clone(), v.clone()));
                let db = match self.conf.spec.rules[sr.ridx].subject_side {
                    Side::Local => &self.conf.local.db,
                    Side::Remote => &self.conf.remote.db,
                };
                if let Some(o) = db.object(subject) {
                    h.edges.insert((o.class.clone(), v.clone()));
                }
            }
        }
        h
    }
}

/// Looks up a conformed object (either side) with its side tag.
fn conf_object(conf: &Conformed, id: ObjectId) -> Option<(Side, &Object)> {
    if let Some(o) = conf.local.db.object(id) {
        return Some((Side::Local, o));
    }
    conf.remote.db.object(id).map(|o| (Side::Remote, o))
}

/// Every object id referenced from an object's values (sets included).
fn ref_targets(o: &Object) -> Vec<ObjectId> {
    fn walk(v: &Value, out: &mut Vec<ObjectId>) {
        match v {
            Value::Ref(id) => out.push(*id),
            Value::Set(items) => items.iter().for_each(|x| walk(x, out)),
            _ => {}
        }
    }
    let mut out = Vec::new();
    for v in o.attrs.values() {
        walk(v, &mut out);
    }
    out
}

/// Inverts [`global_id_for`]: the leader id a global id was packed from.
fn leader_of_gid(gid: ObjectId) -> ObjectId {
    ObjectId::new((gid.serial() >> 40) as u32, gid.serial() & ((1 << 40) - 1))
}

/// Partitions `live` (ascending ids) into match-connected groups, each
/// keyed by its minimum member id, with ascending members — exactly the
/// grouping the scratch union-find pass would produce for these members.
fn regroup(
    live: &[ObjectId],
    pairs_of: &FxHashMap<ObjectId, BTreeSet<ObjectId>>,
) -> Vec<(ObjectId, Vec<ObjectId>)> {
    let mut idx_of: FxHashMap<ObjectId, u32> = FxHashMap::default();
    for (i, &id) in live.iter().enumerate() {
        idx_of.insert(id, i as u32);
    }
    let mut parent: Vec<u32> = (0..live.len() as u32).collect();
    fn find(parent: &mut [u32], mut i: u32) -> u32 {
        while parent[i as usize] != i {
            let gp = parent[parent[i as usize] as usize];
            parent[i as usize] = gp;
            i = gp;
        }
        i
    }
    for (i, &id) in live.iter().enumerate() {
        let Some(partners) = pairs_of.get(&id) else {
            continue;
        };
        for p in partners {
            let Some(&j) = idx_of.get(p) else {
                debug_assert!(false, "match partner {p} outside the affected member set");
                continue;
            };
            let (ri, rj) = (find(&mut parent, i as u32), find(&mut parent, j));
            if ri != rj {
                // Ids ascend with indices, so the smaller root index is
                // the smaller id: rooting there keeps leader = min id.
                let (lo, hi) = (ri.min(rj), ri.max(rj));
                parent[hi as usize] = lo;
            }
        }
    }
    let mut groups: BTreeMap<u32, Vec<ObjectId>> = BTreeMap::new();
    for (i, &id) in live.iter().enumerate() {
        groups
            .entry(find(&mut parent, i as u32))
            .or_default()
            .push(id);
    }
    groups
        .into_values()
        .map(|members| (members[0], members))
        .collect()
}

/// A global object's hierarchy contribution: the deduplicated upward
/// closure of its classes (extent membership) and the distinct local- /
/// remote-side chain classes (overlap counting) — the same dedup the
/// scratch pass-1 applies per object.
// (tests live at the bottom of this file)
fn contribution(
    cache: &mut FxHashMap<ClassName, (ChainSide, Vec<ClassName>)>,
    local: &interop_model::Schema,
    remote: &interop_model::Schema,
    g: &GlobalObject,
) -> (Vec<ClassName>, Vec<ClassName>, Vec<ClassName>) {
    let mut ext = Vec::new();
    let mut lset = Vec::new();
    let mut rset = Vec::new();
    for c in &g.classes {
        if !cache.contains_key(c) {
            let v = chain_any(local, remote, c);
            cache.insert(c.clone(), v);
        }
        let (side, chain) = &cache[c];
        for a in chain {
            if !ext.contains(a) {
                ext.push(a.clone());
            }
            let buf = match side {
                ChainSide::Local => &mut lset,
                ChainSide::Remote => &mut rset,
                ChainSide::Virtual => continue,
            };
            if !buf.contains(a) {
                buf.push(a.clone());
            }
        }
    }
    (ext, lset, rset)
}

#[cfg(test)]
mod tests {
    use super::*;
    use interop_constraint::Catalog;
    use interop_model::{AttrName, ClassDef, Database, Schema, Type};
    use interop_spec::{ComparisonRule, InterCond, Spec};

    /// Local/remote schemas for a bookstore pair with references (so the
    /// re-match closure and the re-fuse cascade both get exercised).
    fn schemas() -> (Schema, Schema) {
        let local = Schema::new(
            "L",
            vec![
                ClassDef::new("LPub").attr("name", Type::Str),
                ClassDef::new("Publication")
                    .attr("isbn", Type::Str)
                    .attr("title", Type::Str)
                    .attr("publisher", Type::Ref(ClassName::new("LPub"))),
                ClassDef::new("ScientificPubl").isa("Publication"),
                ClassDef::new("Review").attr("of", Type::Ref(ClassName::new("Publication"))),
            ],
        )
        .unwrap();
        let remote = Schema::new(
            "R",
            vec![
                ClassDef::new("RPub").attr("name", Type::Str),
                ClassDef::new("Item")
                    .attr("isbn", Type::Str)
                    .attr("title", Type::Str)
                    .attr("publisher", Type::Ref(ClassName::new("RPub")))
                    .attr("reviewed", Type::Bool),
            ],
        )
        .unwrap();
        (local, remote)
    }

    fn spec() -> Spec {
        let mut spec = Spec::new("L", "R");
        // Two interobject conditions → no fast path; exercises the
        // check_pair gate in the incremental re-matcher.
        spec.add_rule(ComparisonRule::equality(
            "e-pub",
            "Publication",
            "Item",
            vec![
                InterCond::eq("isbn", "isbn"),
                InterCond::eq("title", "title"),
            ],
        ));
        // Single equality condition → bucket_decides fast path.
        spec.add_rule(ComparisonRule::equality(
            "e-publisher",
            "LPub",
            "RPub",
            vec![InterCond::eq("name", "name")],
        ));
        spec.add_rule(ComparisonRule::approx_similarity(
            "s-ref",
            Side::Remote,
            "Item",
            "Publication",
            "RefereedPubl",
            Formula::cmp("reviewed", CmpOp::Eq, true),
        ));
        spec
    }

    /// Base pair: one merged publisher, a three-member publication group
    /// (two locals sharing isbn+title, one remote), a lone scientific
    /// publication, a lone remote item, and a review referencing the
    /// non-leader local publication.
    fn base() -> (Database, Database) {
        let (ls, rs) = schemas();
        let mut ldb = Database::new(ls, 1);
        let lp = ldb.create("LPub", vec![("name", "ACM".into())]).unwrap();
        ldb.create(
            "Publication",
            vec![
                ("isbn", "A".into()),
                ("title", "Alpha".into()),
                ("publisher", Value::Ref(lp)),
            ],
        )
        .unwrap();
        ldb.create(
            "ScientificPubl",
            vec![
                ("isbn", "B".into()),
                ("title", "Beta".into()),
                ("publisher", Value::Ref(lp)),
            ],
        )
        .unwrap();
        let dup = ldb
            .create(
                "Publication",
                vec![
                    ("isbn", "A".into()),
                    ("title", "Alpha".into()),
                    ("publisher", Value::Ref(lp)),
                ],
            )
            .unwrap();
        ldb.create("Review", vec![("of", Value::Ref(dup))]).unwrap();
        let mut rdb = Database::new(rs, 2);
        let rp0 = rdb.create("RPub", vec![("name", "ACM".into())]).unwrap();
        let rp1 = rdb.create("RPub", vec![("name", "IEEE".into())]).unwrap();
        rdb.create(
            "Item",
            vec![
                ("isbn", "A".into()),
                ("title", "Alpha".into()),
                ("publisher", Value::Ref(rp0)),
                ("reviewed", true.into()),
            ],
        )
        .unwrap();
        rdb.create(
            "Item",
            vec![
                ("isbn", "C".into()),
                ("title", "Gamma".into()),
                ("publisher", Value::Ref(rp1)),
                ("reviewed", false.into()),
            ],
        )
        .unwrap();
        (ldb, rdb)
    }

    fn scratch(ldb: &Database, rdb: &Database, spec: &Spec) -> IntegratedView {
        let conf =
            interop_conform::conform(ldb, &Catalog::new(), rdb, &Catalog::new(), spec).unwrap();
        merge(&conf, &MergeOptions::default()).unwrap()
    }

    fn engine(ldb: &Database, rdb: &Database, spec: &Spec) -> IncrementalMerge {
        let conf =
            interop_conform::conform(ldb, &Catalog::new(), rdb, &Catalog::new(), spec).unwrap();
        IncrementalMerge::new(conf, MergeOptions::default()).unwrap()
    }

    /// Mutates one attribute in the source db and returns the matching
    /// conformed delta (the fixture spec has no attribute plans, so
    /// conformation is the identity on objects).
    fn upsert(db: &mut Database, id: ObjectId, attr: &str, v: Value) -> ConformedDelta {
        let mut o = db.object(id).unwrap().clone();
        o.attrs.insert(AttrName::new(attr), v);
        db.remove(id).unwrap();
        db.insert(o.clone()).unwrap();
        ConformedDelta::Upserted(o)
    }

    fn removal(db: &mut Database, id: ObjectId) -> ConformedDelta {
        db.remove(id).unwrap();
        ConformedDelta::Removed(id)
    }

    fn insertion(db: &mut Database, class: &str, attrs: Vec<(&str, Value)>) -> ConformedDelta {
        let id = db.create(class, attrs).unwrap();
        ConformedDelta::Upserted(db.object(id).unwrap().clone())
    }

    /// Applies the deltas incrementally and checks the patched view is
    /// byte-identical to a from-scratch conform+merge of the mutated
    /// sources, and structurally sane.
    fn check(
        incr: &mut IncrementalMerge,
        side: Side,
        deltas: &[ConformedDelta],
        ldb: &Database,
        rdb: &Database,
        spec: &Spec,
    ) {
        incr.apply(side, deltas).unwrap();
        let want = scratch(ldb, rdb, spec);
        assert_eq!(format!("{:?}", incr.view()), format!("{want:?}"));
        assert!(incr.view().hierarchy.is_acyclic());
    }

    #[test]
    fn seed_matches_scratch_and_empty_batch_is_noop() {
        let (ldb, rdb) = base();
        let spec = spec();
        let mut incr = engine(&ldb, &rdb, &spec);
        let want = scratch(&ldb, &rdb, &spec);
        assert_eq!(format!("{:?}", incr.view()), format!("{want:?}"));
        incr.apply(Side::Local, &[]).unwrap();
        assert_eq!(format!("{:?}", incr.view()), format!("{want:?}"));
    }

    #[test]
    fn insert_forms_new_group() {
        let (ldb, mut rdb) = base();
        let spec = spec();
        let mut incr = engine(&ldb, &rdb, &spec);
        // A new remote item matching the lone scientific publication.
        let d = insertion(
            &mut rdb,
            "Item",
            vec![
                ("isbn", "B".into()),
                ("title", "Beta".into()),
                ("publisher", Value::Ref(ObjectId::new(2, 1))),
                ("reviewed", true.into()),
            ],
        );
        check(&mut incr, Side::Remote, &[d], &ldb, &rdb, &spec);
    }

    #[test]
    fn update_splits_group_and_rejoin_restores_it() {
        let (mut ldb, rdb) = base();
        let spec = spec();
        let mut incr = engine(&ldb, &rdb, &spec);
        let leader = ObjectId::new(1, 1);
        // Break the second interobject condition: the three-member group
        // splits and the review's reference must follow the re-led group.
        let d = upsert(&mut ldb, leader, "title", "Omega".into());
        check(&mut incr, Side::Local, &[d], &ldb, &rdb, &spec);
        // Restore: the original grouping must come back byte-for-byte.
        let d = upsert(&mut ldb, leader, "title", "Alpha".into());
        check(&mut incr, Side::Local, &[d], &ldb, &rdb, &spec);
    }

    #[test]
    fn remove_merged_member() {
        let (ldb, mut rdb) = base();
        let spec = spec();
        let mut incr = engine(&ldb, &rdb, &spec);
        let d = removal(&mut rdb, ObjectId::new(2, 2));
        check(&mut incr, Side::Remote, &[d], &ldb, &rdb, &spec);
    }

    #[test]
    fn similarity_flip_updates_virtual_superclass() {
        let (ldb, mut rdb) = base();
        let spec = spec();
        let mut incr = engine(&ldb, &rdb, &spec);
        let item = ObjectId::new(2, 3);
        let d = upsert(&mut rdb, item, "reviewed", true.into());
        check(&mut incr, Side::Remote, &[d], &ldb, &rdb, &spec);
        let d = upsert(&mut rdb, item, "reviewed", false.into());
        check(&mut incr, Side::Remote, &[d], &ldb, &rdb, &spec);
    }

    #[test]
    fn publisher_rename_regroups_and_remaps() {
        let (ldb, mut rdb) = base();
        let spec = spec();
        let mut incr = engine(&ldb, &rdb, &spec);
        // The IEEE publisher becomes a second ACM: it joins the existing
        // merged publisher group, and every item referencing it must be
        // remapped through the touched-closure re-match.
        let d = upsert(&mut rdb, ObjectId::new(2, 1), "name", "ACM".into());
        check(&mut incr, Side::Remote, &[d], &ldb, &rdb, &spec);
        let d = upsert(&mut rdb, ObjectId::new(2, 1), "name", "IEEE".into());
        check(&mut incr, Side::Remote, &[d], &ldb, &rdb, &spec);
    }

    #[test]
    fn randomized_mutation_series_stays_differential() {
        let spec = spec();
        let (mut ldb, mut rdb) = base();
        let mut incr = engine(&ldb, &rdb, &spec);
        // A scripted series touching every delta kind, checked after
        // every step (titles/isbn collide and part repeatedly).
        let steps: Vec<(Side, ConformedDelta)> = vec![
            (
                Side::Remote,
                upsert(&mut rdb, ObjectId::new(2, 3), "isbn", "B".into()),
            ),
            (
                Side::Remote,
                upsert(&mut rdb, ObjectId::new(2, 3), "title", "Beta".into()),
            ),
            (
                Side::Local,
                upsert(&mut ldb, ObjectId::new(1, 2), "title", "Gamma".into()),
            ),
            (
                Side::Local,
                upsert(&mut ldb, ObjectId::new(1, 2), "title", "Beta".into()),
            ),
            (Side::Local, removal(&mut ldb, ObjectId::new(1, 1))),
            (
                Side::Local,
                insertion(
                    &mut ldb,
                    "Publication",
                    vec![
                        ("isbn", "A".into()),
                        ("title", "Alpha".into()),
                        ("publisher", Value::Ref(ObjectId::new(1, 0))),
                    ],
                ),
            ),
            (
                Side::Remote,
                upsert(&mut rdb, ObjectId::new(2, 2), "reviewed", false.into()),
            ),
        ];
        // Deltas were produced while mutating; re-apply them one by one
        // against snapshots is not possible here, so check after each.
        let mut l = {
            let (l0, _) = base();
            l0
        };
        let mut r = {
            let (_, r0) = base();
            r0
        };
        for (side, d) in steps {
            match side {
                Side::Local => apply_deltas(&mut l, std::slice::from_ref(&d)).unwrap(),
                Side::Remote => apply_deltas(&mut r, std::slice::from_ref(&d)).unwrap(),
            }
            check(&mut incr, side, &[d], &l, &r, &spec);
        }
    }

    #[test]
    fn decrement_twice_reports_underflow() {
        let (ldb, rdb) = base();
        let spec = spec();
        let mut incr = engine(&ldb, &rdb, &spec);
        let g = incr.view.objects.values().next().unwrap().clone();
        incr.decrement(&g).unwrap();
        let err = incr.decrement(&g).unwrap_err();
        assert!(
            err.to_string().contains("underflow"),
            "expected an underflow error, got: {err}"
        );
    }
}
