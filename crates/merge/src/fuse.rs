//! Value fusion: merging equivalent objects into global objects and
//! determining global property values through decision functions (§2.3).

use std::collections::{BTreeMap, BTreeSet};

use interop_conform::Conformed;
use interop_model::{AttrName, ClassName, ObjectId, Value};
use interop_spec::{Decision, Side};

use crate::resolve::{EqMatch, MergeError, SimMatch};

/// Space tag of global (merged) object ids.
pub const GLOBAL_SPACE: u32 = 200;

/// A merged global object.
#[derive(Clone, Debug)]
pub struct GlobalObject {
    /// Global identity.
    pub id: ObjectId,
    /// Global attribute valuation (decision functions applied; references
    /// remapped to global ids).
    pub attrs: BTreeMap<AttrName, Value>,
    /// The contributing local (conformed) object, if any.
    pub local: Option<ObjectId>,
    /// The contributing remote (conformed) object, if any.
    pub remote: Option<ObjectId>,
    /// For each *equivalent* property: the conformed local and remote
    /// values plus the decision function that fused them. This is the
    /// evidence base for the implicit-conflict analysis (§5.2.1).
    pub fused: BTreeMap<AttrName, (Value, Value, Decision)>,
    /// Most-specific class memberships (local class, remote class, and
    /// similarity targets).
    pub classes: BTreeSet<ClassName>,
}

/// The fusion result.
#[derive(Clone, Debug)]
pub struct FuseResult {
    /// Global objects by id.
    pub objects: BTreeMap<ObjectId, GlobalObject>,
    /// Conformed-object id → global id (spaces are disjoint, so one map
    /// covers both sides and virtual objects).
    pub id_map: BTreeMap<ObjectId, ObjectId>,
    /// Fusion anomalies (value outside a decision function's domain,
    /// objects merged with more than one counterpart, ...).
    pub notes: Vec<String>,
}

/// Merges matched objects and copies unmatched ones.
pub fn fuse(
    conf: &Conformed,
    eqs: &[EqMatch],
    sims: &[SimMatch],
) -> Result<FuseResult, MergeError> {
    let mut notes = Vec::new();
    // Union-find over conformed object ids.
    let mut uf = UnionFind::default();
    for obj in conf.local.db.objects() {
        uf.add(obj.id);
    }
    for obj in conf.remote.db.objects() {
        uf.add(obj.id);
    }
    for m in eqs {
        uf.union(m.local, m.remote);
    }
    // Group members by root.
    let mut groups: BTreeMap<ObjectId, Vec<ObjectId>> = BTreeMap::new();
    for id in uf.ids() {
        groups.entry(uf.find(id)).or_default().push(id);
    }
    let mut objects = BTreeMap::new();
    let mut id_map = BTreeMap::new();
    let mut serial = 0u64;
    #[allow(clippy::explicit_counter_loop)] // serial numbers global ids, not group indexes
    for (_, members) in groups {
        let gid = ObjectId::new(GLOBAL_SPACE, serial);
        serial += 1;
        let locals: Vec<ObjectId> = members
            .iter()
            .copied()
            .filter(|id| conf.local.db.object(*id).is_some())
            .collect();
        let remotes: Vec<ObjectId> = members
            .iter()
            .copied()
            .filter(|id| conf.remote.db.object(*id).is_some())
            .collect();
        if locals.len() > 1 || remotes.len() > 1 {
            notes.push(format!(
                "global object {gid}: merged {} local and {} remote objects; \
                 decision functions applied to the first of each",
                locals.len(),
                remotes.len()
            ));
        }
        for id in &members {
            id_map.insert(*id, gid);
        }
        let lobj = locals
            .first()
            .map(|id| conf.local.db.object_req(*id))
            .transpose()?;
        let robj = remotes
            .first()
            .map(|id| conf.remote.db.object_req(*id))
            .transpose()?;
        let mut attrs: BTreeMap<AttrName, Value> = BTreeMap::new();
        let mut fused: BTreeMap<AttrName, (Value, Value, Decision)> = BTreeMap::new();
        // Start from remote values, overlay local (implicit `any` with a
        // deterministic local preference), then apply declared propeqs.
        if let Some(r) = robj {
            for (a, v) in &r.attrs {
                attrs.insert(a.clone(), v.clone());
            }
        }
        if let Some(l) = lobj {
            for (a, v) in &l.attrs {
                if !v.is_null() {
                    attrs.insert(a.clone(), v.clone());
                }
            }
        }
        if let (Some(l), Some(r)) = (lobj, robj) {
            for pe in &conf.spec.propeqs {
                let applies_local = conf.local.db.schema.is_subclass(&l.class, &pe.local_class);
                let applies_remote = conf
                    .remote
                    .db
                    .schema
                    .is_subclass(&r.class, &pe.remote_class);
                if !(applies_local && applies_remote) {
                    continue;
                }
                let attr = match pe.conformed_name.head() {
                    Some(a) => a.clone(),
                    None => continue,
                };
                let lv = l.get(&attr).clone();
                let rv = r.get(&attr).clone();
                match pe.df.apply(&lv, &rv) {
                    Some(g) => {
                        attrs.insert(attr.clone(), g);
                        fused.insert(attr, (lv, rv, pe.df));
                    }
                    None => notes.push(format!(
                        "global object {gid}: decision function {} cannot fuse {lv} and {rv} \
                         for '{attr}'; kept the local value",
                        pe.df
                    )),
                }
            }
        }
        let mut classes = BTreeSet::new();
        if let Some(l) = lobj {
            classes.insert(l.class.clone());
        }
        if let Some(r) = robj {
            classes.insert(r.class.clone());
        }
        objects.insert(
            gid,
            GlobalObject {
                id: gid,
                attrs,
                local: locals.first().copied(),
                remote: remotes.first().copied(),
                fused,
                classes,
            },
        );
    }
    // Similarity memberships.
    for s in sims {
        if let Some(gid) = id_map.get(&s.subject) {
            let g = objects.get_mut(gid).expect("id_map targets exist");
            match &s.virtual_class {
                None => {
                    g.classes.insert(s.target.clone());
                }
                Some(v) => {
                    g.classes.insert(v.clone());
                }
            }
        }
    }
    // Remap references to global ids.
    let snapshot: Vec<ObjectId> = objects.keys().copied().collect();
    for gid in snapshot {
        let obj = objects.get_mut(&gid).expect("listed");
        let remapped: BTreeMap<AttrName, Value> = obj
            .attrs
            .iter()
            .map(|(a, v)| (a.clone(), remap_value(v, &id_map)))
            .collect();
        obj.attrs = remapped;
    }
    Ok(FuseResult {
        objects,
        id_map,
        notes,
    })
}

fn remap_value(v: &Value, id_map: &BTreeMap<ObjectId, ObjectId>) -> Value {
    match v {
        Value::Ref(id) => Value::Ref(*id_map.get(id).unwrap_or(id)),
        Value::Set(items) => Value::Set(items.iter().map(|x| remap_value(x, id_map)).collect()),
        other => other.clone(),
    }
}

/// Tiny union-find over object ids.
#[derive(Default)]
struct UnionFind {
    parent: BTreeMap<ObjectId, ObjectId>,
}

impl UnionFind {
    fn add(&mut self, id: ObjectId) {
        self.parent.entry(id).or_insert(id);
    }

    fn find(&self, mut id: ObjectId) -> ObjectId {
        while self.parent[&id] != id {
            id = self.parent[&id];
        }
        id
    }

    fn union(&mut self, a: ObjectId, b: ObjectId) {
        self.add(a);
        self.add(b);
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            self.parent.insert(rb, ra);
        }
    }

    fn ids(&self) -> Vec<ObjectId> {
        self.parent.keys().copied().collect()
    }
}

/// Convenience: which side an id belongs to, given the conformed pair.
pub fn side_of(conf: &Conformed, id: ObjectId) -> Option<Side> {
    if conf.local.db.object(id).is_some() {
        Some(Side::Local)
    } else if conf.remote.db.object(id).is_some() {
        Some(Side::Remote)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::resolve;
    use interop_constraint::Catalog;
    use interop_model::{ClassDef, Database, Schema, Type};
    use interop_spec::{ComparisonRule, Conversion, InterCond, PropEq, Spec};

    fn fixture() -> Conformed {
        let local_schema = Schema::new(
            "L",
            vec![ClassDef::new("Publication")
                .attr("isbn", Type::Str)
                .attr("ourprice", Type::Real)
                .attr("shopprice", Type::Real)],
        )
        .unwrap();
        let remote_schema = Schema::new(
            "R",
            vec![ClassDef::new("Item")
                .attr("isbn", Type::Str)
                .attr("libprice", Type::Real)
                .attr("shopprice", Type::Real)],
        )
        .unwrap();
        let mut ldb = Database::new(local_schema, 1);
        ldb.create(
            "Publication",
            vec![
                ("isbn", "A".into()),
                ("ourprice", 26.0.into()),
                ("shopprice", 29.0.into()),
            ],
        )
        .unwrap();
        ldb.create("Publication", vec![("isbn", "L-only".into())])
            .unwrap();
        let mut rdb = Database::new(remote_schema, 2);
        rdb.create(
            "Item",
            vec![
                ("isbn", "A".into()),
                ("libprice", 22.0.into()),
                ("shopprice", 25.0.into()),
            ],
        )
        .unwrap();
        rdb.create("Item", vec![("isbn", "R-only".into())]).unwrap();
        let mut spec = Spec::new("L", "R");
        spec.add_rule(ComparisonRule::equality(
            "r1",
            "Publication",
            "Item",
            vec![InterCond::eq("isbn", "isbn")],
        ));
        // The paper's §5.1.3 example: libprice trusted locally, shopprice
        // trusted remotely.
        spec.add_propeq(PropEq::named_after_remote(
            "Publication",
            "ourprice",
            "Item",
            "libprice",
            Conversion::Id,
            Conversion::Id,
            Decision::Trust(Side::Local),
        ));
        spec.add_propeq(PropEq::named_after_remote(
            "Publication",
            "shopprice",
            "Item",
            "shopprice",
            Conversion::Id,
            Conversion::Id,
            Decision::Trust(Side::Remote),
        ));
        interop_conform::conform(&ldb, &Catalog::new(), &rdb, &Catalog::new(), &spec).unwrap()
    }

    #[test]
    fn paper_trust_fusion() {
        // §5.1.3: (libprice, shopprice) local (26, 29), remote (22, 25)
        // under trust(local)/trust(remote) give global (26, 25) — which
        // violates libprice <= shopprice even though both sides satisfied
        // it. Fusion must produce exactly those values.
        let conf = fixture();
        let (eqs, sims) = resolve(&conf).unwrap();
        let fused = fuse(&conf, &eqs, &sims).unwrap();
        let merged: Vec<&GlobalObject> = fused
            .objects
            .values()
            .filter(|g| g.local.is_some() && g.remote.is_some())
            .collect();
        assert_eq!(merged.len(), 1);
        let g = merged[0];
        assert_eq!(g.attrs[&AttrName::new("libprice")], Value::real(26.0));
        assert_eq!(g.attrs[&AttrName::new("shopprice")], Value::real(25.0));
        let (lv, rv, df) = &g.fused[&AttrName::new("libprice")];
        assert_eq!(lv, &Value::real(26.0));
        assert_eq!(rv, &Value::real(22.0));
        assert_eq!(*df, Decision::Trust(Side::Local));
    }

    #[test]
    fn unmatched_objects_become_singletons() {
        let conf = fixture();
        let (eqs, sims) = resolve(&conf).unwrap();
        let fused = fuse(&conf, &eqs, &sims).unwrap();
        assert_eq!(fused.objects.len(), 3); // merged + two singletons
        let singles: Vec<_> = fused
            .objects
            .values()
            .filter(|g| g.local.is_none() || g.remote.is_none())
            .collect();
        assert_eq!(singles.len(), 2);
        for g in singles {
            assert_eq!(g.classes.len(), 1);
        }
    }

    #[test]
    fn id_map_covers_all_conformed_objects() {
        let conf = fixture();
        let (eqs, sims) = resolve(&conf).unwrap();
        let fused = fuse(&conf, &eqs, &sims).unwrap();
        for obj in conf.local.db.objects().chain(conf.remote.db.objects()) {
            assert!(fused.id_map.contains_key(&obj.id));
        }
        // All global ids live in the global space.
        for gid in fused.objects.keys() {
            assert_eq!(gid.space(), GLOBAL_SPACE);
        }
    }

    #[test]
    fn null_sides_fall_back_to_present_value() {
        let conf = fixture();
        let (eqs, sims) = resolve(&conf).unwrap();
        let fused = fuse(&conf, &eqs, &sims).unwrap();
        // The remote-only item keeps its attrs.
        let r_only = fused.objects.values().find(|g| g.local.is_none()).unwrap();
        assert_eq!(r_only.attrs[&AttrName::new("isbn")], Value::str("R-only"));
    }
}
