//! Value fusion: merging equivalent objects into global objects and
//! determining global property values through decision functions (§2.3).

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::rc::Rc;

use interop_conform::Conformed;
use interop_model::{AttrName, ClassName, FxHashMap, Object, ObjectId, Value};
use interop_spec::{Decision, Side};

use crate::index::ConformedIndex;
use crate::resolve::{EqMatch, MergeError, SimMatch};

/// Space tag of global (merged) object ids.
pub const GLOBAL_SPACE: u32 = 200;

/// The global id of the group led by `leader` (the group's smallest
/// conformed member id): the leader's `(space, serial)` packed into a
/// serial in [`GLOBAL_SPACE`].
///
/// Deriving the global id from the leader — instead of numbering groups
/// ordinally — makes it a *pure function of group membership*: inserting
/// or removing unrelated objects cannot shift the ids of untouched
/// groups, which is what lets [`crate::incremental`] patch the view in
/// place and still match a from-scratch merge byte for byte.
///
/// The packing is monotone in `(space, serial)` for serials below
/// 2^40 — every first-level merge, where spaces are small and serials
/// are object counters. Re-merging a materialised view (chaining) can
/// carry packed serials back in as input; `fuse_with` asserts the
/// derived ids stay strictly increasing across groups, so a collision
/// surfaces as an error instead of silent id aliasing.
pub fn global_id_for(leader: ObjectId) -> ObjectId {
    ObjectId::new(
        GLOBAL_SPACE,
        ((leader.space() as u64) << 40) | leader.serial(),
    )
}

/// A merged global object.
#[derive(Clone, Debug)]
pub struct GlobalObject {
    /// Global identity.
    pub id: ObjectId,
    /// Global attribute valuation (decision functions applied; references
    /// remapped to global ids).
    pub attrs: BTreeMap<AttrName, Value>,
    /// The contributing local (conformed) object, if any.
    pub local: Option<ObjectId>,
    /// The contributing remote (conformed) object, if any.
    pub remote: Option<ObjectId>,
    /// For each *equivalent* property: the conformed local and remote
    /// values plus the decision function that fused them. This is the
    /// evidence base for the implicit-conflict analysis (§5.2.1).
    pub fused: BTreeMap<AttrName, (Value, Value, Decision)>,
    /// Most-specific class memberships (local class, remote class, and
    /// similarity targets). Sorted and deduplicated — a tiny (1–3 entry)
    /// sorted vec instead of an ordered set, so building each global
    /// object skips a tree allocation.
    pub classes: Vec<ClassName>,
}

/// The fusion result.
#[derive(Clone, Debug)]
pub struct FuseResult {
    /// Global objects by id.
    pub objects: BTreeMap<ObjectId, GlobalObject>,
    /// Conformed-object id → global id (spaces are disjoint, so one map
    /// covers both sides and virtual objects).
    pub id_map: BTreeMap<ObjectId, ObjectId>,
    /// Fusion anomalies (value outside a decision function's domain,
    /// objects merged with more than one counterpart, ...).
    pub notes: Vec<String>,
}

/// The fallback when a decision function cannot fuse two values: keep the
/// local value when it is non-null, else the remote one. Returns the side
/// actually kept (`None` when both sides are null and nothing is kept).
fn fuse_fallback<'v>(lv: &'v Value, rv: &'v Value) -> (Option<Side>, &'v Value) {
    if !lv.is_null() {
        (Some(Side::Local), lv)
    } else if !rv.is_null() {
        (Some(Side::Remote), rv)
    } else {
        (None, lv)
    }
}

/// Merges matched objects and copies unmatched ones.
pub fn fuse(
    conf: &Conformed,
    eqs: &[EqMatch],
    sims: &[SimMatch],
) -> Result<FuseResult, MergeError> {
    fuse_with(conf, &ConformedIndex::new(conf), eqs, sims)
}

/// [`fuse`] over a prebuilt object index (shared across the phases by
/// [`crate::merge`]).
pub(crate) fn fuse_with(
    conf: &Conformed,
    idx: &ConformedIndex<'_>,
    eqs: &[EqMatch],
    sims: &[SimMatch],
) -> Result<FuseResult, MergeError> {
    let mut notes = Vec::new();
    let members_by_id = &idx.members;
    // Union-find over conformed object ids, indexed by member position.
    let mut uf = UnionFind::over(&idx.pos, members_by_id.len());
    for m in eqs {
        uf.union(m.local, m.remote);
    }
    // Group members by leader: one sorted pass gives groups in ascending
    // leader order with ascending members inside each group. Each entry
    // packs (leader index << 32 | member index); member indices follow
    // ascending id order, so sorting the packed words sorts groups by
    // leader id with ascending members inside each run.
    let mut grouped: Vec<u64> = (0..members_by_id.len() as u32)
        .map(|i| ((uf.leader_of_index(i) as u64) << 32) | i as u64)
        .collect();
    grouped.sort_unstable();
    // First pass: assign global ids (one per leader run) so references can
    // be remapped inline while objects are built. `gids` is parallel to
    // `members_by_id`, so the id map needs no extra hashing. Each group's
    // id derives from its leader id via `global_id_for`; the strictly-
    // increasing check turns a packing collision (possible only with
    // serials ≥ 2^40, i.e. chained re-merges) into an error.
    let mut gids: Vec<ObjectId> = vec![ObjectId::new(GLOBAL_SPACE, 0); members_by_id.len()];
    let mut serial = 0u64;
    let mut cur_leader = u64::MAX;
    let mut cur_gid = ObjectId::new(GLOBAL_SPACE, 0);
    let mut prev_gid: Option<ObjectId> = None;
    for packed in &grouped {
        if packed >> 32 != cur_leader {
            cur_gid = global_id_for(members_by_id[(packed >> 32) as usize].0);
            if prev_gid.is_some_and(|p| p >= cur_gid) {
                return Err(MergeError::Model(format!(
                    "global id collision: group of leader {} packs to already-assigned id {}",
                    members_by_id[(packed >> 32) as usize].0,
                    cur_gid
                )));
            }
            prev_gid = Some(cur_gid);
            serial += 1;
            cur_leader = packed >> 32;
        }
        gids[(*packed & u32::MAX as u64) as usize] = cur_gid;
    }
    // Conformed id → global id, through the shared member index.
    let global_of =
        |id: ObjectId| -> Option<ObjectId> { idx.pos.get(&id).map(|&i| gids[i as usize]) };
    let mut fuser = Fuser::new(conf);
    let mut objects: Vec<(ObjectId, GlobalObject)> = Vec::with_capacity(serial as usize);
    let mut start = 0;
    while start < grouped.len() {
        let leader = grouped[start] >> 32;
        let mut end = start;
        while end < grouped.len() && grouped[end] >> 32 == leader {
            end += 1;
        }
        let members = &grouped[start..end];
        start = end;
        let member_idx = |packed: u64| (packed & u32::MAX as u64) as usize;
        let gid = gids[member_idx(members[0])];
        let g = fuser.fuse_group(
            gid,
            members.iter().map(|p| {
                let (_, side, o) = members_by_id[member_idx(*p)];
                (side, o)
            }),
            &[],
            &global_of,
            &mut notes,
        );
        objects.push((gid, g));
    }
    let mut objects: BTreeMap<ObjectId, GlobalObject> = objects.into_iter().collect();
    // Similarity memberships.
    for s in sims {
        if let Some(gid) = global_of(s.subject) {
            let g = objects.get_mut(&gid).expect("gids target built objects");
            let c = match &s.virtual_class {
                None => &s.target,
                Some(v) => v,
            };
            if let Err(at) = g.classes.binary_search(c) {
                g.classes.insert(at, c.clone());
            }
        }
    }
    // Snapshot the id map into its deterministic output form: member ids
    // are already sorted, so the map bulk-builds from the zip.
    let id_map: BTreeMap<ObjectId, ObjectId> = members_by_id
        .iter()
        .zip(&gids)
        .map(|((id, _, _), gid)| (*id, *gid))
        .collect();
    Ok(FuseResult {
        objects,
        id_map,
        notes,
    })
}

/// The per-group fusion engine shared by the from-scratch [`fuse_with`]
/// pass and the incremental engine ([`crate::incremental`]): given a
/// group's members it produces the [`GlobalObject`] exactly as the
/// scratch pass would — same overlay, same decision-function
/// application, same notes, in the same order. Holds the per-merge
/// memoisation (resolved propeq attribute names, propeq applicability
/// per class pair) so repeated group fusions stay cheap.
pub(crate) struct Fuser<'a> {
    conf: &'a Conformed,
    /// Per-propeq conformed attribute, resolved once instead of per
    /// object.
    propeq_attrs: Vec<Option<AttrName>>,
    /// Memoised propeq applicability per (local class, remote class)
    /// pair — `is_subclass` walks the isa chain, so resolve each pair
    /// once. Keyed by the class names' refcount pointers: class names on
    /// conformed objects are clones of the same schema-owned `Arc`s, so
    /// the pointer pair identifies the pair without hashing strings.
    /// (Distinct `Arc`s spelling the same class would only cost a
    /// duplicate cache entry with the same value.)
    propeq_cache: FxHashMap<(usize, usize), Rc<Vec<usize>>>,
}

impl<'a> Fuser<'a> {
    pub(crate) fn new(conf: &'a Conformed) -> Self {
        let propeq_attrs = conf
            .spec
            .propeqs
            .iter()
            .map(|pe| pe.conformed_name.head().cloned())
            .collect();
        Fuser {
            conf,
            propeq_attrs,
            propeq_cache: FxHashMap::default(),
        }
    }

    /// Fuses one group into its [`GlobalObject`]. `members` must arrive
    /// in ascending conformed-id order (as the scratch grouping pass
    /// produces); `sim_classes` holds extra sorted class memberships
    /// from similarity matches (the scratch pass applies those in a
    /// post-pass instead and passes `&[]` here); `global_of` remaps
    /// reference values; anomaly `notes` are appended in the same order
    /// the scratch pass emits them.
    pub(crate) fn fuse_group<'o>(
        &mut self,
        gid: ObjectId,
        members: impl Iterator<Item = (Side, &'o Object)>,
        sim_classes: &[ClassName],
        global_of: &impl Fn(ObjectId) -> Option<ObjectId>,
        notes: &mut Vec<String>,
    ) -> GlobalObject {
        let conf = self.conf;
        let mut lobj: Option<&Object> = None;
        let mut robj: Option<&Object> = None;
        let (mut n_local, mut n_remote) = (0usize, 0usize);
        for (side, o) in members {
            match side {
                Side::Local => {
                    n_local += 1;
                    lobj = lobj.or(Some(o));
                }
                Side::Remote => {
                    n_remote += 1;
                    robj = robj.or(Some(o));
                }
            }
        }
        if n_local > 1 || n_remote > 1 {
            notes.push(format!(
                "global object {gid}: merged {n_local} local and {n_remote} remote objects; \
                 decision functions applied to the first of each"
            ));
        }
        // Start from remote values, overlay local (implicit `any` with a
        // deterministic local preference), then apply declared propeqs.
        let mut attrs: BTreeMap<AttrName, Value> = overlay_attrs(lobj, robj);
        let mut fused: BTreeMap<AttrName, (Value, Value, Decision)> = BTreeMap::new();
        if let (Some(l), Some(r)) = (lobj, robj) {
            let applicable = self
                .propeq_cache
                .entry((l.class.alloc_ptr(), r.class.alloc_ptr()))
                .or_insert_with(|| {
                    Rc::new(
                        conf.spec
                            .propeqs
                            .iter()
                            .enumerate()
                            .filter(|(_, pe)| {
                                conf.local.db.schema.is_subclass(&l.class, &pe.local_class)
                                    && conf
                                        .remote
                                        .db
                                        .schema
                                        .is_subclass(&r.class, &pe.remote_class)
                            })
                            .map(|(i, _)| i)
                            .collect(),
                    )
                })
                .clone();
            for &i in applicable.iter() {
                let pe = &conf.spec.propeqs[i];
                let attr = match &self.propeq_attrs[i] {
                    Some(a) => a.clone(),
                    None => continue,
                };
                let lv = l.get(&attr).clone();
                let rv = r.get(&attr).clone();
                match pe.df.apply(&lv, &rv) {
                    Some(g) => {
                        attrs.insert(attr.clone(), g);
                        fused.insert(attr, (lv, rv, pe.df));
                    }
                    None if fused.contains_key(&attr) => {
                        // An earlier propeq already fused this attribute;
                        // the fallback must not clobber its result.
                        notes.push(format!(
                            "global object {gid}: decision function {} cannot fuse {lv} and {rv} \
                             for '{attr}'; kept the previously fused value",
                            pe.df
                        ));
                    }
                    None => {
                        // Explicit fallback: local when non-null, else
                        // remote — and report the side actually kept (the
                        // remote/local overlay above already agrees).
                        let (side, kept) = fuse_fallback(&lv, &rv);
                        let side = match side {
                            Some(Side::Local) => "local",
                            Some(Side::Remote) => "remote",
                            None => "no",
                        };
                        if !kept.is_null() {
                            attrs.insert(attr.clone(), kept.clone());
                        }
                        notes.push(format!(
                            "global object {gid}: decision function {} cannot fuse {lv} and {rv} \
                             for '{attr}'; kept the {side} value",
                            pe.df
                        ));
                    }
                }
            }
        }
        // Remap references to global ids (the id map is already total).
        for v in attrs.values_mut() {
            if has_ref(v) {
                *v = remap_value(v, global_of);
            }
        }
        let mut classes: Vec<ClassName> = Vec::new();
        if let Some(l) = lobj {
            classes.push(l.class.clone());
        }
        if let Some(r) = robj {
            if !classes.contains(&r.class) {
                classes.push(r.class.clone());
            }
        }
        classes.sort_unstable();
        for c in sim_classes {
            if let Err(at) = classes.binary_search(c) {
                classes.insert(at, c.clone());
            }
        }
        GlobalObject {
            id: gid,
            attrs,
            local: lobj.map(|o| o.id),
            remote: robj.map(|o| o.id),
            fused,
            classes,
        }
    }
}

/// The implicit-`any` valuation of a (possibly one-sided) merged pair:
/// remote values, overlaid by non-null local values. Singletons clone
/// their side's map wholesale; merged pairs are built as one merge walk
/// over the two sorted attribute maps so the result map is bulk-built
/// from sorted pairs instead of mutated entry by entry.
fn overlay_attrs(lobj: Option<&Object>, robj: Option<&Object>) -> BTreeMap<AttrName, Value> {
    let (l, r) = match (lobj, robj) {
        (None, None) => return BTreeMap::new(),
        (None, Some(r)) => return r.attrs.clone(),
        (Some(l), None) => {
            // Local-side nulls are dropped (they must not shadow remote
            // values on merged objects, and singletons behave alike).
            if l.attrs.values().any(Value::is_null) {
                return l
                    .attrs
                    .iter()
                    .filter(|(_, v)| !v.is_null())
                    .map(|(a, v)| (a.clone(), v.clone()))
                    .collect();
            }
            return l.attrs.clone();
        }
        (Some(l), Some(r)) => (l, r),
    };
    let mut pairs: Vec<(AttrName, Value)> = Vec::with_capacity(l.attrs.len() + r.attrs.len());
    let mut li = l.attrs.iter().peekable();
    let mut ri = r.attrs.iter().peekable();
    loop {
        match (li.peek(), ri.peek()) {
            (Some((la, lv)), Some((ra, rv))) => match la.cmp(ra) {
                Ordering::Less => {
                    if !lv.is_null() {
                        pairs.push(((*la).clone(), (*lv).clone()));
                    }
                    li.next();
                }
                Ordering::Greater => {
                    pairs.push(((*ra).clone(), (*rv).clone()));
                    ri.next();
                }
                Ordering::Equal => {
                    if lv.is_null() {
                        pairs.push(((*ra).clone(), (*rv).clone()));
                    } else {
                        pairs.push(((*la).clone(), (*lv).clone()));
                    }
                    li.next();
                    ri.next();
                }
            },
            (Some((la, lv)), None) => {
                if !lv.is_null() {
                    pairs.push(((*la).clone(), (*lv).clone()));
                }
                li.next();
            }
            (None, Some((ra, rv))) => {
                pairs.push(((*ra).clone(), (*rv).clone()));
                ri.next();
            }
            (None, None) => break,
        }
    }
    pairs.into_iter().collect()
}

fn has_ref(v: &Value) -> bool {
    match v {
        Value::Ref(_) => true,
        Value::Set(items) => items.iter().any(has_ref),
        _ => false,
    }
}

fn remap_value(v: &Value, global_of: &impl Fn(ObjectId) -> Option<ObjectId>) -> Value {
    match v {
        Value::Ref(id) => Value::Ref(global_of(*id).unwrap_or(*id)),
        Value::Set(items) => Value::Set(items.iter().map(|x| remap_value(x, global_of)).collect()),
        other => other.clone(),
    }
}

/// Path-compressed, rank-balanced union-find over a fixed id universe.
///
/// Each group carries a deterministic *leader* independent of the tree
/// shape the rank heuristic produces: on `union(a, b)`, the merged group
/// takes the *smaller* of the two leaders. The universe is enumerated in
/// ascending id order, so a group's leader is always its minimum member
/// id — a pure function of the partition, independent of the order in
/// which matches are emitted. That independence is what lets the
/// incremental engine re-derive a touched group's identity locally and
/// land on exactly the ids a from-scratch merge would assign.
struct UnionFind<'a> {
    index: &'a FxHashMap<ObjectId, u32>,
    parent: Vec<u32>,
    rank: Vec<u8>,
    /// Per root: the universe index of the group's deterministic leader.
    leader: Vec<u32>,
}

impl<'a> UnionFind<'a> {
    /// Builds the partition over a shared id→position index covering `n`
    /// universe members (positions `0..n`).
    fn over(index: &'a FxHashMap<ObjectId, u32>, n: usize) -> Self {
        debug_assert_eq!(n, index.len());
        UnionFind {
            index,
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            leader: (0..n as u32).collect(),
        }
    }

    /// The dense index of `id` in the universe, if known.
    #[cfg(test)]
    fn index_of(&self, id: ObjectId) -> Option<u32> {
        self.index.get(&id).copied()
    }

    fn find(&mut self, mut i: u32) -> u32 {
        // Path halving: point every visited node at its grandparent.
        while self.parent[i as usize] != i {
            let gp = self.parent[self.parent[i as usize] as usize];
            self.parent[i as usize] = gp;
            i = gp;
        }
        i
    }

    /// Unions the groups of `a` and `b`; the smaller of the two group
    /// leaders names the merged group (leader = minimum member id). Ids
    /// outside the universe are ignored (matches can only reference
    /// conformed objects).
    fn union(&mut self, a: ObjectId, b: ObjectId) {
        let (Some(&ia), Some(&ib)) = (self.index.get(&a), self.index.get(&b)) else {
            return;
        };
        let (ra, rb) = (self.find(ia), self.find(ib));
        if ra == rb {
            return;
        }
        let la = self.leader[ra as usize].min(self.leader[rb as usize]);
        let root = match self.rank[ra as usize].cmp(&self.rank[rb as usize]) {
            Ordering::Less => {
                self.parent[ra as usize] = rb;
                rb
            }
            Ordering::Greater => {
                self.parent[rb as usize] = ra;
                ra
            }
            Ordering::Equal => {
                self.parent[rb as usize] = ra;
                self.rank[ra as usize] += 1;
                ra
            }
        };
        self.leader[root as usize] = la;
    }

    /// The deterministic leader (as a universe index) of the group of the
    /// `i`-th universe id. Leader indices order the same way as leader
    /// ids: the universe is enumerated in ascending id order.
    fn leader_of_index(&mut self, i: u32) -> u32 {
        let r = self.find(i);
        self.leader[r as usize]
    }
}

/// Convenience: which side an id belongs to, given the conformed pair.
pub fn side_of(conf: &Conformed, id: ObjectId) -> Option<Side> {
    if conf.local.db.object(id).is_some() {
        Some(Side::Local)
    } else if conf.remote.db.object(id).is_some() {
        Some(Side::Remote)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resolve::resolve;
    use interop_constraint::Catalog;
    use interop_model::{ClassDef, Database, Schema, Type};
    use interop_spec::{ComparisonRule, Conversion, InterCond, PropEq, Spec};

    fn fixture() -> Conformed {
        let local_schema = Schema::new(
            "L",
            vec![ClassDef::new("Publication")
                .attr("isbn", Type::Str)
                .attr("ourprice", Type::Real)
                .attr("shopprice", Type::Real)],
        )
        .unwrap();
        let remote_schema = Schema::new(
            "R",
            vec![ClassDef::new("Item")
                .attr("isbn", Type::Str)
                .attr("libprice", Type::Real)
                .attr("shopprice", Type::Real)],
        )
        .unwrap();
        let mut ldb = Database::new(local_schema, 1);
        ldb.create(
            "Publication",
            vec![
                ("isbn", "A".into()),
                ("ourprice", 26.0.into()),
                ("shopprice", 29.0.into()),
            ],
        )
        .unwrap();
        ldb.create("Publication", vec![("isbn", "L-only".into())])
            .unwrap();
        let mut rdb = Database::new(remote_schema, 2);
        rdb.create(
            "Item",
            vec![
                ("isbn", "A".into()),
                ("libprice", 22.0.into()),
                ("shopprice", 25.0.into()),
            ],
        )
        .unwrap();
        rdb.create("Item", vec![("isbn", "R-only".into())]).unwrap();
        let mut spec = Spec::new("L", "R");
        spec.add_rule(ComparisonRule::equality(
            "r1",
            "Publication",
            "Item",
            vec![InterCond::eq("isbn", "isbn")],
        ));
        // The paper's §5.1.3 example: libprice trusted locally, shopprice
        // trusted remotely.
        spec.add_propeq(PropEq::named_after_remote(
            "Publication",
            "ourprice",
            "Item",
            "libprice",
            Conversion::Id,
            Conversion::Id,
            Decision::Trust(Side::Local),
        ));
        spec.add_propeq(PropEq::named_after_remote(
            "Publication",
            "shopprice",
            "Item",
            "shopprice",
            Conversion::Id,
            Conversion::Id,
            Decision::Trust(Side::Remote),
        ));
        interop_conform::conform(&ldb, &Catalog::new(), &rdb, &Catalog::new(), &spec).unwrap()
    }

    /// A fixture whose decision function (avg over strings) cannot fuse;
    /// `with_local_value` controls whether the local side carries a value.
    fn unfusable_fixture(with_local_value: bool) -> Conformed {
        let local_schema = Schema::new(
            "L",
            vec![ClassDef::new("A").attr("k", Type::Str).attr("v", Type::Str)],
        )
        .unwrap();
        let remote_schema = Schema::new(
            "R",
            vec![ClassDef::new("B").attr("k", Type::Str).attr("v", Type::Str)],
        )
        .unwrap();
        let mut ldb = Database::new(local_schema, 1);
        let mut lattrs = vec![("k", Value::str("1"))];
        if with_local_value {
            lattrs.push(("v", Value::str("local-v")));
        }
        ldb.create("A", lattrs).unwrap();
        let mut rdb = Database::new(remote_schema, 2);
        rdb.create("B", vec![("k", "1".into()), ("v", "remote-v".into())])
            .unwrap();
        let mut spec = Spec::new("L", "R");
        spec.add_rule(ComparisonRule::equality(
            "r",
            "A",
            "B",
            vec![InterCond::eq("k", "k")],
        ));
        spec.add_propeq(PropEq::named_after_remote(
            "A",
            "v",
            "B",
            "v",
            Conversion::Id,
            Conversion::Id,
            Decision::Avg, // avg over strings cannot fuse
        ));
        interop_conform::conform(&ldb, &Catalog::new(), &rdb, &Catalog::new(), &spec).unwrap()
    }

    #[test]
    fn paper_trust_fusion() {
        // §5.1.3: (libprice, shopprice) local (26, 29), remote (22, 25)
        // under trust(local)/trust(remote) give global (26, 25) — which
        // violates libprice <= shopprice even though both sides satisfied
        // it. Fusion must produce exactly those values.
        let conf = fixture();
        let (eqs, sims) = resolve(&conf).unwrap();
        let fused = fuse(&conf, &eqs, &sims).unwrap();
        let merged: Vec<&GlobalObject> = fused
            .objects
            .values()
            .filter(|g| g.local.is_some() && g.remote.is_some())
            .collect();
        assert_eq!(merged.len(), 1);
        let g = merged[0];
        assert_eq!(g.attrs[&AttrName::new("libprice")], Value::real(26.0));
        assert_eq!(g.attrs[&AttrName::new("shopprice")], Value::real(25.0));
        let (lv, rv, df) = &g.fused[&AttrName::new("libprice")];
        assert_eq!(lv, &Value::real(26.0));
        assert_eq!(rv, &Value::real(22.0));
        assert_eq!(*df, Decision::Trust(Side::Local));
    }

    #[test]
    fn unmatched_objects_become_singletons() {
        let conf = fixture();
        let (eqs, sims) = resolve(&conf).unwrap();
        let fused = fuse(&conf, &eqs, &sims).unwrap();
        assert_eq!(fused.objects.len(), 3); // merged + two singletons
        let singles: Vec<_> = fused
            .objects
            .values()
            .filter(|g| g.local.is_none() || g.remote.is_none())
            .collect();
        assert_eq!(singles.len(), 2);
        for g in singles {
            assert_eq!(g.classes.len(), 1);
        }
    }

    #[test]
    fn id_map_covers_all_conformed_objects() {
        let conf = fixture();
        let (eqs, sims) = resolve(&conf).unwrap();
        let fused = fuse(&conf, &eqs, &sims).unwrap();
        for obj in conf.local.db.objects().chain(conf.remote.db.objects()) {
            assert!(fused.id_map.contains_key(&obj.id));
        }
        // All global ids live in the global space.
        for gid in fused.objects.keys() {
            assert_eq!(gid.space(), GLOBAL_SPACE);
        }
    }

    #[test]
    fn null_sides_fall_back_to_present_value() {
        let conf = fixture();
        let (eqs, sims) = resolve(&conf).unwrap();
        let fused = fuse(&conf, &eqs, &sims).unwrap();
        // The remote-only item keeps its attrs.
        let r_only = fused.objects.values().find(|g| g.local.is_none()).unwrap();
        assert_eq!(r_only.attrs[&AttrName::new("isbn")], Value::str("R-only"));
    }

    #[test]
    fn unfusable_keeps_local_and_says_so() {
        let conf = unfusable_fixture(true);
        let (eqs, sims) = resolve(&conf).unwrap();
        let fused = fuse(&conf, &eqs, &sims).unwrap();
        let g = fused
            .objects
            .values()
            .find(|g| g.local.is_some() && g.remote.is_some())
            .expect("merged");
        assert_eq!(g.attrs[&AttrName::new("v")], Value::str("local-v"));
        let note = fused
            .notes
            .iter()
            .find(|n| n.contains("cannot fuse"))
            .expect("anomaly noted");
        assert!(note.contains("kept the local value"), "note: {note}");
    }

    #[test]
    fn unfusable_with_null_local_reports_remote() {
        // Regression for the misleading note: when the local value is null
        // the overlay keeps the *remote* value, and the note must say so.
        // (With the current decision functions a null side short-circuits
        // in `Decision::apply`, so the end-to-end path keeps the remote
        // value via the fused branch; the fallback itself is exercised
        // directly.)
        let (local_v, remote_v) = (Value::str("local-v"), Value::str("remote-v"));
        let (side, kept) = fuse_fallback(&Value::Null, &remote_v);
        assert_eq!(side, Some(Side::Remote));
        assert_eq!(kept, &remote_v);
        let (side, kept) = fuse_fallback(&local_v, &remote_v);
        assert_eq!(side, Some(Side::Local));
        assert_eq!(kept, &local_v);
        let (side, kept) = fuse_fallback(&Value::Null, &Value::Null);
        assert_eq!(side, None);
        assert!(kept.is_null());
        // End-to-end: a null local side under an unfusable-looking propeq
        // resolves to the remote value on the global object.
        let conf = unfusable_fixture(false);
        let (eqs, sims) = resolve(&conf).unwrap();
        let fused = fuse(&conf, &eqs, &sims).unwrap();
        let g = fused
            .objects
            .values()
            .find(|g| g.local.is_some() && g.remote.is_some())
            .expect("merged");
        assert_eq!(g.attrs[&AttrName::new("v")], Value::str("remote-v"));
        for note in &fused.notes {
            assert!(
                !note.contains("kept the local value"),
                "must not claim the local value was kept: {note}"
            );
        }
    }

    #[test]
    fn unfusable_propeq_does_not_clobber_earlier_fusion() {
        // Two propeqs resolve to the same conformed attribute: the first
        // (avg over ints) fuses, the second (union over ints) cannot. The
        // fallback must keep the fused average, not overwrite it with the
        // raw local value.
        let local_schema = Schema::new(
            "L",
            vec![ClassDef::new("A").attr("k", Type::Str).attr("v", Type::Int)],
        )
        .unwrap();
        let remote_schema = Schema::new(
            "R",
            vec![ClassDef::new("B").attr("k", Type::Str).attr("v", Type::Int)],
        )
        .unwrap();
        let mut ldb = Database::new(local_schema, 1);
        ldb.create("A", vec![("k", "1".into()), ("v", 4i64.into())])
            .unwrap();
        let mut rdb = Database::new(remote_schema, 2);
        rdb.create("B", vec![("k", "1".into()), ("v", 6i64.into())])
            .unwrap();
        let mut spec = Spec::new("L", "R");
        spec.add_rule(ComparisonRule::equality(
            "r",
            "A",
            "B",
            vec![InterCond::eq("k", "k")],
        ));
        spec.add_propeq(PropEq::named_after_remote(
            "A",
            "v",
            "B",
            "v",
            Conversion::Id,
            Conversion::Id,
            Decision::Avg,
        ));
        spec.add_propeq(PropEq::named_after_remote(
            "A",
            "v",
            "B",
            "v",
            Conversion::Id,
            Conversion::Id,
            Decision::Union, // ints are not sets: cannot fuse
        ));
        let conf =
            interop_conform::conform(&ldb, &Catalog::new(), &rdb, &Catalog::new(), &spec).unwrap();
        let (eqs, sims) = resolve(&conf).unwrap();
        let fused = fuse(&conf, &eqs, &sims).unwrap();
        let g = fused
            .objects
            .values()
            .find(|g| g.local.is_some() && g.remote.is_some())
            .expect("merged");
        assert_eq!(g.attrs[&AttrName::new("v")], Value::int(5), "avg kept");
        let note = fused
            .notes
            .iter()
            .find(|n| n.contains("cannot fuse"))
            .expect("anomaly noted");
        assert!(
            note.contains("kept the previously fused value"),
            "note: {note}"
        );
    }

    #[test]
    fn union_find_compresses_and_tracks_leaders() {
        let ids: Vec<ObjectId> = (0..8).map(|i| ObjectId::new(1, i)).collect();
        let mut index: FxHashMap<ObjectId, u32> = FxHashMap::default();
        for (i, &id) in ids.iter().enumerate() {
            index.insert(id, i as u32);
        }
        let mut uf = UnionFind::over(&index, ids.len());
        let leader_of = |uf: &mut UnionFind, id: ObjectId| {
            let i = uf.index_of(id).expect("known id");
            ids[uf.leader_of_index(i) as usize]
        };
        // The leader is the minimum member id, whatever the union order:
        // unions deliberately name the larger id first.
        uf.union(ids[4], ids[3]);
        assert_eq!(leader_of(&mut uf, ids[4]), ids[3]);
        uf.union(ids[1], ids[2]);
        assert_eq!(leader_of(&mut uf, ids[2]), ids[1]);
        uf.union(ids[3], ids[1]); // merges {3,4} and {1,2} → leader 1
        for (i, id) in ids.iter().enumerate().take(5).skip(1) {
            assert_eq!(leader_of(&mut uf, *id), ids[1], "member {i}");
        }
        uf.union(ids[2], ids[0]); // absorbing the smaller id moves the leader
        for (i, id) in ids.iter().enumerate().take(5) {
            assert_eq!(leader_of(&mut uf, *id), ids[0], "member {i}");
        }
        assert_eq!(leader_of(&mut uf, ids[5]), ids[5]);
        // After find-driven compression every member points ≤1 hop from
        // the root.
        for (i, id) in ids.iter().enumerate().take(5) {
            let idx = uf.index_of(*id).unwrap();
            let p = uf.parent[idx as usize];
            assert_eq!(uf.parent[p as usize], p, "path compressed for {i}");
        }
        // Unknown ids are ignored.
        uf.union(ObjectId::new(9, 9), ids[0]);
        assert_eq!(leader_of(&mut uf, ids[0]), ids[0]);
    }
}
