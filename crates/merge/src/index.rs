//! A side-tagged, hash-indexed view of both conformed databases.
//!
//! Every merge phase needs random access to conformed objects by id —
//! the hash joins in resolution, group assembly in fusion — and the
//! ordered map inside [`interop_model::Database`] makes each such hit a
//! tree search. [`ConformedIndex`] flattens both sides into one sorted
//! member list plus a hash index, built once per [`crate::merge`] call
//! and shared by the phases.

use interop_conform::Conformed;
use interop_model::{FxHashMap, Object, ObjectId};
use interop_spec::Side;

/// Hash-indexed objects of a conformed pair (spaces are disjoint, so one
/// index covers both sides and the virtual objects).
pub(crate) struct ConformedIndex<'a> {
    /// `(id, side, object)` for every conformed object, ascending by id
    /// (the two sides' spaces interleave, so one sort pass replaces
    /// ordered-map bookkeeping downstream).
    pub members: Vec<(ObjectId, Side, &'a Object)>,
    /// id → position in `members`.
    pub pos: FxHashMap<ObjectId, u32>,
}

impl<'a> ConformedIndex<'a> {
    /// Builds the index in one sweep over both databases. Each side's
    /// objects already iterate in ascending id order, so the combined
    /// list is produced by a linear two-way merge, not a sort.
    pub fn new(conf: &'a Conformed) -> Self {
        let mut members: Vec<(ObjectId, Side, &'a Object)> =
            Vec::with_capacity(conf.local.db.len() + conf.remote.db.len());
        let mut li = conf.local.db.objects().peekable();
        let mut ri = conf.remote.db.objects().peekable();
        loop {
            match (li.peek(), ri.peek()) {
                (Some(l), Some(r)) => {
                    if l.id < r.id {
                        let o = li.next().expect("peeked");
                        members.push((o.id, Side::Local, o));
                    } else {
                        let o = ri.next().expect("peeked");
                        members.push((o.id, Side::Remote, o));
                    }
                }
                (Some(_), None) => {
                    let o = li.next().expect("peeked");
                    members.push((o.id, Side::Local, o));
                }
                (None, Some(_)) => {
                    let o = ri.next().expect("peeked");
                    members.push((o.id, Side::Remote, o));
                }
                (None, None) => break,
            }
        }
        let mut pos = FxHashMap::with_capacity_and_hasher(members.len(), Default::default());
        for (i, (id, _, _)) in members.iter().enumerate() {
            pos.insert(*id, i as u32);
        }
        ConformedIndex { members, pos }
    }

    /// Looks up a conformed object by id (either side).
    pub fn object(&self, id: ObjectId) -> Option<&'a Object> {
        self.pos.get(&id).map(|&i| self.members[i as usize].2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interop_constraint::Catalog;
    use interop_model::{ClassDef, Database, Schema, Type};
    use interop_spec::Spec;

    #[test]
    fn index_covers_both_sides_in_id_order() {
        let ls = Schema::new("L", vec![ClassDef::new("A").attr("k", Type::Str)]).unwrap();
        let rs = Schema::new("R", vec![ClassDef::new("B").attr("k", Type::Str)]).unwrap();
        let mut ldb = Database::new(ls, 1);
        let la = ldb.create("A", vec![]).unwrap();
        let mut rdb = Database::new(rs, 2);
        let rb = rdb.create("B", vec![]).unwrap();
        let conf = interop_conform::conform(
            &ldb,
            &Catalog::new(),
            &rdb,
            &Catalog::new(),
            &Spec::new("L", "R"),
        )
        .unwrap();
        let idx = ConformedIndex::new(&conf);
        assert_eq!(idx.members.len(), 2);
        assert!(idx.members.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(idx.object(la).unwrap().id, la);
        assert_eq!(idx.object(rb).unwrap().id, rb);
        assert!(idx.object(ObjectId::new(9, 9)).is_none());
    }
}
