//! Experiment F2 bench: the conformation + merging pipeline on the paper
//! fixture and on synthetic extents of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use interop_bench::{synthetic_fixture, SyntheticConfig};
use interop_core::fixtures;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2_pipeline");
    g.sample_size(20);

    let fx = fixtures::paper_fixture();
    g.bench_function("paper_conform", |b| {
        b.iter(|| {
            interop_conform::conform(
                &fx.local_db,
                &fx.local_catalog,
                &fx.remote_db,
                &fx.remote_catalog,
                &fx.spec,
            )
            .expect("conforms")
        })
    });
    let conf = interop_conform::conform(
        &fx.local_db,
        &fx.local_catalog,
        &fx.remote_db,
        &fx.remote_catalog,
        &fx.spec,
    )
    .expect("conforms");
    let opts = fixtures::merge_options();
    g.bench_function("paper_merge", |b| {
        b.iter(|| interop_merge::merge(&conf, &opts).expect("merges"))
    });

    for n in [100usize, 1_000, 10_000] {
        let sfx = synthetic_fixture(SyntheticConfig {
            local_n: n,
            remote_n: n,
            match_ratio: 0.5,
            constraints_per_side: 4,
            seed: 42,
        });
        let sconf = interop_conform::conform(
            &sfx.local_db,
            &sfx.local_catalog,
            &sfx.remote_db,
            &sfx.remote_catalog,
            &sfx.spec,
        )
        .expect("conforms");
        g.bench_with_input(BenchmarkId::new("synthetic_merge", n), &n, |b, _| {
            b.iter(|| interop_merge::merge(&sconf, &Default::default()).expect("merges"))
        });

        // Single-object churn through the incremental pipeline: one
        // source update re-conforms one object and patches the merge
        // state in place — the contrast with `synthetic_merge` (a full
        // from-scratch re-merge per change) is the tentpole payoff.
        let mut ldb = sfx.local_db.clone();
        let mut pipe = interop_core::IncrementalPipeline::new(
            &ldb,
            &sfx.local_catalog,
            &sfx.remote_db,
            &sfx.remote_catalog,
            &sfx.spec,
            Default::default(),
        )
        .expect("pipeline builds");
        let id = ldb.objects().next().expect("non-empty fixture").id;
        let price = interop_model::AttrName::new("price");
        let mut toggle = false;
        g.bench_with_input(BenchmarkId::new("incremental_merge", n), &n, |b, _| {
            b.iter(|| {
                toggle = !toggle;
                let v = if toggle { 11.5 } else { 23.25 };
                let mut o = ldb.object(id).expect("object lives").clone();
                o.attrs.insert(price.clone(), interop_model::Value::real(v));
                ldb.remove(id).expect("removes");
                ldb.insert(o).expect("re-inserts");
                pipe.apply_local(&ldb, &[id]).expect("patches");
            })
        });
    }
    g.finish();

    let view = interop_merge::merge(&conf, &opts).expect("merges");
    println!(
        "\n[F2] global objects={} intersections={:?}",
        view.objects.len(),
        view.hierarchy
            .intersections
            .iter()
            .map(|i| i.name.to_string())
            .collect::<Vec<_>>()
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
