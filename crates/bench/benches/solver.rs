//! Bench B3: the satisfiability/implication solver. Sweeps the number of
//! conjoined atoms (linear domain work) and the disjunction width (DNF
//! growth).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use interop_constraint::solve::{implies, is_satisfiable, TypeEnv};
use interop_constraint::{CmpOp, Formula};
use interop_model::Type;

fn env(vars: usize) -> TypeEnv {
    let mut e = TypeEnv::new();
    for i in 0..vars {
        e.insert(
            interop_constraint::Path::parse(&format!("x{i}")),
            Type::Range(0, 100),
        );
    }
    e
}

fn chain(atoms: usize) -> Formula {
    Formula::conj((0..atoms).map(|i| {
        Formula::cmp(
            &format!("x{}", i % 8),
            if i % 2 == 0 { CmpOp::Ge } else { CmpOp::Le },
            ((i * 7) % 100) as i64,
        )
    }))
}

fn disjunction(width: usize) -> Formula {
    (0..width)
        .map(|i| Formula::cmp("x0", CmpOp::Eq, i as i64))
        .fold(Formula::False, Formula::or)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("solver");
    let e = env(8);
    for atoms in [2usize, 8, 32, 64] {
        let f = chain(atoms);
        g.bench_with_input(
            BenchmarkId::new("sat_conjunction", atoms),
            &atoms,
            |b, _| b.iter(|| is_satisfiable(std::hint::black_box(&f), &e)),
        );
    }
    for width in [2usize, 8, 32] {
        let f = disjunction(width).and(chain(8));
        g.bench_with_input(
            BenchmarkId::new("sat_disjunction", width),
            &width,
            |b, _| b.iter(|| is_satisfiable(std::hint::black_box(&f), &e)),
        );
    }
    // The paper's actual checks: implication between conditional
    // constraints (strict-similarity admission shape).
    let phi = Formula::cmp("x0", CmpOp::Eq, 1i64)
        .implies(Formula::cmp("x1", CmpOp::Ge, 70i64))
        .and(Formula::cmp("x0", CmpOp::Eq, 1i64));
    let psi = Formula::cmp("x1", CmpOp::Ge, 40i64);
    g.bench_function("implies_conditional", |b| {
        b.iter(|| implies(std::hint::black_box(&phi), &psi, &e))
    });
    // Difference atoms exercise the DBM path.
    let diff = Formula::Cmp(
        interop_constraint::Expr::attr("x0"),
        CmpOp::Le,
        interop_constraint::Expr::attr("x1"),
    )
    .and(Formula::Cmp(
        interop_constraint::Expr::attr("x1"),
        CmpOp::Lt,
        interop_constraint::Expr::attr("x2"),
    ))
    .and(Formula::cmp("x2", CmpOp::Le, 10i64))
    .and(Formula::cmp("x0", CmpOp::Ge, 10i64));
    g.bench_function("dbm_negative_cycle", |b| {
        b.iter(|| is_satisfiable(std::hint::black_box(&diff), &e))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
