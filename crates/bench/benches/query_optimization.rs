//! Use-case bench B4 — the paper's §1 claim: derived global constraints
//! optimise queries against the integrated view by "eliminating
//! subqueries which are known to yield empty results". Compares the
//! constraint-pruned path against the full scan it replaces, across
//! store sizes, plus the key-index fast path.
//!
//! The `mixed_rw_*` pair measures **incremental index maintenance**: an
//! interleaved update+query workload run once with wholesale
//! invalidation (every mutation discards all postings and statistics;
//! every query rebuilds) and once with per-object deltas. CI gates the
//! incremental side at ≥2× the wholesale side within each recording.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use interop_bench::synthetic_store;
use interop_constraint::{CmpOp, Formula};
use interop_model::{ClassName, Value};
use interop_storage::{
    execute_costed, CompositePolicy, IndexMaintenance, OptimizeOutcome, Optimizer, Query,
};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("query_optimization");
    g.sample_size(20);
    for n in [1_000usize, 10_000, 100_000] {
        let store = synthetic_store(n, 42);
        // The derived global constraint: rating >= 5 for every item.
        let opt = Optimizer::new(
            &store,
            "Item",
            vec![Formula::cmp("rating", CmpOp::Ge, 5i64)],
        );
        // A subquery contradicting the derived constraint: empty.
        let doomed = Formula::cmp("rating", CmpOp::Lt, 5i64);
        // Sanity: the optimizer prunes it without scanning.
        let (hits, outcome) = opt.execute(&store, &doomed).expect("executes");
        assert!(hits.is_empty());
        assert_eq!(outcome, OptimizeOutcome::PrunedEmpty);

        g.bench_with_input(BenchmarkId::new("pruned_empty", n), &n, |b, _| {
            b.iter(|| {
                opt.execute(&store, std::hint::black_box(&doomed))
                    .expect("executes")
            })
        });
        g.bench_with_input(BenchmarkId::new("baseline_scan", n), &n, |b, _| {
            b.iter(|| {
                Query::new("Item", doomed.clone())
                    .scan(&store)
                    .expect("scans")
            })
        });

        // The headline pair: a selective conjunctive query answered by the
        // naive full scan vs. the planner (hash posting for the equality ∩
        // sorted-index range, residuals on survivors only). The planner's
        // secondary indexes are built lazily on the first execution and
        // reused after (the store is not mutated here).
        let selective =
            Formula::cmp("rating", CmpOp::Eq, 7i64).and(Formula::cmp("price", CmpOp::Le, 30.0));
        let (planned_hits, outcome) = opt.execute(&store, &selective).expect("executes");
        assert_eq!(outcome, OptimizeOutcome::IndexScan);
        let scanned_hits = Query::new("Item", selective.clone())
            .scan(&store)
            .expect("scans");
        assert_eq!(planned_hits.len(), scanned_hits.len(), "oracle agreement");

        g.bench_with_input(BenchmarkId::new("full_scan", n), &n, |b, _| {
            b.iter(|| {
                Query::new("Item", selective.clone())
                    .scan(&store)
                    .expect("scans")
            })
        });
        g.bench_with_input(BenchmarkId::new("planned", n), &n, |b, _| {
            b.iter(|| {
                opt.execute(&store, std::hint::black_box(&selective))
                    .expect("executes")
            })
        });

        let key_probe = Formula::cmp("isbn", CmpOp::Eq, format!("isbn-{}", n / 2).as_str());
        g.bench_with_input(BenchmarkId::new("key_lookup", n), &n, |b, _| {
            b.iter(|| {
                opt.execute(&store, std::hint::black_box(&key_probe))
                    .expect("executes")
            })
        });
        // A satisfiable single-range predicate: pays the pruning check,
        // then answers from the sorted index (previously a full scan).
        let satisfiable = Formula::cmp("rating", CmpOp::Ge, 9i64);
        g.bench_with_input(BenchmarkId::new("pruning_overhead_scan", n), &n, |b, _| {
            b.iter(|| {
                opt.execute(&store, std::hint::black_box(&satisfiable))
                    .expect("executes")
            })
        });
    }

    // Composite-index pair: the recurring `rating = 7 ∧ shelf = 13`
    // conjunction executed through the plan it gets *before* admission
    // (two-way posting-list intersection) and through the plan it gets
    // *after* (one composite lookup). Both plans run against the same
    // warm store; CI gates the composite at ≥2× within each recording.
    for n in [1_000usize, 10_000] {
        let mut store = synthetic_store(n, 42);
        // Baseline plan first, under a never-admit policy.
        store.set_composite_policy(CompositePolicy::disabled());
        let opt = Optimizer::new(
            &store,
            "Item",
            vec![Formula::cmp("rating", CmpOp::Ge, 5i64)],
        );
        let pair =
            Formula::cmp("rating", CmpOp::Eq, 7i64).and(Formula::cmp("shelf", CmpOp::Eq, 13i64));
        let isect_plan = opt.costed_plan(&store, &pair);
        assert!(isect_plan.composite_probe().is_none());
        assert_eq!(isect_plan.index_steps().len(), 2, "two-way intersection");
        // Now let the default policy admit the recurring pair and plan
        // again: one composite probe replaces the intersection.
        store.set_composite_policy(CompositePolicy::default());
        for _ in 0..CompositePolicy::default().admit_after {
            let _ = opt.costed_plan(&store, &pair);
        }
        let composite_plan = opt.costed_plan(&store, &pair);
        assert!(
            composite_plan.composite_probe().is_some(),
            "default policy admits the recurring pair"
        );
        // Warm the composite index and check both plans agree with the
        // scan oracle.
        let (isect_hits, _) = execute_costed(&store, &isect_plan).expect("executes");
        let (composite_hits, _) = execute_costed(&store, &composite_plan).expect("executes");
        assert_eq!(isect_hits, composite_hits, "same answer either way");
        let mut scanned = Query::new("Item", pair.clone())
            .scan(&store)
            .expect("scans");
        scanned.sort_unstable();
        assert_eq!(composite_hits, scanned, "oracle agreement");

        g.bench_with_input(BenchmarkId::new("composite_isect", n), &n, |b, _| {
            b.iter(|| execute_costed(&store, std::hint::black_box(&isect_plan)).expect("executes"))
        });
        g.bench_with_input(BenchmarkId::new("composite_lookup", n), &n, |b, _| {
            b.iter(|| {
                execute_costed(&store, std::hint::black_box(&composite_plan)).expect("executes")
            })
        });
    }

    // Mixed read/write workload: each iteration commits one rating
    // update, then answers three planned queries. Wholesale invalidation
    // pays full index + statistics rebuilds on every iteration;
    // incremental maintenance applies O(log n) deltas.
    for n in [1_000usize, 10_000] {
        for (mode_name, mode) in [
            ("mixed_rw_wholesale", IndexMaintenance::Wholesale),
            ("mixed_rw_incremental", IndexMaintenance::Incremental),
        ] {
            let mut store = synthetic_store(n, 7);
            store.set_index_maintenance(mode);
            let ids = store.db().extension(&ClassName::new("Item"));
            let opt = Optimizer::new(
                &store,
                "Item",
                vec![Formula::cmp("rating", CmpOp::Ge, 5i64)],
            );
            let preds = [
                Formula::cmp("rating", CmpOp::Eq, 7i64).and(Formula::cmp("price", CmpOp::Le, 30.0)),
                Formula::cmp("price", CmpOp::Le, 5.0),
                Formula::isin("rating", [9i64, 10]),
            ];
            // Warm the indexes and statistics once.
            for p in &preds {
                opt.execute(&store, p).expect("warm-up");
            }
            let mut i = 0usize;
            g.bench_with_input(BenchmarkId::new(mode_name, n), &n, |b, _| {
                b.iter(|| {
                    i += 1;
                    let id = ids[(i * 37) % ids.len()];
                    store
                        .update(id, "rating", Value::Int(5 + (i as i64 % 6)))
                        .expect("rating stays in bounds");
                    let mut total = 0usize;
                    for p in &preds {
                        total += opt.execute(&store, p).expect("executes").0.len();
                    }
                    total
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
