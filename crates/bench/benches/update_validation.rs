//! Use-case bench B5 — the paper's §1 claim: knowing the local
//! constraints, a global transaction manager can pre-validate update
//! subtransactions and skip submitting those "which will certainly be
//! rejected by the local transaction manager". Compares cheap
//! pre-validation against submit-and-roll-back, sweeping the violation
//! rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use interop_bench::synthetic_store;
use interop_model::Value;
use interop_storage::{Transaction, TxnOutcome};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn batch(
    store: &interop_storage::Store,
    n_ops: usize,
    violation_rate: f64,
    seed: u64,
) -> Transaction {
    let ids: Vec<_> = store.db().objects().map(|o| o.id).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut txn = Transaction::new();
    for i in 0..n_ops {
        let id = ids[rng.gen_range(0..ids.len())];
        // Violations push the rating below the enforced `rating >= 5`;
        // valid updates stay within bounds.
        let violating = (i as f64 / n_ops as f64) < violation_rate;
        let rating = if violating {
            rng.gen_range(1..5)
        } else {
            rng.gen_range(5..=10)
        };
        txn = txn.update(id, "rating", Value::Int(rating));
    }
    txn
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("update_validation");
    g.sample_size(10);
    let store = synthetic_store(5_000, 42);
    for rate in [0.0f64, 0.1, 0.5, 1.0] {
        let txn = batch(&store, 500, rate, 7);
        g.bench_with_input(
            BenchmarkId::new("prevalidate", format!("viol_{rate}")),
            &rate,
            |b, _| {
                b.iter(|| {
                    // The early-reject path: side-effect free, stops at
                    // the first doomed operation.
                    let _ = std::hint::black_box(&txn).prevalidate(&store);
                })
            },
        );
        g.bench_with_input(
            BenchmarkId::new("submit_and_rollback", format!("viol_{rate}")),
            &rate,
            |b, _| {
                b.iter_batched(
                    || (store.detached_clone(), txn.clone()),
                    |(mut s, t)| match t.commit(&mut s) {
                        TxnOutcome::Committed { .. } | TxnOutcome::RolledBack { .. } => s,
                    },
                    criterion::BatchSize::LargeInput,
                )
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
