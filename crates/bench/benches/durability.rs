//! Durability bench — what the write-ahead log costs on the write
//! path. Loads 10k objects into a volatile store (`DurabilityMode::Off`
//! — the pre-durability baseline, byte-identical behaviour) and into a
//! WAL-backed store, then prices recovery: reopening the 10k-object
//! log, and reopening after `snapshot_now` (replay-free).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use interop_constraint::Catalog;
use interop_model::{ClassDef, ClassName, Database, Object, ObjectId, Schema, Type};
use interop_storage::{DurabilityMode, Store};

const N: usize = 10_000;

fn schema() -> Schema {
    Schema::new(
        "Bench",
        vec![ClassDef::new("Item")
            .attr("k", Type::Str)
            .attr("v", Type::Int)],
    )
    .expect("static schema")
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("interop-bench-dur-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn item(serial: u64) -> Object {
    Object::new(ObjectId::new(1, serial), ClassName::new("Item"))
        .with("k", format!("k{serial}").as_str())
        .with("v", serial as i64)
}

fn load(store: &mut Store) {
    for serial in 1..=N as u64 {
        store.insert(item(serial)).expect("in-schema insert");
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("durability");
    g.sample_size(10);

    g.bench_with_input(BenchmarkId::new("writes_off", N), &N, |b, _| {
        b.iter(|| {
            let mut s = Store::new(Database::new(schema(), 1), Catalog::new());
            load(&mut s);
            std::hint::black_box(s.db().len())
        })
    });

    let dir = scratch("wal");
    g.bench_with_input(BenchmarkId::new("writes_wal", N), &N, |b, _| {
        b.iter_batched(
            || {
                // Fresh log per run: WAL append cost, not replay cost.
                let _ = std::fs::remove_dir_all(&dir);
                Store::open(
                    Database::new(schema(), 1),
                    Catalog::new(),
                    &dir,
                    DurabilityMode::Wal,
                )
                .expect("open durable store")
            },
            |mut s| {
                load(&mut s);
                std::hint::black_box(s.db().len())
            },
            BatchSize::PerIteration,
        )
    });

    // Recovery price of the same 10k-object history: replayed from the
    // log, then (after `snapshot_now`) loaded straight from a snapshot.
    let reopen = |tag: &str| {
        let d = scratch(tag);
        let mut s = Store::open(
            Database::new(schema(), 1),
            Catalog::new(),
            &d,
            DurabilityMode::Wal,
        )
        .expect("open durable store");
        load(&mut s);
        if tag == "snap" {
            s.snapshot_now().expect("snapshot");
        }
        drop(s);
        d
    };
    let wal_dir = reopen("replay");
    g.bench_with_input(BenchmarkId::new("recover_replay", N), &N, |b, _| {
        b.iter(|| {
            let s = Store::open(
                Database::new(schema(), 1),
                Catalog::new(),
                &wal_dir,
                DurabilityMode::Wal,
            )
            .expect("recover");
            std::hint::black_box(s.db().len())
        })
    });
    let snap_dir = reopen("snap");
    g.bench_with_input(BenchmarkId::new("recover_snapshot", N), &N, |b, _| {
        b.iter(|| {
            let s = Store::open(
                Database::new(schema(), 1),
                Catalog::new(),
                &snap_dir,
                DurabilityMode::Wal,
            )
            .expect("recover");
            std::hint::black_box(s.db().len())
        })
    });

    g.finish();
    for d in [dir, wal_dir, snap_dir] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
