//! Durability bench — what the write-ahead log costs on the write
//! path. Loads 10k objects into a volatile store (`DurabilityMode::Off`
//! — the pre-durability baseline, byte-identical behaviour) and into a
//! WAL-backed store, then prices recovery: reopening the 10k-object
//! log, and reopening after `snapshot_now` (replay-free).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use interop_constraint::Catalog;
use interop_model::{ClassDef, ClassName, Database, Object, ObjectId, Schema, Type, Value};
use interop_storage::{DurabilityMode, GroupCommitPolicy, MvccStore, Store};

const N: usize = 10_000;

/// Concurrent committers for the group-commit bench.
const GROUP_THREADS: usize = 8;

/// Commits each committer keeps in flight before redeeming the oldest
/// durability ticket. Group-commit batches grow with the total number
/// of unacknowledged commits (`GROUP_THREADS × PIPELINE_DEPTH`), so
/// pipelining — not thread count — is what decouples the batch size
/// from the session count and lets one `sync_data` cover hundreds of
/// commits.
const PIPELINE_DEPTH: usize = 64;

fn schema() -> Schema {
    Schema::new(
        "Bench",
        vec![ClassDef::new("Item")
            .attr("k", Type::Str)
            .attr("v", Type::Int)],
    )
    .expect("static schema")
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("interop-bench-dur-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn item(serial: u64) -> Object {
    Object::new(ObjectId::new(1, serial), ClassName::new("Item"))
        .with("k", format!("k{serial}").as_str())
        .with("v", serial as i64)
}

fn load(store: &mut Store) {
    for serial in 1..=N as u64 {
        store.insert(item(serial)).expect("in-schema insert");
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("durability");
    g.sample_size(10);

    g.bench_with_input(BenchmarkId::new("writes_off", N), &N, |b, _| {
        b.iter(|| {
            let mut s = Store::new(Database::new(schema(), 1), Catalog::new());
            load(&mut s);
            std::hint::black_box(s.db().len())
        })
    });

    let dir = scratch("wal");
    g.bench_with_input(BenchmarkId::new("writes_wal", N), &N, |b, _| {
        b.iter_batched(
            || {
                // Fresh log per run: WAL append cost, not replay cost.
                let _ = std::fs::remove_dir_all(&dir);
                Store::open(
                    Database::new(schema(), 1),
                    Catalog::new(),
                    &dir,
                    DurabilityMode::Wal,
                )
                .expect("open durable store")
            },
            |mut s| {
                load(&mut s);
                std::hint::black_box(s.db().len())
            },
            BatchSize::PerIteration,
        )
    });

    // Same txn count, but through concurrent MVCC sessions with group
    // commit: committers pipeline their commits ([`MvccTxn::
    // commit_pipelined`]), so hundreds of unacknowledged commits are in
    // flight and one elected leader's `sync_data` covers them all.
    // Every ticket is redeemed inside the measured region — each txn's
    // durability acknowledgement is paid for, just in batches instead
    // of one fsync each. Disjoint write sets (one seeded object per
    // thread) keep first-committer-wins out of the picture, so this
    // prices the sync batching alone.
    let grouped_dir = scratch("grouped");
    g.bench_with_input(BenchmarkId::new("writes_wal_grouped", N), &N, |b, _| {
        b.iter_batched(
            || {
                let _ = std::fs::remove_dir_all(&grouped_dir);
                let mut s = Store::open(
                    Database::new(schema(), 1),
                    Catalog::new(),
                    &grouped_dir,
                    DurabilityMode::Wal,
                )
                .expect("open durable store");
                s.set_group_commit(GroupCommitPolicy::grouped(4096, 0));
                for th in 1..=GROUP_THREADS as u64 {
                    s.insert(item(th)).expect("seed one object per thread");
                }
                MvccStore::new(s)
            },
            |store| {
                std::thread::scope(|scope| {
                    for th in 0..GROUP_THREADS as u64 {
                        let store = &store;
                        scope.spawn(move || {
                            let id = ObjectId::new(1, th + 1);
                            let mut pending = std::collections::VecDeque::new();
                            for i in 0..N.div_ceil(GROUP_THREADS) {
                                let mut t = store.begin();
                                t.update(id, "v", Value::Int(i as i64))
                                    .expect("in-schema update");
                                pending.push_back(
                                    t.commit_pipelined().expect("disjoint writers commit"),
                                );
                                if pending.len() >= PIPELINE_DEPTH {
                                    let oldest = pending.pop_front().expect("non-empty");
                                    std::hint::black_box(
                                        oldest.wait().expect("covering sync lands"),
                                    );
                                }
                            }
                            for ticket in pending {
                                std::hint::black_box(ticket.wait().expect("covering sync lands"));
                            }
                        });
                    }
                });
            },
            BatchSize::PerIteration,
        )
    });

    // Recovery price of the same 10k-object history: replayed from the
    // log, then (after `snapshot_now`) loaded straight from a snapshot.
    let reopen = |tag: &str| {
        let d = scratch(tag);
        let mut s = Store::open(
            Database::new(schema(), 1),
            Catalog::new(),
            &d,
            DurabilityMode::Wal,
        )
        .expect("open durable store");
        load(&mut s);
        if tag == "snap" {
            s.snapshot_now().expect("snapshot");
        }
        drop(s);
        d
    };
    let wal_dir = reopen("replay");
    g.bench_with_input(BenchmarkId::new("recover_replay", N), &N, |b, _| {
        b.iter(|| {
            let s = Store::open(
                Database::new(schema(), 1),
                Catalog::new(),
                &wal_dir,
                DurabilityMode::Wal,
            )
            .expect("recover");
            std::hint::black_box(s.db().len())
        })
    });
    let snap_dir = reopen("snap");
    g.bench_with_input(BenchmarkId::new("recover_snapshot", N), &N, |b, _| {
        b.iter(|| {
            let s = Store::open(
                Database::new(schema(), 1),
                Catalog::new(),
                &snap_dir,
                DurabilityMode::Wal,
            )
            .expect("recover");
            std::hint::black_box(s.db().len())
        })
    });

    g.finish();
    for d in [dir, grouped_dir, wal_dir, snap_dir] {
        let _ = std::fs::remove_dir_all(&d);
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
