//! Experiment F1 bench: parsing and printing the Figure-1 schemas.
//! Regenerates the figure (parse → print → parse fixpoint) and measures
//! front-end throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use interop_core::fixtures::{BOOKSELLER_TM, CSLIBRARY_TM, PAPER_SPEC};
use interop_lang::{parse_database, parse_spec, print_database};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1_schemas");
    g.bench_function("parse_cslibrary", |b| {
        b.iter(|| parse_database(std::hint::black_box(CSLIBRARY_TM)).expect("parses"))
    });
    g.bench_function("parse_bookseller", |b| {
        b.iter(|| parse_database(std::hint::black_box(BOOKSELLER_TM)).expect("parses"))
    });
    let local = parse_database(CSLIBRARY_TM).expect("parses");
    let remote = parse_database(BOOKSELLER_TM).expect("parses");
    g.bench_function("parse_spec", |b| {
        b.iter(|| {
            parse_spec(
                std::hint::black_box(PAPER_SPEC),
                &local.schema,
                &remote.schema,
            )
            .expect("parses")
        })
    });
    g.bench_function("print_round_trip", |b| {
        b.iter(|| {
            let printed = print_database(&local);
            parse_database(&printed).expect("round trip")
        })
    });
    g.finish();

    println!(
        "\n[F1] constraints parsed: CSLibrary={} Bookseller={}",
        local.catalog.len(),
        remote.catalog.len()
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
