//! Use-case bench B2: global-constraint derivation cost vs the number of
//! component constraints. Pairwise df-combination is quadratic in the
//! constraints per equivalent property — the sweep shows where that
//! matters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use interop_bench::{synthetic_fixture, SyntheticConfig};
use interop_core::derive::{derive_global_constraints, DeriveOptions};
use interop_core::subjectivity::{classify_constraints, property_subjectivity};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("derive_scaling");
    g.sample_size(10);
    for n_constraints in [4usize, 16, 64, 256] {
        let fx = synthetic_fixture(SyntheticConfig {
            local_n: 10,
            remote_n: 10,
            match_ratio: 0.5,
            constraints_per_side: n_constraints,
            seed: 42,
        });
        let conf = interop_conform::conform(
            &fx.local_db,
            &fx.local_catalog,
            &fx.remote_db,
            &fx.remote_catalog,
            &fx.spec,
        )
        .expect("conforms");
        let subj = property_subjectivity(&conf);
        let (statuses, _) = classify_constraints(&conf, &subj);
        g.bench_with_input(
            BenchmarkId::from_parameter(n_constraints),
            &n_constraints,
            |b, _| {
                b.iter(|| {
                    derive_global_constraints(&conf, &subj, &statuses, DeriveOptions::default())
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
