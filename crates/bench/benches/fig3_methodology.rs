//! Experiment F3 bench: one full methodology round and the complete
//! repair loop on the paper fixture.

use criterion::{criterion_group, criterion_main, Criterion};
use interop_core::fixtures;
use interop_core::{Integrator, IntegratorOptions};

fn integrator() -> Integrator {
    let fx = fixtures::paper_fixture();
    Integrator::new(
        fx.local_db,
        fx.local_catalog,
        fx.remote_db,
        fx.remote_catalog,
        fx.spec,
    )
    .with_options(IntegratorOptions {
        merge: fixtures::merge_options(),
        ..Default::default()
    })
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig3_methodology");
    g.sample_size(20);
    let integ = integrator();
    g.bench_function("single_round", |b| b.iter(|| integ.run().expect("runs")));
    g.bench_function("repair_loop", |b| {
        b.iter(|| {
            let mut fresh = integrator();
            fresh.run_with_repairs(5).expect("loop terminates")
        })
    });
    g.finish();

    let outcome = integ.run().expect("runs");
    println!(
        "\n[F3] derived={} conflicts={} implied={} skipped={}",
        outcome.global.object.len(),
        outcome.conflicts.len(),
        outcome.implied.len(),
        outcome.global.skipped.len()
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
