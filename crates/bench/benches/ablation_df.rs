//! Ablation A1: derivation with the decision-function classification
//! disabled (every df treated as conflict-ignoring `any`). Reports what
//! the §5.1.2 analysis buys: the df-combination constraints disappear
//! and value subjectivity goes undetected.

use criterion::{criterion_group, criterion_main, Criterion};
use interop_core::derive::DerivationOrigin;
use interop_core::fixtures;
use interop_core::{Integrator, IntegratorOptions};

fn integrator(ablate: bool) -> Integrator {
    let fx = fixtures::paper_fixture();
    Integrator::new(
        fx.local_db,
        fx.local_catalog,
        fx.remote_db,
        fx.remote_catalog,
        fx.spec,
    )
    .with_options(IntegratorOptions {
        merge: fixtures::merge_options(),
        ablate_df_classification: ablate,
        ..Default::default()
    })
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation_df");
    g.sample_size(20);
    let full = integrator(false);
    let ablated = integrator(true);
    g.bench_function("with_df_classification", |b| {
        b.iter(|| full.run().expect("runs"))
    });
    g.bench_function("ablated_all_any", |b| {
        b.iter(|| ablated.run().expect("runs"))
    });
    g.finish();

    let f = full.run().expect("runs");
    let a = ablated.run().expect("runs");
    let df_count = |o: &interop_core::IntegrationOutcome| {
        o.global
            .object
            .iter()
            .filter(|d| matches!(d.origin, DerivationOrigin::DfCombination(_)))
            .count()
    };
    println!(
        "\n[A1] df-combinations: full={} ablated={} | implicit risks: full={} ablated={} | subjective constraints: full={} ablated={}",
        df_count(&f),
        df_count(&a),
        f.conflicts.len(),
        a.conflicts.len(),
        f.statuses
            .values()
            .filter(|s| **s == interop_constraint::Status::Subjective)
            .count(),
        a.statuses
            .values()
            .filter(|s| **s == interop_constraint::Status::Subjective)
            .count(),
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
