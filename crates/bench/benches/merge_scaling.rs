//! Use-case bench B1: entity-resolution + fusion throughput vs extent
//! size and match ratio. The hash-join resolver should scale near
//! linearly; the match ratio shifts work between matching and fusion.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use interop_bench::{synthetic_fixture, SyntheticConfig};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("merge_scaling");
    g.sample_size(10);
    for n in [100usize, 1_000, 10_000, 50_000] {
        for ratio in [0.1f64, 0.9] {
            let fx = synthetic_fixture(SyntheticConfig {
                local_n: n,
                remote_n: n,
                match_ratio: ratio,
                constraints_per_side: 2,
                seed: 42,
            });
            let conf = interop_conform::conform(
                &fx.local_db,
                &fx.local_catalog,
                &fx.remote_db,
                &fx.remote_catalog,
                &fx.spec,
            )
            .expect("conforms");
            g.throughput(Throughput::Elements((2 * n) as u64));
            g.bench_with_input(BenchmarkId::new(format!("match_{ratio}"), n), &n, |b, _| {
                b.iter(|| interop_merge::merge(&conf, &Default::default()).expect("merges"))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
