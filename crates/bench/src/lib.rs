//! Workload generators for the benchmark harness.
//!
//! The paper has no quantitative evaluation; these generators provide the
//! synthetic workloads behind the use-case benchmarks (merge scaling,
//! derivation scaling, query optimisation, update validation) and the
//! parameter sweeps recorded in `EXPERIMENTS.md`.
//!
//! # Invariants
//!
//! * **Workloads are deterministic given their config**: every generator
//!   threads a seeded [`rand::rngs::StdRng`], so two runs with the same
//!   [`SyntheticConfig`] (or `(n, seed)` pair) produce byte-identical
//!   databases — benchmark recordings and the `EXPLAIN` snapshot suite
//!   both rely on it.
//! * **Generated data satisfies its own catalog**: constraints emitted
//!   alongside a workload hold on the generated extents (the
//!   constraint-enforcing store would reject the fixture otherwise), so
//!   benchmarks measure steady-state behaviour, not rejection paths.

use interop_constraint::{
    Catalog, ClassConstraint, CmpOp, ConstraintId, Formula, ObjectConstraint,
};
use interop_core::fixtures::Fixture;
use interop_model::{ClassDef, ClassName, Database, DbName, Schema, Type, Value};
use interop_spec::{ComparisonRule, Conversion, Decision, InterCond, PropEq, Side, Spec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of a synthetic two-database workload.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticConfig {
    /// Objects in the local database.
    pub local_n: usize,
    /// Objects in the remote database.
    pub remote_n: usize,
    /// Fraction of remote objects sharing a key with a local object.
    pub match_ratio: f64,
    /// Conditional constraints generated per side (guard on `grade`,
    /// bound on the avg-governed `score` — each pair produces
    /// df-combination work in the deriver).
    pub constraints_per_side: usize,
    /// RNG seed (the workload is deterministic given the config).
    pub seed: u64,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            local_n: 1_000,
            remote_n: 1_000,
            match_ratio: 0.5,
            constraints_per_side: 4,
            seed: 42,
        }
    }
}

/// The synthetic schema pair: a local `LProd` (score scale 1..5) and a
/// remote `RProd` (score scale 1..10), joined on `key`, with `score`
/// fused by `avg` through a `multiply(2)` conversion — the same shape as
/// the paper's rating example, at arbitrary scale.
pub fn synthetic_fixture(cfg: SyntheticConfig) -> Fixture {
    let local_schema = Schema::new(
        "SynLocal",
        vec![ClassDef::new("LProd")
            .attr("key", Type::Str)
            .attr("price", Type::Real)
            .attr("score", Type::Range(1, 5))
            .attr("grade", Type::Int)],
    )
    .expect("static schema");
    let remote_schema = Schema::new(
        "SynRemote",
        vec![ClassDef::new("RProd")
            .attr("key", Type::Str)
            .attr("price", Type::Real)
            .attr("score", Type::Range(1, 10))
            .attr("grade", Type::Int)],
    )
    .expect("static schema");

    let ldb_name = DbName::new("SynLocal");
    let rdb_name = DbName::new("SynRemote");
    let lclass = ClassName::new("LProd");
    let rclass = ClassName::new("RProd");
    let mut lcat = Catalog::new();
    let mut rcat = Catalog::new();
    lcat.add_class(ClassConstraint::key(
        ConstraintId::new(&ldb_name, &lclass, "cc_key"),
        "LProd",
        vec!["key"],
    ));
    rcat.add_class(ClassConstraint::key(
        ConstraintId::new(&rdb_name, &rclass, "cc_key"),
        "RProd",
        vec!["key"],
    ));
    // Baseline objective-ish constraints.
    lcat.add_object(ObjectConstraint::new(
        ConstraintId::new(&ldb_name, &lclass, "oc_price"),
        "LProd",
        Formula::cmp("price", CmpOp::Ge, 0.0),
    ));
    rcat.add_object(ObjectConstraint::new(
        ConstraintId::new(&rdb_name, &rclass, "oc_price"),
        "RProd",
        Formula::cmp("price", CmpOp::Ge, 0.0),
    ));
    // Conditional subjective constraints on the avg-governed score.
    for i in 0..cfg.constraints_per_side {
        let guard = Formula::cmp("grade", CmpOp::Eq, i as i64);
        lcat.add_object(ObjectConstraint::new(
            ConstraintId::new(&ldb_name, &lclass, &format!("oc_s{i}")),
            "LProd",
            guard
                .clone()
                .implies(Formula::cmp("score", CmpOp::Ge, (i % 4 + 1) as i64)),
        ));
        rcat.add_object(ObjectConstraint::new(
            ConstraintId::new(&rdb_name, &rclass, &format!("oc_s{i}")),
            "RProd",
            guard.implies(Formula::cmp("score", CmpOp::Ge, (i % 8 + 2) as i64)),
        ));
    }

    let mut spec = Spec::new("SynLocal", "SynRemote");
    spec.add_rule(ComparisonRule::equality(
        "r_eq",
        "LProd",
        "RProd",
        vec![InterCond::eq("key", "key")],
    ));
    spec.add_propeq(PropEq::named_after_remote(
        "LProd",
        "score",
        "RProd",
        "score",
        Conversion::Multiply(2.0),
        Conversion::Id,
        Decision::Avg,
    ));
    spec.add_propeq(PropEq::named_after_remote(
        "LProd",
        "price",
        "RProd",
        "price",
        Conversion::Id,
        Conversion::Id,
        Decision::Trust(Side::Local),
    ));
    spec.add_propeq(PropEq::named_after_remote(
        "LProd",
        "grade",
        "RProd",
        "grade",
        Conversion::Id,
        Conversion::Id,
        Decision::Any,
    ));

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    // Data must satisfy its own conditional constraints (the paper's
    // premise: component constraints are locally *enforced*): given a
    // grade that triggers constraint i, the score respects its bound.
    let local_floor = |grade: i64| -> i64 {
        if (grade as usize) < cfg.constraints_per_side {
            (grade % 4 + 1).max(1)
        } else {
            1
        }
    };
    let remote_floor = |grade: i64| -> i64 {
        if (grade as usize) < cfg.constraints_per_side {
            (grade % 8 + 2).max(1)
        } else {
            1
        }
    };
    let mut local_db = Database::new(local_schema, 1);
    let mut local_grades = Vec::with_capacity(cfg.local_n);
    for i in 0..cfg.local_n {
        let grade = rng.gen_range(0..8i64);
        local_grades.push(grade);
        local_db
            .create(
                "LProd",
                vec![
                    ("key", Value::str(format!("k{i}"))),
                    ("price", Value::real(rng.gen_range(1.0..500.0))),
                    ("score", Value::Int(rng.gen_range(local_floor(grade)..=5))),
                    ("grade", Value::Int(grade)),
                ],
            )
            .expect("synthetic local object");
    }
    let mut remote_db = Database::new(remote_schema, 2);
    let matched = ((cfg.remote_n as f64) * cfg.match_ratio.clamp(0.0, 1.0)) as usize;
    for i in 0..cfg.remote_n {
        // The first `matched` remote objects reuse distinct local keys
        // (up to the local population); the rest are fresh.
        let key = if i < matched && cfg.local_n > 0 {
            format!("k{}", i % cfg.local_n)
        } else {
            format!("r{i}")
        };
        // `grade` is fused by the conflict-ignoring `any`: the paper's
        // model treats such properties as objective — both databases
        // record the same real-world value — so matched pairs must agree.
        let grade = if i < matched && cfg.local_n > 0 {
            local_grades[i % cfg.local_n]
        } else {
            rng.gen_range(0..8i64)
        };
        remote_db
            .create(
                "RProd",
                vec![
                    ("key", Value::str(key)),
                    ("price", Value::real(rng.gen_range(1.0..500.0))),
                    ("score", Value::Int(rng.gen_range(remote_floor(grade)..=10))),
                    ("grade", Value::Int(grade)),
                ],
            )
            .expect("synthetic remote object");
    }
    Fixture {
        local_db,
        local_catalog: lcat,
        remote_db,
        remote_catalog: rcat,
        spec,
    }
}

/// A populated constraint-enforcing store for the storage benchmarks:
/// `n` items with a string key, a real price, a 1..10 rating, and a
/// 50-valued `shelf` tag. `shelf` cycles deterministically *outside*
/// the seeded RNG stream (`(i·17) mod 50`, a full cycle since
/// `gcd(17, 50) = 1`, so each shelf holds exactly `n/50` items at
/// multiples of 50) — adding it left every `(n, seed)` store's prices
/// and ratings, and therefore the pinned EXPLAIN snapshots and
/// benchmark workloads, byte-identical. The `rating = r ∧ shelf = s`
/// conjunction is the recurring hot pair the composite-index
/// benchmarks and the scalability tier exercise.
pub fn synthetic_store(n: usize, seed: u64) -> interop_storage::Store {
    let schema = Schema::new(
        "Shop",
        vec![ClassDef::new("Item")
            .attr("isbn", Type::Str)
            .attr("price", Type::Real)
            .attr("rating", Type::Range(1, 10))
            .attr("shelf", Type::Int)],
    )
    .expect("static schema");
    let db_name = DbName::new("Shop");
    let class = ClassName::new("Item");
    let mut cat = Catalog::new();
    cat.add_class(ClassConstraint::key(
        ConstraintId::new(&db_name, &class, "cc_key"),
        "Item",
        vec!["isbn"],
    ));
    cat.add_object(ObjectConstraint::new(
        ConstraintId::new(&db_name, &class, "oc_price"),
        "Item",
        Formula::cmp("price", CmpOp::Ge, 0.0),
    ));
    // The "derived global constraint" the optimizer will exploit: every
    // item in this (integrated) store has rating >= 5.
    cat.add_object(ObjectConstraint::new(
        ConstraintId::new(&db_name, &class, "oc_rating"),
        "Item",
        Formula::cmp("rating", CmpOp::Ge, 5i64),
    ));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut store = interop_storage::Store::new(Database::new(schema, 1), cat);
    for i in 0..n {
        store
            .create(
                "Item",
                vec![
                    ("isbn", Value::str(format!("isbn-{i}"))),
                    ("price", Value::real(rng.gen_range(1.0..100.0))),
                    ("rating", Value::Int(rng.gen_range(5..=10))),
                    ("shelf", Value::Int(((i * 17) % 50) as i64)),
                ],
            )
            .expect("synthetic item");
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_fixture_is_consistent() {
        let fx = synthetic_fixture(SyntheticConfig {
            local_n: 50,
            remote_n: 50,
            match_ratio: 0.5,
            constraints_per_side: 3,
            seed: 7,
        });
        assert_eq!(fx.local_db.len(), 50);
        assert_eq!(fx.remote_db.len(), 50);
        // The pipeline runs end to end on the synthetic workload.
        let outcome = interop_core::Integrator::new(
            fx.local_db,
            fx.local_catalog,
            fx.remote_db,
            fx.remote_catalog,
            fx.spec,
        )
        .run()
        .expect("synthetic integrates");
        assert!(!outcome.global.object.is_empty());
    }

    #[test]
    fn synthetic_store_enforces() {
        let mut s = synthetic_store(100, 1);
        assert_eq!(s.db().len(), 100);
        let err = s
            .create(
                "Item",
                vec![("isbn", Value::str("x")), ("rating", Value::Int(2))],
            )
            .unwrap_err();
        assert!(matches!(
            err,
            interop_storage::StoreError::ObjectConstraintViolated { .. }
        ));
    }

    #[test]
    fn match_ratio_controls_merges() {
        let fx = synthetic_fixture(SyntheticConfig {
            local_n: 200,
            remote_n: 200,
            match_ratio: 1.0,
            constraints_per_side: 0,
            seed: 3,
        });
        let conf = interop_conform::conform(
            &fx.local_db,
            &fx.local_catalog,
            &fx.remote_db,
            &fx.remote_catalog,
            &fx.spec,
        )
        .unwrap();
        let view = interop_merge::merge(&conf, &Default::default()).unwrap();
        let merged = view
            .objects
            .values()
            .filter(|g| g.local.is_some() && g.remote.is_some())
            .count();
        assert!(merged > 150, "high match ratio should merge most: {merged}");
    }
}
