//! End-to-end soundness property: on arbitrary synthetic workloads whose
//! component databases satisfy their own constraints, the *derived*
//! global constraints are never violated by the merged instances — i.e.
//! the §5.2.1 derivation machinery (pass-through, single-source scopes,
//! df-combination with conditions (1)/(2)) produces only sound
//! constraints.

use interop_bench::{synthetic_fixture, SyntheticConfig};
use interop_core::conflict::ConflictKind;
use interop_core::{Integrator, IntegratorOptions};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn derived_constraints_sound_on_instances(
        local_n in 5usize..60,
        remote_n in 5usize..60,
        match_pct in 0u8..=100,
        constraints in 0usize..6,
        seed in 0u64..1000,
    ) {
        let fx = synthetic_fixture(SyntheticConfig {
            local_n,
            remote_n,
            match_ratio: match_pct as f64 / 100.0,
            constraints_per_side: constraints,
            seed,
        });
        // Precondition: each side satisfies its own constraints. The
        // generator draws scores uniformly, so conditional constraints
        // may be violated locally — filter those runs out (the paper's
        // premise is locally-enforced constraints).
        let locally_clean = interop_constraint::eval::check_all_object(&fx.local_db, &fx.local_catalog)
            && interop_constraint::eval::check_all_object(&fx.remote_db, &fx.remote_catalog);
        prop_assume!(locally_clean);
        let outcome = Integrator::new(
            fx.local_db,
            fx.local_catalog,
            fx.remote_db,
            fx.remote_catalog,
            fx.spec,
        )
        .with_options(IntegratorOptions::default())
        .run()
        .expect("synthetic integrates");
        for c in &outcome.conflicts {
            prop_assert!(
                !matches!(c.kind, ConflictKind::InstanceViolation { .. }),
                "derived constraint violated by an instance: {c}"
            );
        }
    }

    /// The ablated pipeline (all decision functions treated as `any`)
    /// still runs and derives no df combinations.
    #[test]
    fn ablation_runs_and_derives_nothing(
        seed in 0u64..100,
    ) {
        let fx = synthetic_fixture(SyntheticConfig {
            local_n: 20,
            remote_n: 20,
            match_ratio: 0.5,
            constraints_per_side: 3,
            seed,
        });
        let outcome = Integrator::new(
            fx.local_db,
            fx.local_catalog,
            fx.remote_db,
            fx.remote_catalog,
            fx.spec,
        )
        .with_options(IntegratorOptions {
            ablate_df_classification: true,
            ..Default::default()
        })
        .run()
        .expect("ablated run completes");
        prop_assert!(!outcome.global.object.iter().any(|d| matches!(
            d.origin,
            interop_core::derive::DerivationOrigin::DfCombination(_)
        )));
    }
}
