//! # interop-constraint
//!
//! The constraint language and its decision procedures — the formal core
//! that the reproduction of Vermeer & Apers (VLDB 1996) is built on.
//!
//! The paper distinguishes *object constraints* (implicitly universally
//! quantified over the instances of a class), *class constraints*
//! (aggregates over the class extension plus key constraints), and
//! *database constraints* (quantified across classes). All three are
//! represented here, together with:
//!
//! * an evaluator ([`eval`]) checking constraints against populated
//!   databases (the "enforced by the component databases" premise),
//! * a normaliser ([`normalize`]) producing the paper's *normalised*
//!   constraints (top-level conjunctions split apart, §5.2.1),
//! * a typed **domain algebra** ([`domain`]) — unions of intervals over
//!   numerics and finite/cofinite sets over discrete values — which is the
//!   machinery behind both constraint conformation (applying conversion
//!   functions to constraint constants, §4) and global-constraint
//!   derivation through decision functions (§5.2.1),
//! * a sound satisfiability / implication solver ([`solve`]) for the
//!   paper's constraint fragment, used to detect *explicit conflicts*
//!   (`Ω̂ ⊨ false`) and check strict-similarity admission (`Ω' ⊨ Ω̂`),
//! * a syntactic classifier ([`classify`]) assigning raw constraints to
//!   the object/class/database categories (the role played by the IMPRESS
//!   design toolbox \[FKS94\] in the paper).
//!
//! # Invariants
//!
//! * **The solver errs in one direction only.** Opaque atoms are
//!   dropped (an over-approximation of the solution set), so
//!   [`solve::is_satisfiable`] means "not *provably* empty" and
//!   [`solve::implies`] returns `true` only for proven entailments.
//!   Conflict detection, constraint admission, query pruning and
//!   implied-true dropping are all safe against this direction; none is
//!   safe against the opposite one.
//! * **Evaluation is three-valued** ([`eval::Truth`]): a null attribute
//!   makes an atom `Unknown`, never `True`/`False`. Constraint
//!   *enforcement* accepts `Unknown` (a constraint is violated only when
//!   provably `False`) while query answers require `True` — the
//!   asymmetry the planner's coverage rules exist for
//!   ([`solve::implied_by_restricted`]).
//! * **Domains are closed under the algebra**: intersection, union,
//!   complement and affine images of interval unions / (co)finite sets
//!   stay within [`domain::Domain`], with mixed numeric/discrete
//!   carriers widening conservatively.
//!
//! # Example
//!
//! ```
//! use interop_constraint::solve::{implies, is_satisfiable, TypeEnv};
//! use interop_constraint::{CmpOp, Formula};
//! use interop_model::Type;
//!
//! let env = TypeEnv::new().with("rating", Type::Range(1, 10));
//! let derived = Formula::cmp("rating", CmpOp::Ge, 5i64);
//! // A subquery contradicting the derived constraint is provably empty…
//! let doomed = derived.clone().and(Formula::cmp("rating", CmpOp::Lt, 3i64));
//! assert!(!is_satisfiable(&doomed, &env));
//! // …and entailment is proven, not guessed.
//! assert!(implies(&derived, &Formula::cmp("rating", CmpOp::Ge, 2i64), &env));
//! ```

pub mod classify;
pub mod constraint;
pub mod domain;
pub mod eval;
pub mod expr;
pub mod normalize;
pub mod solve;

pub use classify::{classify_formula, ConstraintKind};
pub use constraint::{
    Catalog, ClassConstraint, ClassConstraintBody, ConstraintId, DbConstraint, ObjectConstraint,
    PairAtom, Quantifier, Status,
};
pub use domain::{Bnd, DiscSet, Domain, Iv, NumSet};
pub use eval::{eval_expr, eval_formula, Truth};
pub use expr::{AggOp, ArithOp, CmpOp, Expr, Formula, Path};
pub use solve::{GuardedAtom, TypeEnv};
