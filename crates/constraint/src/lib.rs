//! # interop-constraint
//!
//! The constraint language and its decision procedures — the formal core
//! that the reproduction of Vermeer & Apers (VLDB 1996) is built on.
//!
//! The paper distinguishes *object constraints* (implicitly universally
//! quantified over the instances of a class), *class constraints*
//! (aggregates over the class extension plus key constraints), and
//! *database constraints* (quantified across classes). All three are
//! represented here, together with:
//!
//! * an evaluator ([`eval`]) checking constraints against populated
//!   databases (the "enforced by the component databases" premise),
//! * a normaliser ([`normalize`]) producing the paper's *normalised*
//!   constraints (top-level conjunctions split apart, §5.2.1),
//! * a typed **domain algebra** ([`domain`]) — unions of intervals over
//!   numerics and finite/cofinite sets over discrete values — which is the
//!   machinery behind both constraint conformation (applying conversion
//!   functions to constraint constants, §4) and global-constraint
//!   derivation through decision functions (§5.2.1),
//! * a sound satisfiability / implication solver ([`solve`]) for the
//!   paper's constraint fragment, used to detect *explicit conflicts*
//!   (`Ω̂ ⊨ false`) and check strict-similarity admission (`Ω' ⊨ Ω̂`),
//! * a syntactic classifier ([`classify`]) assigning raw constraints to
//!   the object/class/database categories (the role played by the IMPRESS
//!   design toolbox \[FKS94\] in the paper).

pub mod classify;
pub mod constraint;
pub mod domain;
pub mod eval;
pub mod expr;
pub mod normalize;
pub mod solve;

pub use classify::{classify_formula, ConstraintKind};
pub use constraint::{
    Catalog, ClassConstraint, ClassConstraintBody, ConstraintId, DbConstraint, ObjectConstraint,
    PairAtom, Quantifier, Status,
};
pub use domain::{Bnd, DiscSet, Domain, Iv, NumSet};
pub use eval::{eval_expr, eval_formula, Truth};
pub use expr::{AggOp, ArithOp, CmpOp, Expr, Formula, Path};
pub use solve::{GuardedAtom, TypeEnv};
