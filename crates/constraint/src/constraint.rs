//! Constraint kinds and the per-database constraint catalog.
//!
//! Mirrors the paper's three-way distinction (§2): *object constraints*
//! restrict the state of a single (complex) object and are implicitly
//! universally quantified over the class's instances; *class constraints*
//! restrict the class extension as a whole (aggregates and keys); and
//! *database constraints* relate objects from different classes.

use std::collections::BTreeMap;
use std::fmt;

use interop_model::{AttrName, ClassName, DbName, Value};

use crate::expr::{AggOp, CmpOp, Formula, Path};

/// A stable, human-readable constraint identifier, e.g.
/// `CSLibrary.Publication.oc1`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConstraintId(String);

impl ConstraintId {
    /// Builds an id from database, class and label components.
    pub fn new(db: &DbName, class: &ClassName, label: &str) -> Self {
        ConstraintId(format!("{db}.{class}.{label}"))
    }

    /// Builds a database-level constraint id.
    pub fn db_level(db: &DbName, label: &str) -> Self {
        ConstraintId(format!("{db}.{label}"))
    }

    /// Builds an id for a derived constraint.
    pub fn derived(base: &str) -> Self {
        ConstraintId(base.to_owned())
    }

    /// The id text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for ConstraintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl fmt::Debug for ConstraintId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ConstraintId({})", self.0)
    }
}

/// Objectivity status of a constraint (§5.1.1).
///
/// *Objective*: represents an axiom of the modelled world, valid beyond
/// the owning database. *Subjective*: a business rule valid only within
/// the owning database's context. Until classified, a constraint is
/// `Unclassified` and the integration layer applies the paper's rules to
/// assign a status.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Status {
    /// Valid beyond the owning database.
    Objective,
    /// Valid only within the owning database's context.
    Subjective,
    /// Not yet classified.
    Unclassified,
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Status::Objective => "objective",
            Status::Subjective => "subjective",
            Status::Unclassified => "unclassified",
        })
    }
}

/// An object constraint: `∀ o ∈ class : formula(o)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ObjectConstraint {
    /// Identifier.
    pub id: ConstraintId,
    /// The class whose instances are constrained.
    pub class: ClassName,
    /// The constraint body.
    pub formula: Formula,
    /// Designer-assigned objectivity status (defaults to `Unclassified`).
    pub status: Status,
}

impl ObjectConstraint {
    /// Creates an unclassified object constraint.
    pub fn new(id: ConstraintId, class: impl Into<ClassName>, formula: Formula) -> Self {
        ObjectConstraint {
            id,
            class: class.into(),
            formula,
            status: Status::Unclassified,
        }
    }

    /// Builder: marks the constraint objective.
    pub fn objective(mut self) -> Self {
        self.status = Status::Objective;
        self
    }

    /// Builder: marks the constraint subjective.
    pub fn subjective(mut self) -> Self {
        self.status = Status::Subjective;
        self
    }
}

impl fmt::Display for ObjectConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] on {}: {}", self.id, self.class, self.formula)
    }
}

/// The body of a class constraint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClassConstraintBody {
    /// `key isbn` — the listed attributes uniquely identify instances.
    Key(Vec<AttrName>),
    /// `(agg (collect x for x in self) over path) cmp bound`, e.g.
    /// `(sum ... over ourprice) < MAX`.
    Aggregate {
        /// Aggregate operator.
        op: AggOp,
        /// Attribute aggregated over the extension.
        path: Path,
        /// Comparison against the bound.
        cmp: CmpOp,
        /// The bound.
        bound: Value,
    },
}

impl fmt::Display for ClassConstraintBody {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClassConstraintBody::Key(attrs) => {
                write!(f, "key ")?;
                for (i, a) in attrs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                Ok(())
            }
            ClassConstraintBody::Aggregate {
                op,
                path,
                cmp,
                bound,
            } => write!(
                f,
                "({op} (collect x for x in self) over {path}) {cmp} {bound}"
            ),
        }
    }
}

/// A class constraint: a restriction on a class's extension.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassConstraint {
    /// Identifier.
    pub id: ConstraintId,
    /// The constrained class.
    pub class: ClassName,
    /// The body.
    pub body: ClassConstraintBody,
    /// Objectivity status (class constraints default to subjective in the
    /// integration — §5.2.2 — but the designer may record intent here).
    pub status: Status,
}

impl ClassConstraint {
    /// Creates an unclassified class constraint.
    pub fn new(id: ConstraintId, class: impl Into<ClassName>, body: ClassConstraintBody) -> Self {
        ClassConstraint {
            id,
            class: class.into(),
            body,
            status: Status::Unclassified,
        }
    }

    /// Key-constraint shorthand.
    pub fn key(id: ConstraintId, class: impl Into<ClassName>, attrs: Vec<&str>) -> Self {
        ClassConstraint::new(
            id,
            class,
            ClassConstraintBody::Key(attrs.into_iter().map(AttrName::new).collect()),
        )
    }

    /// True for key constraints.
    pub fn is_key(&self) -> bool {
        matches!(self.body, ClassConstraintBody::Key(_))
    }
}

impl fmt::Display for ClassConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] on {}: {}", self.id, self.class, self.body)
    }
}

/// Quantifier for the inner variable of a database constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Quantifier {
    /// `exists`
    Exists,
    /// `forall`
    Forall,
}

/// An atom relating the outer and inner objects of a database constraint.
/// An empty [`Path`] denotes the object itself (compared as a reference),
/// as in the paper's `i.publisher = p`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PairAtom {
    /// Path evaluated on the outer (`forall`) object.
    pub outer: Path,
    /// Comparison operator.
    pub op: CmpOp,
    /// Path evaluated on the inner (quantified) object.
    pub inner: Path,
}

/// A database constraint:
/// `∀ x ∈ outer_class : Q y ∈ inner_class : ⋀ atoms(x, y)`,
/// e.g. Figure 1's `dbl: forall p in Publisher exists i in Item |
/// i.publisher = p` (outer = Publisher, inner = Item, atom
/// `inner.publisher = outer.self`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DbConstraint {
    /// Identifier.
    pub id: ConstraintId,
    /// Class of the universally quantified outer variable.
    pub outer_class: ClassName,
    /// Quantifier of the inner variable.
    pub quant: Quantifier,
    /// Class of the inner variable.
    pub inner_class: ClassName,
    /// Conjunction of atoms over the two objects. Note: atoms are written
    /// with `outer`/`inner` referring to the respective quantified
    /// variable; the paper writes `i.publisher = p`, which here is
    /// `PairAtom { outer: self, op: Eq, inner: publisher }` with outer =
    /// Publisher and inner = Item.
    pub atoms: Vec<PairAtom>,
    /// Objectivity status (always subjective per §5.2.3; recorded for
    /// reporting).
    pub status: Status,
}

impl fmt::Display for DbConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let q = match self.quant {
            Quantifier::Exists => "exists",
            Quantifier::Forall => "forall",
        };
        write!(
            f,
            "[{}] forall p in {} {q} i in {} | ",
            self.id, self.outer_class, self.inner_class
        )?;
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " and ")?;
            }
            let o = if a.outer.is_this() {
                "p".to_owned()
            } else {
                format!("p.{}", a.outer)
            };
            let inn = if a.inner.is_this() {
                "i".to_owned()
            } else {
                format!("i.{}", a.inner)
            };
            write!(f, "{inn} {} {o}", a.op)?;
        }
        Ok(())
    }
}

/// All constraints enforced by one component database.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    object: BTreeMap<ClassName, Vec<ObjectConstraint>>,
    class: BTreeMap<ClassName, Vec<ClassConstraint>>,
    database: Vec<DbConstraint>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Adds an object constraint.
    pub fn add_object(&mut self, c: ObjectConstraint) {
        self.object.entry(c.class.clone()).or_default().push(c);
    }

    /// Adds a class constraint.
    pub fn add_class(&mut self, c: ClassConstraint) {
        self.class.entry(c.class.clone()).or_default().push(c);
    }

    /// Adds a database constraint.
    pub fn add_database(&mut self, c: DbConstraint) {
        self.database.push(c);
    }

    /// Object constraints declared directly on `class`.
    pub fn object_on(&self, class: &ClassName) -> &[ObjectConstraint] {
        self.object.get(class).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Object constraints *effective* on `class`: declared on it or
    /// inherited from ancestors (object constraints are inheritable —
    /// §5.2.2 notes class constraints are not).
    pub fn object_effective(
        &self,
        schema: &interop_model::Schema,
        class: &ClassName,
    ) -> Vec<&ObjectConstraint> {
        schema
            .self_and_ancestors(class)
            .iter()
            .flat_map(|c| self.object_on(c))
            .collect()
    }

    /// Class constraints declared on `class` (not inherited).
    pub fn class_on(&self, class: &ClassName) -> &[ClassConstraint] {
        self.class.get(class).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// All database constraints.
    pub fn database_constraints(&self) -> &[DbConstraint] {
        &self.database
    }

    /// All object constraints, in class order.
    pub fn all_object(&self) -> impl Iterator<Item = &ObjectConstraint> {
        self.object.values().flatten()
    }

    /// All class constraints, in class order.
    pub fn all_class(&self) -> impl Iterator<Item = &ClassConstraint> {
        self.class.values().flatten()
    }

    /// Total number of constraints of all kinds.
    pub fn len(&self) -> usize {
        self.all_object().count() + self.all_class().count() + self.database.len()
    }

    /// True when no constraints are recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The key attributes of `class`, if a key constraint is declared
    /// (searching ancestors too — keys are the inheritable exception the
    /// paper highlights in §5.2.2).
    pub fn key_of(&self, schema: &interop_model::Schema, class: &ClassName) -> Option<&[AttrName]> {
        for c in schema.self_and_ancestors(class) {
            for cc in self.class_on(&c) {
                if let ClassConstraintBody::Key(attrs) = &cc.body {
                    return Some(attrs);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use interop_model::{ClassDef, Schema, Type};

    fn schema() -> Schema {
        Schema::new(
            "L",
            vec![
                ClassDef::new("Publication")
                    .attr("isbn", Type::Str)
                    .attr("ourprice", Type::Real)
                    .attr("shopprice", Type::Real),
                ClassDef::new("ScientificPubl")
                    .isa("Publication")
                    .attr("rating", Type::Range(1, 5)),
                ClassDef::new("RefereedPubl").isa("ScientificPubl"),
            ],
        )
        .unwrap()
    }

    fn oc(label: &str, class: &str, f: Formula) -> ObjectConstraint {
        ObjectConstraint::new(
            ConstraintId::new(&DbName::new("L"), &ClassName::new(class), label),
            class,
            f,
        )
    }

    #[test]
    fn ids_and_display() {
        let c = oc(
            "oc1",
            "Publication",
            Formula::cmp("ourprice", CmpOp::Le, 100.0),
        );
        assert_eq!(c.id.to_string(), "L.Publication.oc1");
        assert_eq!(
            c.to_string(),
            "[L.Publication.oc1] on Publication: ourprice <= 100"
        );
    }

    #[test]
    fn effective_object_constraints_inherit() {
        let s = schema();
        let mut cat = Catalog::new();
        cat.add_object(oc(
            "oc1",
            "Publication",
            Formula::cmp("ourprice", CmpOp::Le, 100.0),
        ));
        cat.add_object(oc(
            "oc1",
            "RefereedPubl",
            Formula::cmp("rating", CmpOp::Ge, 2i64),
        ));
        let eff = cat.object_effective(&s, &ClassName::new("RefereedPubl"));
        assert_eq!(eff.len(), 2);
        let eff_pub = cat.object_effective(&s, &ClassName::new("Publication"));
        assert_eq!(eff_pub.len(), 1);
    }

    #[test]
    fn key_lookup_walks_isa() {
        let s = schema();
        let mut cat = Catalog::new();
        cat.add_class(ClassConstraint::key(
            ConstraintId::new(&DbName::new("L"), &ClassName::new("Publication"), "cc1"),
            "Publication",
            vec!["isbn"],
        ));
        let key = cat.key_of(&s, &ClassName::new("RefereedPubl")).unwrap();
        assert_eq!(key, &[AttrName::new("isbn")]);
        assert!(cat.class_on(&ClassName::new("RefereedPubl")).is_empty());
    }

    #[test]
    fn db_constraint_display_matches_paper() {
        let c = DbConstraint {
            id: ConstraintId::db_level(&DbName::new("Bookseller"), "dbl"),
            outer_class: ClassName::new("Publisher"),
            quant: Quantifier::Exists,
            inner_class: ClassName::new("Item"),
            atoms: vec![PairAtom {
                outer: Path::this(),
                op: CmpOp::Eq,
                inner: Path::parse("publisher"),
            }],
            status: Status::Subjective,
        };
        assert_eq!(
            c.to_string(),
            "[Bookseller.dbl] forall p in Publisher exists i in Item | i.publisher = p"
        );
    }

    #[test]
    fn aggregate_display() {
        let cc = ClassConstraint::new(
            ConstraintId::new(&DbName::new("L"), &ClassName::new("Publication"), "cc2"),
            "Publication",
            ClassConstraintBody::Aggregate {
                op: AggOp::Sum,
                path: Path::parse("ourprice"),
                cmp: CmpOp::Lt,
                bound: Value::real(10000.0),
            },
        );
        assert_eq!(
            cc.body.to_string(),
            "(sum (collect x for x in self) over ourprice) < 10000"
        );
        assert!(!cc.is_key());
    }

    #[test]
    fn catalog_counts() {
        let mut cat = Catalog::new();
        assert!(cat.is_empty());
        cat.add_object(oc("oc1", "Publication", Formula::True));
        cat.add_class(ClassConstraint::key(
            ConstraintId::new(&DbName::new("L"), &ClassName::new("Publication"), "cc1"),
            "Publication",
            vec!["isbn"],
        ));
        assert_eq!(cat.len(), 2);
    }
}
