//! Satisfiability and implication for the paper's constraint fragment.
//!
//! The decision procedure handles boolean combinations of:
//!
//! * unary atoms — an affine function of one attribute path compared
//!   against a constant, or finite-set membership (`rating >= 4`,
//!   `trav_reimb in {10,20}`, `2*rating - 1 <= 9`);
//! * binary atoms — two paths compared (`libprice <= shopprice`), handled
//!   by a difference-bound system with strictness-aware negative-cycle
//!   detection;
//! * substring atoms (`contains(title, 'Proceed')`), refutable when the
//!   path's domain is a finite string set or when contradictory
//!   `contains`/`not contains` pairs occur.
//!
//! Everything else is treated as *opaque* and dropped, which
//! over-approximates the solution set. Consequently [`is_satisfiable`]
//! means "not provably unsatisfiable" and [`implies`] returns `true` only
//! for *proven* entailments — exactly the conservative behaviour the
//! paper's conflict detection (`Ω̂ ⊨ false`) and strict-similarity check
//! (`Ω' ⊨ Ω̂`, §5.2.1) require.

use std::collections::{BTreeMap, BTreeSet};

use interop_model::{Type, Value, R64};

use crate::domain::{DiscSet, Domain, NumSet};
use crate::expr::{ArithOp, CmpOp, Expr, Formula, Path};
use crate::normalize::{dnf, simplify};

/// Default cap on DNF size before the solver gives up (returns "unknown").
pub const DNF_CAP: usize = 512;

/// Types of the attribute paths a formula may mention. Paths absent from
/// the environment get an unconstrained discrete domain.
#[derive(Clone, Debug, Default)]
pub struct TypeEnv {
    types: BTreeMap<Path, Type>,
}

impl TypeEnv {
    /// Empty environment.
    pub fn new() -> Self {
        TypeEnv::default()
    }

    /// Registers a path's type.
    pub fn insert(&mut self, path: Path, ty: Type) {
        self.types.insert(path, ty);
    }

    /// Builder-style registration.
    pub fn with(mut self, path: &str, ty: Type) -> Self {
        self.insert(Path::parse(path), ty);
        self
    }

    /// Looks up a path's type.
    pub fn get(&self, path: &Path) -> Option<&Type> {
        self.types.get(path)
    }

    /// The base domain of a path: its type's full domain, or an
    /// unconstrained discrete domain when the type is unknown.
    pub fn base_domain(&self, path: &Path) -> Domain {
        match self.types.get(path) {
            Some(ty) => Domain::full_of(ty),
            None => Domain::Disc(DiscSet::full()),
        }
    }

    /// Is the path known to carry an integral numeric type?
    pub fn integral(&self, path: &Path) -> bool {
        matches!(self.types.get(path), Some(Type::Int | Type::Range(_, _)))
    }

    /// Is the path numeric (int, real, or range)?
    pub fn numeric(&self, path: &Path) -> bool {
        self.types.get(path).is_some_and(Type::is_numeric)
    }

    /// Builds the environment of all paths reachable from `class` in
    /// `schema`: every visible attribute, and — for reference attributes —
    /// the referenced class's attributes one level deep (`publisher.name`).
    /// One level suffices for the paper's fragment; deeper paths simply
    /// stay untyped (unconstrained), which is conservative.
    pub fn for_class(schema: &interop_model::Schema, class: &interop_model::ClassName) -> Self {
        let mut env = TypeEnv::new();
        for attr in schema.all_attrs(class) {
            let head = Path::attr(attr.name.clone());
            env.insert(head.clone(), attr.ty.clone());
            if let Type::Ref(target) = &attr.ty {
                for inner in schema.all_attrs(target) {
                    let mut segs = head.0.clone();
                    segs.push(inner.name.clone());
                    env.insert(Path(segs), inner.ty.clone());
                }
            }
        }
        env
    }

    /// Iterates over all registered paths and types.
    pub fn iter(&self) -> impl Iterator<Item = (&Path, &Type)> {
        self.types.iter()
    }
}

/// An affine view of an expression: `coeff · path + offset` (path may be
/// absent for pure constants).
struct Lin {
    coeff: R64,
    path: Option<Path>,
    offset: R64,
}

fn linearize(e: &Expr) -> Option<Lin> {
    match e {
        Expr::Const(v) => Some(Lin {
            coeff: R64::new(0.0),
            path: None,
            offset: v.as_num()?,
        }),
        Expr::Attr(p) => Some(Lin {
            coeff: R64::new(1.0),
            path: Some(p.clone()),
            offset: R64::new(0.0),
        }),
        Expr::Neg(inner) => {
            let l = linearize(inner)?;
            Some(Lin {
                coeff: -l.coeff,
                path: l.path,
                offset: -l.offset,
            })
        }
        Expr::Bin(a, op, b) => {
            let (la, lb) = (linearize(a)?, linearize(b)?);
            match op {
                ArithOp::Add | ArithOp::Sub => {
                    let sign = if *op == ArithOp::Add {
                        R64::new(1.0)
                    } else {
                        R64::new(-1.0)
                    };
                    match (&la.path, &lb.path) {
                        (_, None) => Some(Lin {
                            coeff: la.coeff,
                            path: la.path,
                            offset: la.offset + sign * lb.offset,
                        }),
                        (None, _) => Some(Lin {
                            coeff: sign * lb.coeff,
                            path: lb.path,
                            offset: la.offset + sign * lb.offset,
                        }),
                        (Some(p), Some(q)) if p == q => Some(Lin {
                            coeff: la.coeff + sign * lb.coeff,
                            path: Some(p.clone()),
                            offset: la.offset + sign * lb.offset,
                        }),
                        _ => None, // two distinct paths: not unary-affine
                    }
                }
                ArithOp::Mul => {
                    if lb.path.is_none() && lb.coeff.get() == 0.0 {
                        Some(Lin {
                            coeff: la.coeff * lb.offset,
                            path: la.path,
                            offset: la.offset * lb.offset,
                        })
                    } else if la.path.is_none() && la.coeff.get() == 0.0 {
                        Some(Lin {
                            coeff: lb.coeff * la.offset,
                            path: lb.path,
                            offset: lb.offset * la.offset,
                        })
                    } else {
                        None
                    }
                }
                ArithOp::Div => {
                    if lb.path.is_none() && lb.coeff.get() == 0.0 && lb.offset.get() != 0.0 {
                        Some(Lin {
                            coeff: la.coeff / lb.offset,
                            path: la.path,
                            offset: la.offset / lb.offset,
                        })
                    } else {
                        None
                    }
                }
            }
        }
    }
}

/// Per-conjunct solver state.
struct Conj {
    domains: BTreeMap<Path, Domain>,
    /// `p - q <= c` (strict when the flag is set).
    diffs: Vec<(Path, Path, R64, bool)>,
    /// Discrete equalities / disequalities between paths.
    eqs: Vec<(Path, Path)>,
    neqs: Vec<(Path, Path)>,
    contains_pos: Vec<(Path, String)>,
    contains_neg: Vec<(Path, String)>,
    /// Proven false already.
    dead: bool,
}

impl Conj {
    fn new() -> Self {
        Conj {
            domains: BTreeMap::new(),
            diffs: Vec::new(),
            eqs: Vec::new(),
            neqs: Vec::new(),
            contains_pos: Vec::new(),
            contains_neg: Vec::new(),
            dead: false,
        }
    }

    fn domain_mut(&mut self, env: &TypeEnv, p: &Path) -> &mut Domain {
        self.domains
            .entry(p.clone())
            .or_insert_with(|| env.base_domain(p))
    }

    fn restrict(&mut self, env: &TypeEnv, p: &Path, d: &Domain) {
        let cur = self.domain_mut(env, p);
        *cur = cur.intersect(d);
        if cur.is_empty() {
            self.dead = true;
        }
    }

    #[allow(clippy::collapsible_match)] // the outer match arms document the atom taxonomy
    fn add_atom(&mut self, env: &TypeEnv, atom: &Formula) {
        match atom {
            Formula::True => {}
            Formula::False => self.dead = true,
            Formula::Cmp(a, op, b) => self.add_cmp(env, a, *op, b),
            Formula::In(e, set) => {
                if let Some(l) = linearize(e) {
                    if let Some(p) = l.path.clone() {
                        // Solve coeff·p + offset ∈ set for p where possible.
                        if l.coeff.get() != 0.0 {
                            let mut pre = BTreeSet::new();
                            let mut all_num = true;
                            for v in set {
                                match v.as_num() {
                                    Some(n) => {
                                        pre.insert(Value::Real((n - l.offset) / l.coeff));
                                    }
                                    None => all_num = false,
                                }
                            }
                            if all_num {
                                let d = Domain::from_values(&pre, env.integral(&p));
                                self.restrict(env, &p, &d);
                                return;
                            }
                        }
                    }
                }
                if let Expr::Attr(p) = e {
                    let d = Domain::from_values(set, env.integral(p));
                    self.restrict(env, p, &d);
                }
                // Otherwise opaque: drop (over-approximation).
            }
            Formula::Contains(e, s) => {
                if let Expr::Attr(p) = e {
                    self.contains_pos.push((p.clone(), s.clone()));
                }
            }
            Formula::Not(inner) => match &**inner {
                Formula::In(e, set) => {
                    if let Expr::Attr(p) = e {
                        let d = match Domain::from_values(set, env.integral(p)) {
                            Domain::Num(n) => Domain::Num(n.complement()),
                            Domain::Disc(d) => Domain::Disc(d.complement()),
                        };
                        self.restrict(env, p, &d);
                    }
                }
                Formula::Contains(e, s) => {
                    if let Expr::Attr(p) = e {
                        self.contains_neg.push((p.clone(), s.clone()));
                    }
                }
                _ => {} // NNF leaves Not only on In/Contains.
            },
            // And/Or/Implies do not reach atoms after DNF.
            _ => {}
        }
    }

    fn add_cmp(&mut self, env: &TypeEnv, a: &Expr, op: CmpOp, b: &Expr) {
        // Try the affine route first: la op lb with at most one path per
        // side (same path allowed on both).
        if let (Some(la), Some(lb)) = (linearize(a), linearize(b)) {
            match (&la.path, &lb.path) {
                (Some(_), None) | (None, Some(_)) => {
                    // coeff·p + off op const  (or reversed)
                    let (p, coeff, off, konst, op) = if let Some(p) = &la.path {
                        (p.clone(), la.coeff, la.offset, lb.offset, op)
                    } else {
                        let p = lb.path.clone().expect("checked by match arm");
                        (p, lb.coeff, lb.offset, la.offset, op.flip())
                    };
                    if coeff.get() == 0.0 {
                        // Degenerate: constant vs constant.
                        let ord = off.cmp(&konst);
                        if !op.test(ord) {
                            self.dead = true;
                        }
                        return;
                    }
                    let rhs = (konst - off) / coeff;
                    let op = if coeff.get() < 0.0 { op.flip() } else { op };
                    let d = Domain::Num(NumSet::from_cmp(env.integral(&p), op, rhs));
                    self.restrict(env, &p, &d);
                    return;
                }
                (Some(p), Some(q)) if p != q => {
                    // Difference form requires matching unit coefficients.
                    if la.coeff == lb.coeff && la.coeff.get() == 1.0 {
                        let c = lb.offset - la.offset; // p - q op c
                        match op {
                            CmpOp::Le => self.diffs.push((p.clone(), q.clone(), c, false)),
                            CmpOp::Lt => self.diffs.push((p.clone(), q.clone(), c, true)),
                            CmpOp::Ge => self.diffs.push((q.clone(), p.clone(), -c, false)),
                            CmpOp::Gt => self.diffs.push((q.clone(), p.clone(), -c, true)),
                            CmpOp::Eq => {
                                self.diffs.push((p.clone(), q.clone(), c, false));
                                self.diffs.push((q.clone(), p.clone(), -c, false));
                            }
                            CmpOp::Ne => self.neqs.push((p.clone(), q.clone())),
                        }
                        return;
                    }
                }
                (Some(p), Some(_)) => {
                    // Same path both sides: (c1-c2)·p op (off2-off1).
                    let coeff = la.coeff - lb.coeff;
                    let konst = lb.offset - la.offset;
                    if coeff.get() == 0.0 {
                        if !op.test(R64::new(0.0).cmp(&konst)) {
                            self.dead = true;
                        }
                        return;
                    }
                    let rhs = konst / coeff;
                    let op = if coeff.get() < 0.0 { op.flip() } else { op };
                    let d = Domain::Num(NumSet::from_cmp(env.integral(p), op, rhs));
                    self.restrict(env, p, &d);
                    return;
                }
                (None, None) => {
                    if !op.test(la.offset.cmp(&lb.offset)) {
                        self.dead = true;
                    }
                    return;
                }
            }
        }
        // Non-numeric path-vs-const or path-vs-path comparisons.
        match (a, b) {
            (Expr::Attr(p), Expr::Const(v)) | (Expr::Const(v), Expr::Attr(p)) => {
                let op = if matches!(a, Expr::Const(_)) {
                    op.flip()
                } else {
                    op
                };
                match op {
                    CmpOp::Eq => {
                        let d = Domain::from_values(
                            &[v.clone()].into_iter().collect(),
                            env.integral(p),
                        );
                        self.restrict(env, p, &d);
                    }
                    CmpOp::Ne => {
                        let d = Domain::Disc(DiscSet::NotIn([v.clone()].into_iter().collect()));
                        self.restrict(env, p, &d);
                    }
                    _ => {} // string ordering: opaque
                }
            }
            (Expr::Attr(p), Expr::Attr(q)) => match op {
                CmpOp::Eq => self.eqs.push((p.clone(), q.clone())),
                CmpOp::Ne => self.neqs.push((p.clone(), q.clone())),
                _ => {}
            },
            _ => {} // opaque
        }
    }

    /// Full per-conjunct unsatisfiability check.
    fn unsat(mut self, env: &TypeEnv) -> bool {
        if self.dead {
            return true;
        }
        // Discrete equalities: union-find by repeated propagation (small n).
        let eqs = std::mem::take(&mut self.eqs);
        for _ in 0..=eqs.len() {
            let mut changed = false;
            for (p, q) in &eqs {
                let dp = self.domain_mut(env, p).clone();
                let dq = self.domain_mut(env, q).clone();
                let joint = dp.intersect(&dq);
                if joint != dp || joint != dq {
                    changed = true;
                }
                self.restrict(env, p, &joint);
                self.restrict(env, q, &joint);
                if self.dead {
                    return true;
                }
            }
            if !changed {
                break;
            }
        }
        // Disequalities: refutable when both sides are the same singleton.
        let neqs = std::mem::take(&mut self.neqs);
        for (p, q) in &neqs {
            let sp = singleton(self.domain_mut(env, p));
            let sq = singleton(self.domain_mut(env, q));
            if let (Some(a), Some(b)) = (sp, sq) {
                if a.sem_eq(&b) {
                    return true;
                }
            }
        }
        // Contains filters.
        let pos = std::mem::take(&mut self.contains_pos);
        let neg = std::mem::take(&mut self.contains_neg);
        for (p, s) in &pos {
            if neg.iter().any(|(q, t)| q == p && t == s) {
                return true; // contains(x,s) ∧ ¬contains(x,s)
            }
            let dom = self.domain_mut(env, p).clone();
            if let Domain::Disc(DiscSet::In(vals)) = &dom {
                let filtered: BTreeSet<Value> = vals
                    .iter()
                    .filter(|v| v.as_str().is_some_and(|x| x.contains(s.as_str())))
                    .cloned()
                    .collect();
                self.restrict(env, p, &Domain::Disc(DiscSet::In(filtered)));
                if self.dead {
                    return true;
                }
            }
        }
        for (p, s) in &neg {
            let dom = self.domain_mut(env, p).clone();
            if let Domain::Disc(DiscSet::In(vals)) = &dom {
                let filtered: BTreeSet<Value> = vals
                    .iter()
                    .filter(|v| !v.as_str().is_some_and(|x| x.contains(s.as_str())))
                    .cloned()
                    .collect();
                self.restrict(env, p, &Domain::Disc(DiscSet::In(filtered)));
                if self.dead {
                    return true;
                }
            }
        }
        if self.domains.values().any(Domain::is_empty) {
            return true;
        }
        // Difference-bound system with strictness-aware negative cycles.
        self.dbm_unsat(env)
    }

    fn dbm_unsat(&mut self, env: &TypeEnv) -> bool {
        if self.diffs.is_empty() {
            return false;
        }
        // Node universe: paths in diffs plus a ZERO node (index 0).
        let mut idx: BTreeMap<&Path, usize> = BTreeMap::new();
        for (p, q, _, _) in &self.diffs {
            let n = idx.len() + 1;
            idx.entry(p).or_insert(n);
            let n = idx.len() + 1;
            idx.entry(q).or_insert(n);
        }
        let n = idx.len() + 1;
        // Edge (u → v, w): x_v - x_u ≤ w.
        let mut edges: Vec<(usize, usize, R64, bool)> = Vec::new();
        for (p, q, c, strict) in &self.diffs {
            // p - q ≤ c: edge q → p with weight c.
            edges.push((idx[q], idx[p], *c, *strict));
        }
        // Unary hull bounds as edges to/from ZERO. (Relaxation of a union
        // domain to its hull — sound for unsat detection.)
        for (p, i) in &idx {
            let dom = self
                .domains
                .get(*p)
                .cloned()
                .unwrap_or_else(|| env.base_domain(p));
            if let Domain::Num(ns) = dom {
                if let Some(first) = ns.intervals().first() {
                    match first.lo {
                        crate::domain::Bnd::Incl(v) => edges.push((*i, 0, -v, false)),
                        crate::domain::Bnd::Excl(v) => edges.push((*i, 0, -v, true)),
                        _ => {}
                    }
                }
                if let Some(last) = ns.intervals().last() {
                    match last.hi {
                        crate::domain::Bnd::Incl(v) => edges.push((0, *i, v, false)),
                        crate::domain::Bnd::Excl(v) => edges.push((0, *i, v, true)),
                        _ => {}
                    }
                }
            }
        }
        // Bellman-Ford from a virtual source (all distances 0). A strict
        // edge behaves like weight `c - ε`; distances carry an ε-count so
        // that an all-strict zero-weight cycle keeps relaxing and is
        // detected like any negative cycle.
        let mut dist: Vec<(R64, u32)> = vec![(R64::new(0.0), 0); n];
        let tighter =
            |a: (R64, u32), b: (R64, u32)| -> bool { a.0 < b.0 || (a.0 == b.0 && a.1 > b.1) };
        for round in 0..=n {
            let mut changed = false;
            for (u, v, w, s) in &edges {
                let cand = (dist[*u].0 + *w, dist[*u].1 + u32::from(*s));
                if tighter(cand, dist[*v]) {
                    dist[*v] = cand;
                    changed = true;
                }
            }
            if !changed {
                return false;
            }
            if round == n {
                return true; // still relaxing after n+1 passes → negative cycle
            }
        }
        false
    }
}

fn singleton(d: &Domain) -> Option<Value> {
    match d {
        Domain::Num(n) => {
            let pts = n.enumerate(1)?;
            if pts.len() == 1 {
                Some(Value::Real(pts[0]))
            } else {
                None
            }
        }
        Domain::Disc(DiscSet::In(s)) if s.len() == 1 => s.iter().next().cloned(),
        _ => None,
    }
}

/// Is the formula satisfiable? Returns `true` when satisfiability cannot
/// be ruled out (over-approximation: opaque atoms are dropped, DNF blow-up
/// returns `true`).
pub fn is_satisfiable(f: &Formula, env: &TypeEnv) -> bool {
    match dnf(f, DNF_CAP) {
        None => true, // too big to decide — assume satisfiable
        Some(conjs) => conjs.into_iter().any(|c| {
            let mut st = Conj::new();
            for atom in &c {
                st.add_atom(env, atom);
            }
            !st.unsat(env)
        }),
    }
}

/// Proven entailment: `phi ⊨ psi` iff `phi ∧ ¬psi` is unsatisfiable.
/// Returns `false` when entailment cannot be proven (conservative).
pub fn implies(phi: &Formula, psi: &Formula, env: &TypeEnv) -> bool {
    let neg = Formula::Not(Box::new(psi.clone()));
    let conj = phi.clone().and(neg);
    !is_satisfiable(&conj, env)
}

/// Proven equivalence (entailment both ways).
pub fn equivalent(phi: &Formula, psi: &Formula, env: &TypeEnv) -> bool {
    implies(phi, psi, env) && implies(psi, phi, env)
}

/// Is the formula free of arithmetic (`Bin`/`Neg`) expressions? Such
/// formulas evaluate two-valued whenever all their paths are non-null,
/// which is what lets the query planner transfer the solver's classical
/// entailments to the three-valued evaluator.
pub fn arithmetic_free(f: &Formula) -> bool {
    fn expr_free(e: &Expr) -> bool {
        match e {
            Expr::Const(_) | Expr::Attr(_) => true,
            Expr::Neg(_) | Expr::Bin(..) => false,
        }
    }
    match f {
        Formula::True | Formula::False => true,
        Formula::Cmp(a, _, b) => expr_free(a) && expr_free(b),
        Formula::In(e, _) | Formula::Contains(e, _) => expr_free(e),
        Formula::Not(inner) => arithmetic_free(inner),
        Formula::And(fs) | Formula::Or(fs) => fs.iter().all(arithmetic_free),
        Formula::Implies(a, b) => arithmetic_free(a) && arithmetic_free(b),
    }
}

/// Restricted entailment for the query planner's implied-true pruning:
/// proves `constraints ⊨ target` using **only** premises whose paths are a
/// subset of `target`'s paths, with both sides free of arithmetic.
///
/// The restriction is what makes the classical proof transfer to the
/// three-valued evaluator: on any object where all of `target`'s paths are
/// non-null, every usable premise evaluates two-valued — and, being
/// store-enforced (never `False`), evaluates `True` — so `target`
/// evaluates `True` as well. Premises reaching *other* paths may be
/// `Unknown` on such an object and therefore cannot be used.
pub fn implied_by_restricted(constraints: &[Formula], target: &Formula, env: &TypeEnv) -> bool {
    if !arithmetic_free(target) {
        return false;
    }
    let target_paths = target.paths();
    let usable: Vec<Formula> = constraints
        .iter()
        .filter(|c| arithmetic_free(c) && c.paths().is_subset(&target_paths))
        .cloned()
        .collect();
    let premise = Formula::conj(usable);
    implies(&premise, target, env)
}

/// Enumeration cap for [`selectivity_hint`] — base domains larger than
/// this are treated as non-enumerable (no prior available).
const SELECTIVITY_CAP: usize = 256;

/// Number of candidate values in a domain, when finitely enumerable
/// within the cap.
fn domain_count(d: &Domain, cap: usize) -> Option<usize> {
    match d {
        Domain::Num(n) => n.enumerate(cap).map(|vs| vs.len()),
        Domain::Disc(DiscSet::In(s)) => Some(s.len()),
        Domain::Disc(DiscSet::NotIn(_)) => None,
    }
}

/// Plan-time selectivity prior for a single-path conjunct, from the
/// domain algebra: the fraction of the attribute's finite base domain
/// that satisfies `f`. `None` when the base domain is not finitely
/// enumerable (strings, unbounded numerics) or `f` spans several paths.
///
/// This is the query planner's statistics-free fallback: a store may
/// have no histogram for an attribute (or none built yet), but a typed
/// domain like `rating : 1..10` already bounds how selective
/// `rating >= 9` can be — exactly the way the paper's derived
/// constraints prune provably-empty subqueries, applied quantitatively.
pub fn selectivity_hint(f: &Formula, env: &TypeEnv) -> Option<f64> {
    let paths = f.paths();
    if paths.len() != 1 {
        return None;
    }
    let path = paths.into_iter().next().expect("exactly one path");
    let base = env.base_domain(&path);
    let base_n = domain_count(&base, SELECTIVITY_CAP)?;
    if base_n == 0 {
        return Some(0.0);
    }
    let proj = project(f, &path, env).intersect(&base);
    let proj_n = domain_count(&proj, SELECTIVITY_CAP)?;
    Some((proj_n as f64 / base_n as f64).clamp(0.0, 1.0))
}

/// Is the conjunction of all formulas unsatisfiable? (The paper's
/// *explicit conflict*: `Ω̂ ⊨ false`.)
pub fn conjunction_unsat(fs: &[&Formula], env: &TypeEnv) -> bool {
    let conj = Formula::conj(fs.iter().map(|f| (*f).clone()));
    !is_satisfiable(&conj, env)
}

/// Projects the solution set of `f` onto `path`: the union over DNF
/// conjuncts of the per-conjunct domain (an over-approximation whenever
/// opaque atoms were dropped; exact for the paper's examples).
pub fn project(f: &Formula, path: &Path, env: &TypeEnv) -> Domain {
    let conjs = match dnf(f, DNF_CAP) {
        None => return env.base_domain(path),
        Some(c) => c,
    };
    let mut acc: Option<Domain> = None;
    for conj in conjs {
        let mut st = Conj::new();
        for atom in &conj {
            st.add_atom(env, atom);
        }
        // Materialise the domain before the (destructive) unsat check.
        let dom = st
            .domains
            .get(path)
            .cloned()
            .unwrap_or_else(|| env.base_domain(path));
        if st.unsat(env) {
            continue;
        }
        acc = Some(match acc {
            None => dom,
            Some(a) => a.union(&dom),
        });
    }
    acc.unwrap_or_else(Domain::empty)
}

/// A *guarded atom*: the decomposed form of a normalised object
/// constraint used by the derivation engine (§5.2.1). `guard ⇒ path ∈
/// domain`, with `guard = true` for unconditional constraints.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GuardedAtom {
    /// The condition under which the body applies (`true` if none).
    pub guard: Formula,
    /// The constrained path.
    pub path: Path,
    /// The allowed value set.
    pub domain: Domain,
}

impl GuardedAtom {
    /// Rebuilds a formula from the guarded-atom form.
    pub fn to_formula(&self) -> Formula {
        let body = domain_to_formula(&self.path, &self.domain);
        match &self.guard {
            Formula::True => body,
            g => g.clone().implies(body),
        }
    }
}

/// Decomposes a normalised constraint into guarded atoms. Returns `None`
/// when the constraint does not fit the `guard ⇒ single-path-body` shape
/// (such constraints are conservatively not derivable through decision
/// functions — the paper's general derivation problem is noted as out of
/// scope there too).
pub fn guarded_atoms(f: &Formula, env: &TypeEnv) -> Option<Vec<GuardedAtom>> {
    fn body_target(f: &Formula) -> Option<Path> {
        let ps = f.paths();
        if ps.len() == 1 {
            ps.into_iter().next()
        } else {
            None
        }
    }
    match f {
        Formula::Implies(g, b) => {
            let inner = guarded_atoms(b, env)?;
            Some(
                inner
                    .into_iter()
                    .map(|ga| GuardedAtom {
                        guard: simplify(&(*g.clone()).and(ga.guard)),
                        path: ga.path,
                        domain: ga.domain,
                    })
                    .collect(),
            )
        }
        Formula::And(fs) => {
            let mut out = Vec::new();
            for g in fs {
                out.extend(guarded_atoms(g, env)?);
            }
            Some(out)
        }
        Formula::True => Some(Vec::new()),
        atom => {
            let path = body_target(atom)?;
            // Contains bodies carry no domain information we can combine.
            if matches!(atom, Formula::Contains(_, _)) {
                return None;
            }
            let domain = project(atom, &path, env);
            Some(vec![GuardedAtom {
                guard: Formula::True,
                path,
                domain,
            }])
        }
    }
}

/// Converts a domain back into formula syntax over `path` (used when
/// rendering derived constraints and repair suggestions).
pub fn domain_to_formula(path: &Path, d: &Domain) -> Formula {
    match d {
        Domain::Disc(DiscSet::In(s)) => {
            if s.is_empty() {
                Formula::False
            } else if s.len() == 1 {
                Formula::Cmp(
                    Expr::Attr(path.clone()),
                    CmpOp::Eq,
                    Expr::Const(s.iter().next().expect("non-empty").clone()),
                )
            } else {
                Formula::In(Expr::Attr(path.clone()), s.clone())
            }
        }
        Domain::Disc(DiscSet::NotIn(s)) => {
            if s.is_empty() {
                Formula::True
            } else if s.len() == 1 {
                Formula::Cmp(
                    Expr::Attr(path.clone()),
                    CmpOp::Ne,
                    Expr::Const(s.iter().next().expect("non-empty").clone()),
                )
            } else {
                Formula::Not(Box::new(Formula::In(Expr::Attr(path.clone()), s.clone())))
            }
        }
        Domain::Num(ns) => {
            if ns.is_empty() {
                return Formula::False;
            }
            if ns.is_full() {
                return Formula::True;
            }
            if let Some(pts) = ns.enumerate(32) {
                let vals: BTreeSet<Value> = pts
                    .into_iter()
                    .map(|r| {
                        if ns.integral && r.get().fract() == 0.0 {
                            Value::Int(r.get() as i64)
                        } else {
                            Value::Real(r)
                        }
                    })
                    .collect();
                return if vals.len() == 1 {
                    Formula::Cmp(
                        Expr::Attr(path.clone()),
                        CmpOp::Eq,
                        Expr::Const(vals.iter().next().expect("non-empty").clone()),
                    )
                } else {
                    Formula::In(Expr::Attr(path.clone()), vals)
                };
            }
            let mut parts = Vec::new();
            for iv in ns.intervals() {
                let mut conj = Vec::new();
                match iv.lo {
                    crate::domain::Bnd::Incl(v) => conj.push(Formula::Cmp(
                        Expr::Attr(path.clone()),
                        CmpOp::Ge,
                        Expr::Const(num_val(v, ns.integral)),
                    )),
                    crate::domain::Bnd::Excl(v) => conj.push(Formula::Cmp(
                        Expr::Attr(path.clone()),
                        CmpOp::Gt,
                        Expr::Const(num_val(v, ns.integral)),
                    )),
                    _ => {}
                }
                match iv.hi {
                    crate::domain::Bnd::Incl(v) => conj.push(Formula::Cmp(
                        Expr::Attr(path.clone()),
                        CmpOp::Le,
                        Expr::Const(num_val(v, ns.integral)),
                    )),
                    crate::domain::Bnd::Excl(v) => conj.push(Formula::Cmp(
                        Expr::Attr(path.clone()),
                        CmpOp::Lt,
                        Expr::Const(num_val(v, ns.integral)),
                    )),
                    _ => {}
                }
                parts.push(Formula::conj(conj));
            }
            parts.into_iter().fold(Formula::False, |acc, p| acc.or(p))
        }
    }
}

fn num_val(v: R64, integral: bool) -> Value {
    if integral && v.get().fract() == 0.0 {
        Value::Int(v.get() as i64)
    } else {
        Value::Real(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> TypeEnv {
        TypeEnv::new()
            .with("rating", Type::Range(1, 10))
            .with("libprice", Type::Real)
            .with("shopprice", Type::Real)
            .with("ref?", Type::Bool)
            .with("publisher.name", Type::Str)
            .with("trav_reimb", Type::Int)
            .with("salary", Type::Real)
    }

    #[test]
    fn selectivity_hint_from_finite_base_domain() {
        let e = env();
        // rating : 1..10 — `rating >= 9` admits {9, 10}: 0.2.
        let f = Formula::cmp("rating", CmpOp::Ge, 9i64);
        assert_eq!(selectivity_hint(&f, &e), Some(0.2));
        // Membership sets count exactly.
        let f = Formula::isin("rating", [3i64, 4, 99]);
        assert_eq!(selectivity_hint(&f, &e), Some(0.2), "99 outside the base");
        // Bool base domain has two values.
        let f = Formula::cmp("ref?", CmpOp::Eq, true);
        assert_eq!(selectivity_hint(&f, &e), Some(0.5));
        // Non-enumerable bases and multi-path formulas give no prior.
        assert_eq!(
            selectivity_hint(&Formula::cmp("salary", CmpOp::Ge, 10.0), &e),
            None
        );
        let multi = Formula::cmp("rating", CmpOp::Ge, 2i64).and(Formula::cmp(
            "trav_reimb",
            CmpOp::Eq,
            10i64,
        ));
        assert_eq!(selectivity_hint(&multi, &e), None);
        // A contradiction projects to the empty set.
        let f =
            Formula::cmp("rating", CmpOp::Ge, 9i64).and(Formula::cmp("rating", CmpOp::Lt, 3i64));
        assert_eq!(selectivity_hint(&f, &e), Some(0.0));
    }

    #[test]
    fn unary_contradiction_unsat() {
        let f =
            Formula::cmp("rating", CmpOp::Ge, 7i64).and(Formula::cmp("rating", CmpOp::Lt, 4i64));
        assert!(!is_satisfiable(&f, &env()));
    }

    #[test]
    fn paper_strict_sim_check() {
        // §5.2.1: rating >= 7 ⊨ rating >= 4 (conformed ocl of RefereedPubl).
        let e = env();
        assert!(implies(
            &Formula::cmp("rating", CmpOp::Ge, 7i64),
            &Formula::cmp("rating", CmpOp::Ge, 4i64),
            &e
        ));
        // ... but rating >= 3 ⊭ rating >= 4 (the paper's variant).
        assert!(!implies(
            &Formula::cmp("rating", CmpOp::Ge, 3i64),
            &Formula::cmp("rating", CmpOp::Ge, 4i64),
            &e
        ));
    }

    #[test]
    fn range_types_feed_implicit_bounds() {
        // rating : 1..10, so rating >= 11 is unsatisfiable by type alone.
        assert!(!is_satisfiable(
            &Formula::cmp("rating", CmpOp::Ge, 11i64),
            &env()
        ));
        // And rating <= 10 is implied by anything.
        assert!(implies(
            &Formula::True,
            &Formula::cmp("rating", CmpOp::Le, 10i64),
            &env()
        ));
    }

    #[test]
    fn difference_constraints_strictness() {
        let e = env();
        // libprice <= shopprice ∧ libprice > shopprice : unsat
        let f = Formula::Cmp(Expr::attr("libprice"), CmpOp::Le, Expr::attr("shopprice")).and(
            Formula::Cmp(Expr::attr("libprice"), CmpOp::Gt, Expr::attr("shopprice")),
        );
        assert!(!is_satisfiable(&f, &e));
        // libprice <= shopprice ∧ libprice >= shopprice : satisfiable (=)
        let g = Formula::Cmp(Expr::attr("libprice"), CmpOp::Le, Expr::attr("shopprice")).and(
            Formula::Cmp(Expr::attr("libprice"), CmpOp::Ge, Expr::attr("shopprice")),
        );
        assert!(is_satisfiable(&g, &e));
    }

    #[test]
    fn difference_chain_with_bounds() {
        let e = env();
        // libprice <= shopprice ∧ shopprice <= 10 ∧ libprice >= 20 : unsat
        let f = Formula::Cmp(Expr::attr("libprice"), CmpOp::Le, Expr::attr("shopprice"))
            .and(Formula::cmp("shopprice", CmpOp::Le, 10.0))
            .and(Formula::cmp("libprice", CmpOp::Ge, 20.0));
        assert!(!is_satisfiable(&f, &e));
    }

    #[test]
    fn implication_atoms_in_context() {
        let e = env();
        // (ref?=true ⇒ rating>=7) ∧ ref?=true ⊨ rating >= 7
        let phi = Formula::cmp("ref?", CmpOp::Eq, true)
            .implies(Formula::cmp("rating", CmpOp::Ge, 7i64))
            .and(Formula::cmp("ref?", CmpOp::Eq, true));
        assert!(implies(&phi, &Formula::cmp("rating", CmpOp::Ge, 7i64), &e));
        assert!(implies(&phi, &Formula::cmp("rating", CmpOp::Ge, 4i64), &e));
        assert!(!implies(&phi, &Formula::cmp("rating", CmpOp::Ge, 8i64), &e));
    }

    #[test]
    fn bool_domain_finite() {
        let e = env();
        // ref? ≠ true ∧ ref? ≠ false : unsat (bool carrier is {t,f})
        let f = Formula::cmp("ref?", CmpOp::Ne, true).and(Formula::cmp("ref?", CmpOp::Ne, false));
        assert!(!is_satisfiable(&f, &e));
    }

    #[test]
    fn string_equalities() {
        let e = env();
        let f = Formula::cmp("publisher.name", CmpOp::Eq, "ACM").and(Formula::cmp(
            "publisher.name",
            CmpOp::Eq,
            "IEEE",
        ));
        assert!(!is_satisfiable(&f, &e));
        let g = Formula::cmp("publisher.name", CmpOp::Eq, "ACM").and(Formula::cmp(
            "publisher.name",
            CmpOp::Ne,
            "IEEE",
        ));
        assert!(is_satisfiable(&g, &e));
    }

    #[test]
    fn membership_sets() {
        let e = env();
        // trav_reimb in {10,20} ∧ trav_reimb in {14,24} : unsat (disjoint)
        let f =
            Formula::isin("trav_reimb", [10i64, 20]).and(Formula::isin("trav_reimb", [14i64, 24]));
        assert!(!is_satisfiable(&f, &e));
        // overlapping sets fine
        let g =
            Formula::isin("trav_reimb", [10i64, 20]).and(Formula::isin("trav_reimb", [20i64, 30]));
        assert!(is_satisfiable(&g, &e));
    }

    #[test]
    fn negated_membership() {
        let e = env();
        let f = Formula::isin("trav_reimb", [10i64, 20]).and(Formula::Not(Box::new(
            Formula::isin("trav_reimb", [10i64, 20]),
        )));
        assert!(!is_satisfiable(&f, &e));
    }

    #[test]
    fn contains_contradiction() {
        let e = env();
        let c = Formula::Contains(Expr::attr("publisher.name"), "IEE".into());
        let f = c.clone().and(Formula::Not(Box::new(c)));
        assert!(!is_satisfiable(&f, &e));
    }

    #[test]
    fn contains_filters_finite_domains() {
        let e = env();
        // name in {ACM, IEEE} ∧ contains(name, 'Springer') : unsat
        let f = Formula::isin("publisher.name", [Value::str("ACM"), Value::str("IEEE")]).and(
            Formula::Contains(Expr::attr("publisher.name"), "Springer".into()),
        );
        assert!(!is_satisfiable(&f, &e));
        // name in {ACM, IEEE} ∧ contains(name, 'EE') : satisfiable (IEEE)
        let g = Formula::isin("publisher.name", [Value::str("ACM"), Value::str("IEEE")])
            .and(Formula::Contains(Expr::attr("publisher.name"), "EE".into()));
        assert!(is_satisfiable(&g, &e));
    }

    #[test]
    fn affine_atoms() {
        let e = env();
        // 2*rating - 1 >= 13  ⇔  rating >= 7
        let f = Formula::Cmp(
            Expr::Bin(
                Box::new(Expr::Bin(
                    Box::new(Expr::val(2i64)),
                    ArithOp::Mul,
                    Box::new(Expr::attr("rating")),
                )),
                ArithOp::Sub,
                Box::new(Expr::val(1i64)),
            ),
            CmpOp::Ge,
            Expr::val(13i64),
        );
        assert!(equivalent(&f, &Formula::cmp("rating", CmpOp::Ge, 7i64), &e));
    }

    #[test]
    fn project_extracts_domains() {
        let e = env();
        let f = Formula::cmp("rating", CmpOp::Ge, 4i64);
        let d = project(&f, &Path::parse("rating"), &e);
        assert!(d.contains(&Value::int(4)));
        assert!(!d.contains(&Value::int(3)));
        assert!(d.contains(&Value::int(10)));
        assert!(!d.contains(&Value::int(11))); // type bound 1..10
    }

    #[test]
    fn project_through_disjunction() {
        let e = env();
        let f = Formula::cmp("rating", CmpOp::Le, 2i64).or(Formula::cmp("rating", CmpOp::Ge, 9i64));
        let d = project(&f, &Path::parse("rating"), &e);
        assert!(d.contains(&Value::int(1)));
        assert!(d.contains(&Value::int(9)));
        assert!(!d.contains(&Value::int(5)));
    }

    #[test]
    fn project_conditional_yields_full_when_guard_open() {
        let e = env();
        // ref?=true ⇒ rating>=7 : projection on rating is everything
        // (guard may be false).
        let f =
            Formula::cmp("ref?", CmpOp::Eq, true).implies(Formula::cmp("rating", CmpOp::Ge, 7i64));
        let d = project(&f, &Path::parse("rating"), &e);
        assert!(d.contains(&Value::int(1)));
    }

    #[test]
    fn guarded_atoms_unconditional() {
        let e = env();
        let gas = guarded_atoms(&Formula::cmp("rating", CmpOp::Ge, 4i64), &e).unwrap();
        assert_eq!(gas.len(), 1);
        assert_eq!(gas[0].guard, Formula::True);
        assert_eq!(gas[0].path, Path::parse("rating"));
        assert!(!gas[0].domain.contains(&Value::int(3)));
    }

    #[test]
    fn guarded_atoms_conditional_acm() {
        // §5.2.1: publisher.name='ACM' ⇒ rating >= 6
        let e = env();
        let f = Formula::cmp("publisher.name", CmpOp::Eq, "ACM").implies(Formula::cmp(
            "rating",
            CmpOp::Ge,
            6i64,
        ));
        let gas = guarded_atoms(&f, &e).unwrap();
        assert_eq!(gas.len(), 1);
        assert_eq!(gas[0].guard.to_string(), "publisher.name = 'ACM'");
        assert!(!gas[0].domain.contains(&Value::int(5)));
    }

    #[test]
    fn guarded_atoms_reject_multi_path_bodies() {
        let e = env();
        let f = Formula::Cmp(Expr::attr("libprice"), CmpOp::Le, Expr::attr("shopprice"));
        assert!(guarded_atoms(&f, &e).is_none());
    }

    #[test]
    fn guarded_atoms_roundtrip_formula() {
        let e = env();
        let f = Formula::cmp("publisher.name", CmpOp::Eq, "ACM").implies(Formula::cmp(
            "rating",
            CmpOp::Ge,
            6i64,
        ));
        let gas = guarded_atoms(&f, &e).unwrap();
        let back = gas[0].to_formula();
        assert!(equivalent(&f, &back, &e));
    }

    #[test]
    fn domain_to_formula_forms() {
        let p = Path::parse("x");
        let d = Domain::Num(NumSet::from_cmp(false, CmpOp::Ge, R64::new(5.0)));
        assert_eq!(domain_to_formula(&p, &d).to_string(), "x >= 5");
        let pts = Domain::Num(NumSet::points(
            true,
            [R64::from(12), R64::from(17), R64::from(22)],
        ));
        assert_eq!(domain_to_formula(&p, &pts).to_string(), "x in {12, 17, 22}");
        let one = Domain::Disc(DiscSet::point(Value::str("ACM")));
        assert_eq!(domain_to_formula(&p, &one).to_string(), "x = 'ACM'");
        assert_eq!(domain_to_formula(&p, &Domain::empty()), Formula::False);
    }

    #[test]
    fn conjunction_unsat_reports_explicit_conflicts() {
        let e = env();
        let a = Formula::cmp("rating", CmpOp::Ge, 7i64);
        let b = Formula::cmp("rating", CmpOp::Le, 3i64);
        assert!(conjunction_unsat(&[&a, &b], &e));
        let c = Formula::cmp("rating", CmpOp::Ge, 2i64);
        assert!(!conjunction_unsat(&[&a, &c], &e));
    }

    #[test]
    fn restricted_implication_uses_only_covered_premises() {
        let e = env();
        let enforced = [
            Formula::cmp("rating", CmpOp::Ge, 5i64),
            Formula::Cmp(Expr::attr("libprice"), CmpOp::Le, Expr::attr("shopprice")),
        ];
        // rating >= 2 follows from the rating premise alone.
        assert!(implied_by_restricted(
            &enforced,
            &Formula::cmp("rating", CmpOp::Ge, 2i64),
            &e
        ));
        // libprice <= shopprice is entailed classically, but the premise
        // mentions shopprice, which the target 'libprice <= 1e9' does not
        // cover — the premise may be Unknown where the target's paths are
        // non-null, so the restricted check must refuse.
        assert!(!implied_by_restricted(
            &enforced,
            &Formula::cmp("libprice", CmpOp::Le, 1e9),
            &e
        ));
        // Not entailed at all.
        assert!(!implied_by_restricted(
            &enforced,
            &Formula::cmp("rating", CmpOp::Ge, 6i64),
            &e
        ));
    }

    #[test]
    fn arithmetic_free_classification() {
        assert!(arithmetic_free(&Formula::cmp("rating", CmpOp::Ge, 5i64)));
        assert!(arithmetic_free(&Formula::isin("trav_reimb", [10i64, 20])));
        let arith = Formula::Cmp(
            Expr::Bin(
                Box::new(Expr::attr("rating")),
                ArithOp::Add,
                Box::new(Expr::val(1i64)),
            ),
            CmpOp::Ge,
            Expr::val(5i64),
        );
        assert!(!arithmetic_free(&arith));
        // Arithmetic targets are refused outright.
        assert!(!implied_by_restricted(&[Formula::True], &arith, &env()));
    }

    #[test]
    fn implies_is_conservative_on_opaque() {
        // An opaque atom (string ordering) cannot prove entailment.
        let e = env();
        let f = Formula::Cmp(Expr::attr("publisher.name"), CmpOp::Lt, Expr::val("ZZZ"));
        assert!(!implies(&f, &Formula::cmp("rating", CmpOp::Ge, 2i64), &e));
        // But every formula implies True and False implies everything.
        assert!(implies(&f, &Formula::True, &e));
        assert!(implies(&Formula::False, &f, &e));
    }
}
