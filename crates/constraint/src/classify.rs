//! Syntactic constraint classification.
//!
//! The paper assumes constraints arrive already sorted into object /
//! class / database categories ("design tools supporting proper
//! classification of constraints exist \[FKS94\]"). The TM front-end in
//! `interop-lang` records the section a constraint was declared in; this
//! module *re-derives* the category from the constraint's syntax so the
//! two can be cross-checked — a cheap but effective validation of
//! reverse-engineered specifications.

use crate::constraint::{ClassConstraintBody, DbConstraint, ObjectConstraint};
use crate::expr::Formula;

/// The three constraint categories of §2.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConstraintKind {
    /// Constrains the state of a single (complex) object.
    Object,
    /// Constrains a set of objects from a single class.
    Class,
    /// Constrains sets of objects from different classes.
    Database,
}

impl std::fmt::Display for ConstraintKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ConstraintKind::Object => "object constraint",
            ConstraintKind::Class => "class constraint",
            ConstraintKind::Database => "database constraint",
        })
    }
}

/// Classifies a plain formula: a formula over one object's paths is an
/// object constraint. (Aggregates and quantifiers never appear in
/// [`Formula`]; they are carried by the dedicated class/database
/// constraint types, so a bare formula is always `Object`.)
pub fn classify_formula(_f: &Formula) -> ConstraintKind {
    ConstraintKind::Object
}

/// Classifies an object constraint (sanity: always `Object`).
pub fn classify_object(_c: &ObjectConstraint) -> ConstraintKind {
    ConstraintKind::Object
}

/// Classifies a class-constraint body: keys and aggregates both range
/// over the class extension.
pub fn classify_class_body(_b: &ClassConstraintBody) -> ConstraintKind {
    ConstraintKind::Class
}

/// Classifies a database constraint: it relates two classes, so it is
/// `Database` unless both quantified classes coincide (then it is a
/// class-level restriction expressed with quantifiers).
pub fn classify_db(c: &DbConstraint) -> ConstraintKind {
    if c.outer_class == c.inner_class {
        ConstraintKind::Class
    } else {
        ConstraintKind::Database
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{ConstraintId, PairAtom, Quantifier, Status};
    use crate::expr::{CmpOp, Path};
    use interop_model::{ClassName, DbName};

    #[test]
    fn formula_is_object() {
        let f = Formula::cmp("rating", CmpOp::Ge, 2i64);
        assert_eq!(classify_formula(&f), ConstraintKind::Object);
    }

    #[test]
    fn cross_class_quantified_is_database() {
        let c = DbConstraint {
            id: ConstraintId::db_level(&DbName::new("B"), "dbl"),
            outer_class: ClassName::new("Publisher"),
            quant: Quantifier::Exists,
            inner_class: ClassName::new("Item"),
            atoms: vec![PairAtom {
                outer: Path::this(),
                op: CmpOp::Eq,
                inner: Path::parse("publisher"),
            }],
            status: Status::Subjective,
        };
        assert_eq!(classify_db(&c), ConstraintKind::Database);
    }

    #[test]
    fn same_class_quantified_is_class() {
        let c = DbConstraint {
            id: ConstraintId::db_level(&DbName::new("B"), "x"),
            outer_class: ClassName::new("Item"),
            quant: Quantifier::Forall,
            inner_class: ClassName::new("Item"),
            atoms: vec![],
            status: Status::Subjective,
        };
        assert_eq!(classify_db(&c), ConstraintKind::Class);
    }

    #[test]
    fn display() {
        assert_eq!(ConstraintKind::Object.to_string(), "object constraint");
        assert_eq!(ConstraintKind::Class.to_string(), "class constraint");
        assert_eq!(ConstraintKind::Database.to_string(), "database constraint");
    }
}
