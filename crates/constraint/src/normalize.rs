//! Formula normalisation.
//!
//! The paper (§5.2.1) works with *normalised* object constraints: a
//! constraint written as a conjunction `φ₁ ∧ … ∧ φₙ` is split into `n`
//! separate constraints, so that each normalised constraint expresses one
//! correlation between property values. This module provides that split,
//! plus negation normal form (with implications expanded) and a
//! constant-folding simplifier — the preprocessing steps the solver and
//! the derivation engine rely on.

use interop_model::Value;

use crate::expr::{Expr, Formula};

/// Rewrites to negation normal form: `Implies` expanded, `Not` pushed to
/// atoms (negated comparisons flip their operator; negated `In`/
/// `Contains` stay as `Not(atom)`).
pub fn nnf(f: &Formula) -> Formula {
    nnf_inner(f, false)
}

fn nnf_inner(f: &Formula, neg: bool) -> Formula {
    match f {
        Formula::True => {
            if neg {
                Formula::False
            } else {
                Formula::True
            }
        }
        Formula::False => {
            if neg {
                Formula::True
            } else {
                Formula::False
            }
        }
        Formula::Cmp(a, op, b) => {
            if neg {
                Formula::Cmp(a.clone(), op.negate(), b.clone())
            } else {
                f.clone()
            }
        }
        Formula::In(_, _) | Formula::Contains(_, _) => {
            if neg {
                Formula::Not(Box::new(f.clone()))
            } else {
                f.clone()
            }
        }
        Formula::Not(inner) => nnf_inner(inner, !neg),
        Formula::And(fs) => {
            let parts: Vec<Formula> = fs.iter().map(|g| nnf_inner(g, neg)).collect();
            if neg {
                Formula::Or(parts)
            } else {
                Formula::And(parts)
            }
        }
        Formula::Or(fs) => {
            let parts: Vec<Formula> = fs.iter().map(|g| nnf_inner(g, neg)).collect();
            if neg {
                Formula::And(parts)
            } else {
                Formula::Or(parts)
            }
        }
        Formula::Implies(a, b) => {
            // a → b ≡ ¬a ∨ b
            let expanded = Formula::Or(vec![nnf_inner(a, true), nnf_inner(b, false)]);
            if neg {
                // ¬(a → b) ≡ a ∧ ¬b
                Formula::And(vec![nnf_inner(a, false), nnf_inner(b, true)])
            } else {
                expanded
            }
        }
    }
}

/// Splits a formula into the paper's normalised constraints: top-level
/// conjuncts become separate formulas. Implications are *kept intact*
/// (the paper treats `g ⇒ c` as one normalised conditional constraint).
pub fn split_conjuncts(f: &Formula) -> Vec<Formula> {
    match f {
        Formula::And(fs) => fs.iter().flat_map(split_conjuncts).collect(),
        Formula::True => Vec::new(),
        other => vec![simplify(other)],
    }
}

/// Constant folding and boolean simplification. Does not change the
/// formula's shape beyond removing trivial subformulas; NNF/DNF are
/// separate passes.
pub fn simplify(f: &Formula) -> Formula {
    match f {
        Formula::True | Formula::False => f.clone(),
        Formula::Cmp(a, op, b) => {
            let (a, b) = (fold_expr(a), fold_expr(b));
            if let (Some(va), Some(vb)) = (a.as_const(), b.as_const()) {
                if !va.is_null() && !vb.is_null() {
                    if let Some(ord) = va.compare(vb) {
                        return if op.test(ord) {
                            Formula::True
                        } else {
                            Formula::False
                        };
                    }
                }
            }
            Formula::Cmp(a, *op, b)
        }
        Formula::In(e, set) => {
            let e = fold_expr(e);
            if set.is_empty() {
                return Formula::False;
            }
            if let Some(v) = e.as_const() {
                if !v.is_null() {
                    return if set.iter().any(|s| s.sem_eq(v)) {
                        Formula::True
                    } else {
                        Formula::False
                    };
                }
            }
            Formula::In(e, set.clone())
        }
        Formula::Contains(e, s) => {
            let e = fold_expr(e);
            if let Some(Value::Str(hay)) = e.as_const() {
                return if hay.contains(s.as_str()) {
                    Formula::True
                } else {
                    Formula::False
                };
            }
            Formula::Contains(e, s.clone())
        }
        Formula::Not(inner) => match simplify(inner) {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(g) => *g,
            g => Formula::Not(Box::new(g)),
        },
        Formula::And(fs) => {
            let mut out = Vec::new();
            for g in fs {
                match simplify(g) {
                    Formula::True => {}
                    Formula::False => return Formula::False,
                    Formula::And(inner) => out.extend(inner),
                    g => {
                        if !out.contains(&g) {
                            out.push(g);
                        }
                    }
                }
            }
            match out.len() {
                0 => Formula::True,
                1 => out.pop().expect("len checked"),
                _ => Formula::And(out),
            }
        }
        Formula::Or(fs) => {
            let mut out = Vec::new();
            for g in fs {
                match simplify(g) {
                    Formula::False => {}
                    Formula::True => return Formula::True,
                    Formula::Or(inner) => out.extend(inner),
                    g => {
                        if !out.contains(&g) {
                            out.push(g);
                        }
                    }
                }
            }
            match out.len() {
                0 => Formula::False,
                1 => out.pop().expect("len checked"),
                _ => Formula::Or(out),
            }
        }
        Formula::Implies(a, b) => match (simplify(a), simplify(b)) {
            (Formula::True, b) => b,
            (Formula::False, _) => Formula::True,
            (_, Formula::True) => Formula::True,
            (a, Formula::False) => simplify(&Formula::Not(Box::new(a))),
            (a, b) => Formula::Implies(Box::new(a), Box::new(b)),
        },
    }
}

/// Folds constant arithmetic inside an expression.
pub fn fold_expr(e: &Expr) -> Expr {
    match e {
        Expr::Const(_) | Expr::Attr(_) => e.clone(),
        Expr::Neg(inner) => {
            let inner = fold_expr(inner);
            if let Some(v) = inner.as_const().and_then(Value::as_num) {
                Expr::Const(Value::Real(-v))
            } else {
                Expr::Neg(Box::new(inner))
            }
        }
        Expr::Bin(a, op, b) => {
            let (a, b) = (fold_expr(a), fold_expr(b));
            if let (Some(x), Some(y)) = (
                a.as_const().and_then(Value::as_num),
                b.as_const().and_then(Value::as_num),
            ) {
                use crate::expr::ArithOp::*;
                let r = match op {
                    Add => Some(x + y),
                    Sub => Some(x - y),
                    Mul => Some(x * y),
                    Div => {
                        if y.get() == 0.0 {
                            None
                        } else {
                            Some(x / y)
                        }
                    }
                };
                if let Some(r) = r {
                    return Expr::Const(Value::Real(r));
                }
            }
            Expr::Bin(Box::new(a), *op, Box::new(b))
        }
    }
}

/// Disjunctive normal form: a vector of conjunctions of atomic formulas.
/// Implications are expanded via NNF first. `cap` bounds the number of
/// conjuncts produced; `None` is returned when the bound is exceeded
/// (callers treat this as "unknown" — conservative).
pub fn dnf(f: &Formula, cap: usize) -> Option<Vec<Vec<Formula>>> {
    fn go(f: &Formula, cap: usize) -> Option<Vec<Vec<Formula>>> {
        match f {
            Formula::True => Some(vec![vec![]]),
            Formula::False => Some(vec![]),
            Formula::And(fs) => {
                let mut acc: Vec<Vec<Formula>> = vec![vec![]];
                for g in fs {
                    let d = go(g, cap)?;
                    let mut next = Vec::new();
                    for conj in &acc {
                        for dconj in &d {
                            let mut merged = conj.clone();
                            merged.extend(dconj.iter().cloned());
                            next.push(merged);
                            if next.len() > cap {
                                return None;
                            }
                        }
                    }
                    acc = next;
                }
                Some(acc)
            }
            Formula::Or(fs) => {
                let mut acc = Vec::new();
                for g in fs {
                    acc.extend(go(g, cap)?);
                    if acc.len() > cap {
                        return None;
                    }
                }
                Some(acc)
            }
            atom => Some(vec![vec![atom.clone()]]),
        }
    }
    go(&simplify(&nnf(f)), cap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{ArithOp, CmpOp};

    #[test]
    fn nnf_expands_implication() {
        let f =
            Formula::cmp("ref?", CmpOp::Eq, true).implies(Formula::cmp("rating", CmpOp::Ge, 7i64));
        let n = nnf(&f);
        assert_eq!(n.to_string(), "ref? <> true or rating >= 7");
    }

    #[test]
    fn nnf_negates_comparisons() {
        let f = Formula::Not(Box::new(Formula::cmp("rating", CmpOp::Ge, 4i64)));
        assert_eq!(nnf(&f).to_string(), "rating < 4");
    }

    #[test]
    fn nnf_de_morgan() {
        let f = Formula::Not(Box::new(
            Formula::cmp("a", CmpOp::Eq, 1i64).and(Formula::cmp("b", CmpOp::Eq, 2i64)),
        ));
        assert_eq!(nnf(&f).to_string(), "a <> 1 or b <> 2");
    }

    #[test]
    fn nnf_negated_implication() {
        let f = Formula::Not(Box::new(
            Formula::cmp("g", CmpOp::Eq, true).implies(Formula::cmp("x", CmpOp::Ge, 5i64)),
        ));
        assert_eq!(nnf(&f).to_string(), "g = true and x < 5");
    }

    #[test]
    fn split_paper_normalisation() {
        // φ₁ ∧ φ₂ ∧ (g ⇒ c) splits into three normalised constraints.
        let f = Formula::cmp("a", CmpOp::Ge, 1i64)
            .and(Formula::cmp("b", CmpOp::Le, 2i64))
            .and(Formula::cmp("g", CmpOp::Eq, true).implies(Formula::cmp("c", CmpOp::Ge, 3i64)));
        let parts = split_conjuncts(&f);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[2].to_string(), "g = true implies c >= 3");
    }

    #[test]
    fn simplify_folds_constants() {
        let f = Formula::Cmp(Expr::val(3i64), CmpOp::Lt, Expr::val(5i64));
        assert_eq!(simplify(&f), Formula::True);
        let g = Formula::Cmp(
            Expr::Bin(
                Box::new(Expr::val(2i64)),
                ArithOp::Mul,
                Box::new(Expr::val(3i64)),
            ),
            CmpOp::Eq,
            Expr::val(6i64),
        );
        assert_eq!(simplify(&g), Formula::True);
    }

    #[test]
    fn simplify_prunes_boolean_structure() {
        let a = Formula::cmp("x", CmpOp::Ge, 1i64);
        let f = a.clone().and(Formula::True).and(a.clone());
        assert_eq!(simplify(&f), a);
        let g = Formula::Or(vec![Formula::False, a.clone()]);
        assert_eq!(simplify(&g), a);
        let h = Formula::Implies(Box::new(Formula::True), Box::new(a.clone()));
        assert_eq!(simplify(&h), a);
        let dn = Formula::Not(Box::new(Formula::Not(Box::new(a.clone()))));
        assert_eq!(simplify(&dn), a);
    }

    #[test]
    fn simplify_in_and_contains() {
        let f = Formula::In(
            Expr::val(10i64),
            [Value::int(10), Value::int(20)].into_iter().collect(),
        );
        assert_eq!(simplify(&f), Formula::True);
        let g = Formula::In(Expr::attr("x"), std::collections::BTreeSet::new());
        assert_eq!(simplify(&g), Formula::False);
        let h = Formula::Contains(Expr::val("Proceedings of VLDB"), "Proceed".into());
        assert_eq!(simplify(&h), Formula::True);
    }

    #[test]
    fn dnf_small_formula() {
        let f = Formula::cmp("g", CmpOp::Eq, true).implies(Formula::cmp("x", CmpOp::Ge, 5i64));
        let d = dnf(&f, 64).unwrap();
        // ¬g ∨ x>=5 → two conjuncts of one atom each.
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].len(), 1);
    }

    #[test]
    fn dnf_distributes_and_over_or() {
        let f = Formula::cmp("a", CmpOp::Eq, 1i64)
            .or(Formula::cmp("b", CmpOp::Eq, 2i64))
            .and(Formula::cmp("c", CmpOp::Eq, 3i64).or(Formula::cmp("d", CmpOp::Eq, 4i64)));
        let d = dnf(&f, 64).unwrap();
        assert_eq!(d.len(), 4);
        assert!(d.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn dnf_cap_exceeded_returns_none() {
        // (a∨b) ∧ (c∨d) ∧ (e∨f) = 8 conjuncts > cap 4.
        let cl = |n: &str| Formula::cmp(n, CmpOp::Eq, 1i64).or(Formula::cmp(n, CmpOp::Eq, 2i64));
        let f = cl("a").and(cl("b")).and(cl("c"));
        assert!(dnf(&f, 4).is_none());
        assert!(dnf(&f, 64).is_some());
    }

    #[test]
    fn dnf_of_false_is_empty() {
        assert_eq!(dnf(&Formula::False, 8).unwrap().len(), 0);
        assert_eq!(dnf(&Formula::True, 8).unwrap(), vec![Vec::<Formula>::new()]);
    }
}
