//! The typed domain algebra.
//!
//! A [`Domain`] denotes a set of candidate values for one attribute term.
//! Two carriers cover the paper's fragment:
//!
//! * [`NumSet`] — a finite union of intervals over the reals, optionally
//!   *integral* (for `int` and range types, where the open interval
//!   `(3, 4)` is empty);
//! * [`DiscSet`] — a finite or cofinite set of discrete [`Value`]s
//!   (strings, booleans, references, sets).
//!
//! The algebra supports intersection, union, complement, emptiness,
//! subset, and — crucially for §5.2.1 of the paper — **images under
//! decision functions**: [`NumSet::combine_monotone`] pushes interval
//! endpoints through a function monotone in both arguments (`avg`, `min`,
//! `max`), and [`Domain::combine_pointwise`] maps finite sets pointwise.
//! The latter reproduces the paper's introduction example, where `avg`
//! maps `trav_reimb ∈ {10,20}` and `{14,24}` to the global constraint
//! `trav_reimb ∈ {12,17,22}`.

use std::collections::BTreeSet;
use std::fmt;

use interop_model::{Type, Value, R64};

/// An interval bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Bnd {
    /// Unbounded below.
    NegInf,
    /// Closed bound.
    Incl(R64),
    /// Open bound.
    Excl(R64),
    /// Unbounded above.
    PosInf,
}

impl Bnd {
    fn lo_key(self) -> (R64, u8) {
        match self {
            Bnd::NegInf => (R64::new(f64::NEG_INFINITY), 0),
            Bnd::Incl(v) => (v, 0),
            Bnd::Excl(v) => (v, 1),
            Bnd::PosInf => (R64::new(f64::INFINITY), 2),
        }
    }

    fn hi_key(self) -> (R64, u8) {
        match self {
            Bnd::NegInf => (R64::new(f64::NEG_INFINITY), 0),
            Bnd::Incl(v) => (v, 2),
            Bnd::Excl(v) => (v, 1),
            Bnd::PosInf => (R64::new(f64::INFINITY), 2),
        }
    }

    /// The finite value of the bound, if any.
    pub fn value(self) -> Option<R64> {
        match self {
            Bnd::Incl(v) | Bnd::Excl(v) => Some(v),
            _ => None,
        }
    }
}

/// A non-empty interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Iv {
    /// Lower bound (`NegInf`, `Incl`, or `Excl`).
    pub lo: Bnd,
    /// Upper bound (`Incl`, `Excl`, or `PosInf`).
    pub hi: Bnd,
}

impl Iv {
    /// Constructs an interval; returns `None` if it denotes ∅.
    pub fn new(lo: Bnd, hi: Bnd) -> Option<Iv> {
        let iv = Iv { lo, hi };
        if iv.empty() {
            None
        } else {
            Some(iv)
        }
    }

    /// The full line.
    pub fn full() -> Iv {
        Iv {
            lo: Bnd::NegInf,
            hi: Bnd::PosInf,
        }
    }

    /// Closed interval `[a, b]`.
    pub fn closed(a: f64, b: f64) -> Iv {
        Iv {
            lo: Bnd::Incl(R64::new(a)),
            hi: Bnd::Incl(R64::new(b)),
        }
    }

    /// Singleton `[v, v]`.
    pub fn point(v: R64) -> Iv {
        Iv {
            lo: Bnd::Incl(v),
            hi: Bnd::Incl(v),
        }
    }

    fn empty(&self) -> bool {
        let (lv, lk) = self.lo.lo_key();
        let (hv, hk) = self.hi.hi_key();
        match lv.cmp(&hv) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Equal => {
                // [v,v] non-empty only if both bounds closed.
                !(lk == 0 && hk == 2)
            }
            std::cmp::Ordering::Less => false,
        }
    }

    /// Does the interval contain `v`?
    pub fn contains(&self, v: R64) -> bool {
        let lo_ok = match self.lo {
            Bnd::NegInf => true,
            Bnd::Incl(l) => l <= v,
            Bnd::Excl(l) => l < v,
            Bnd::PosInf => false,
        };
        let hi_ok = match self.hi {
            Bnd::PosInf => true,
            Bnd::Incl(h) => v <= h,
            Bnd::Excl(h) => v < h,
            Bnd::NegInf => false,
        };
        lo_ok && hi_ok
    }

    fn intersect(&self, other: &Iv) -> Option<Iv> {
        let lo = if self.lo.lo_key() >= other.lo.lo_key() {
            self.lo
        } else {
            other.lo
        };
        let hi = if self.hi.hi_key() <= other.hi.hi_key() {
            self.hi
        } else {
            other.hi
        };
        Iv::new(lo, hi)
    }

    /// Snaps an interval to integral bounds: `(2.5, 7)` over ℤ becomes
    /// `[3, 6]`. Returns `None` if no integer remains.
    fn snap_integral(&self) -> Option<Iv> {
        let lo = match self.lo {
            Bnd::NegInf => Bnd::NegInf,
            Bnd::Incl(v) => Bnd::Incl(R64::new(v.get().ceil())),
            Bnd::Excl(v) => {
                let c = v.get().floor() + 1.0;
                Bnd::Incl(R64::new(c.max(v.get().ceil().max(c))))
            }
            Bnd::PosInf => return None,
        };
        let hi = match self.hi {
            Bnd::PosInf => Bnd::PosInf,
            Bnd::Incl(v) => Bnd::Incl(R64::new(v.get().floor())),
            Bnd::Excl(v) => {
                let c = v.get().ceil() - 1.0;
                Bnd::Incl(R64::new(c.min(v.get().floor().min(c))))
            }
            Bnd::NegInf => return None,
        };
        Iv::new(lo, hi)
    }
}

impl fmt::Display for Iv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.lo {
            Bnd::NegInf => write!(f, "(-inf")?,
            Bnd::Incl(v) => write!(f, "[{v}")?,
            Bnd::Excl(v) => write!(f, "({v}")?,
            Bnd::PosInf => write!(f, "(+inf")?,
        }
        write!(f, ", ")?;
        match self.hi {
            Bnd::PosInf => write!(f, "+inf)"),
            Bnd::Incl(v) => write!(f, "{v}]"),
            Bnd::Excl(v) => write!(f, "{v})"),
            Bnd::NegInf => write!(f, "-inf)"),
        }
    }
}

/// A finite union of disjoint, sorted intervals; `integral` restricts the
/// carrier to ℤ.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NumSet {
    /// Whether the carrier is ℤ (true) or ℝ (false).
    pub integral: bool,
    ivs: Vec<Iv>,
}

impl NumSet {
    /// The empty set.
    pub fn empty(integral: bool) -> NumSet {
        NumSet {
            integral,
            ivs: Vec::new(),
        }
    }

    /// The full carrier.
    pub fn full(integral: bool) -> NumSet {
        NumSet {
            integral,
            ivs: vec![Iv::full()],
        }
    }

    /// From one interval.
    pub fn from_iv(integral: bool, iv: Iv) -> NumSet {
        NumSet::from_ivs(integral, vec![iv])
    }

    /// From a list of intervals (normalised: snapped, sorted, merged).
    pub fn from_ivs(integral: bool, ivs: Vec<Iv>) -> NumSet {
        let mut s = NumSet { integral, ivs };
        s.normalise();
        s
    }

    /// Singleton.
    pub fn point(integral: bool, v: R64) -> NumSet {
        NumSet::from_iv(integral, Iv::point(v))
    }

    /// From a finite set of numbers.
    pub fn points(integral: bool, vals: impl IntoIterator<Item = R64>) -> NumSet {
        NumSet::from_ivs(integral, vals.into_iter().map(Iv::point).collect())
    }

    /// A half-line or segment from a comparison against a constant:
    /// the solution set of `x op v`.
    pub fn from_cmp(integral: bool, op: crate::expr::CmpOp, v: R64) -> NumSet {
        use crate::expr::CmpOp::*;
        let iv = match op {
            Eq => Some(Iv::point(v)),
            Lt => Iv::new(Bnd::NegInf, Bnd::Excl(v)),
            Le => Iv::new(Bnd::NegInf, Bnd::Incl(v)),
            Gt => Iv::new(Bnd::Excl(v), Bnd::PosInf),
            Ge => Iv::new(Bnd::Incl(v), Bnd::PosInf),
            Ne => {
                return NumSet::from_ivs(
                    integral,
                    vec![
                        Iv::new(Bnd::NegInf, Bnd::Excl(v)),
                        Iv::new(Bnd::Excl(v), Bnd::PosInf),
                    ]
                    .into_iter()
                    .flatten()
                    .collect(),
                )
            }
        };
        NumSet {
            integral,
            ivs: iv.into_iter().collect(),
        }
        .normalised()
    }

    fn normalised(mut self) -> NumSet {
        self.normalise();
        self
    }

    fn normalise(&mut self) {
        if self.integral {
            self.ivs = self.ivs.iter().filter_map(Iv::snap_integral).collect();
        }
        self.ivs.retain(|iv| !iv.empty());
        self.ivs.sort_by_key(|a| a.lo.lo_key());
        let mut merged: Vec<Iv> = Vec::with_capacity(self.ivs.len());
        for iv in self.ivs.drain(..) {
            match merged.last_mut() {
                Some(last) if touches(last, &iv, self.integral) => {
                    if iv.hi.hi_key() > last.hi.hi_key() {
                        last.hi = iv.hi;
                    }
                }
                _ => merged.push(iv),
            }
        }
        self.ivs = merged;
    }

    /// The intervals (sorted, disjoint).
    pub fn intervals(&self) -> &[Iv] {
        &self.ivs
    }

    /// Is the set empty?
    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    /// Is the set the whole carrier?
    pub fn is_full(&self) -> bool {
        self.ivs.len() == 1
            && matches!(self.ivs[0].lo, Bnd::NegInf)
            && matches!(self.ivs[0].hi, Bnd::PosInf)
    }

    /// Membership test.
    pub fn contains(&self, v: R64) -> bool {
        if self.integral && v.get().fract() != 0.0 {
            return false;
        }
        self.ivs.iter().any(|iv| iv.contains(v))
    }

    /// Set intersection.
    pub fn intersect(&self, other: &NumSet) -> NumSet {
        let integral = self.integral || other.integral;
        let mut out = Vec::new();
        for a in &self.ivs {
            for b in &other.ivs {
                if let Some(c) = a.intersect(b) {
                    out.push(c);
                }
            }
        }
        NumSet::from_ivs(integral, out)
    }

    /// Set union (carriers must agree on integrality; the coarser carrier
    /// — ℝ — wins otherwise).
    pub fn union(&self, other: &NumSet) -> NumSet {
        let integral = self.integral && other.integral;
        let mut ivs = self.ivs.clone();
        ivs.extend(other.ivs.iter().copied());
        NumSet::from_ivs(integral, ivs)
    }

    /// Complement within the carrier.
    pub fn complement(&self) -> NumSet {
        let mut out = Vec::new();
        let mut lo = Bnd::NegInf;
        for iv in &self.ivs {
            let hi = match iv.lo {
                Bnd::NegInf => None,
                Bnd::Incl(v) => Some(Bnd::Excl(v)),
                Bnd::Excl(v) => Some(Bnd::Incl(v)),
                Bnd::PosInf => Some(Bnd::PosInf),
            };
            if let Some(hi) = hi {
                if let Some(gap) = Iv::new(lo, hi) {
                    out.push(gap);
                }
            }
            lo = match iv.hi {
                Bnd::PosInf => return NumSet::from_ivs(self.integral, out),
                Bnd::Incl(v) => Bnd::Excl(v),
                Bnd::Excl(v) => Bnd::Incl(v),
                Bnd::NegInf => Bnd::NegInf,
            };
        }
        if let Some(tail) = Iv::new(lo, Bnd::PosInf) {
            out.push(tail);
        }
        NumSet::from_ivs(self.integral, out)
    }

    /// Subset test. Carrier-aware: a real-carrier set is a subset of an
    /// integral-carrier set only when it consists of integer points that
    /// all belong to the other set.
    pub fn is_subset(&self, other: &NumSet) -> bool {
        if !self.integral && other.integral {
            return match self.enumerate(1024) {
                Some(pts) => pts
                    .iter()
                    .all(|p| p.get().fract() == 0.0 && other.contains(*p)),
                None => self.is_empty(),
            };
        }
        self.intersect(&other.complement()).is_empty()
    }

    /// True when every interval is a single point (the set stems from
    /// finite-membership constraints rather than ranges).
    pub fn is_point_set(&self) -> bool {
        self.ivs.iter().all(|iv| match (iv.lo, iv.hi) {
            (Bnd::Incl(a), Bnd::Incl(b)) => a == b,
            _ => false,
        })
    }

    /// Enumerates the set if it is finite and has at most `cap` elements.
    pub fn enumerate(&self, cap: usize) -> Option<Vec<R64>> {
        if !self.integral {
            // Reals: finite only if every interval is a point.
            let mut out = Vec::new();
            for iv in &self.ivs {
                match (iv.lo, iv.hi) {
                    (Bnd::Incl(a), Bnd::Incl(b)) if a == b => out.push(a),
                    _ => return None,
                }
                if out.len() > cap {
                    return None;
                }
            }
            return Some(out);
        }
        let mut out = Vec::new();
        for iv in &self.ivs {
            let (lo, hi) = match (iv.lo, iv.hi) {
                (Bnd::Incl(a), Bnd::Incl(b)) => (a.get() as i64, b.get() as i64),
                _ => return None, // unbounded
            };
            for v in lo..=hi {
                out.push(R64::from(v));
                if out.len() > cap {
                    return None;
                }
            }
        }
        Some(out)
    }

    /// Image under a function **monotone non-decreasing in both
    /// arguments** (e.g. `avg`, `min`, `max`, `+`): combines interval
    /// endpoints pairwise. This is how a decision function maps local and
    /// remote constraint ranges to a global range (§5.2.1 — `avg` of
    /// `[4, ∞)` and `[6, ∞)` is `[5, ∞)`).
    ///
    /// `integral_out` states whether the image carrier is ℤ (e.g. `avg` of
    /// two integer scales generally is not integral).
    pub fn combine_monotone(
        &self,
        other: &NumSet,
        integral_out: bool,
        f: impl Fn(R64, R64) -> R64,
    ) -> NumSet {
        // Openness: the combined endpoint is open only when *both* input
        // endpoints are open. With one closed side, functions like `min`
        // still attain the boundary (min of a closed -17 and any open set
        // above it is exactly -17), so marking it open would wrongly
        // exclude attainable global values. For functions needing both
        // endpoints (`avg`), a closed bound merely over-approximates —
        // the sound direction for derived constraints.
        let combine_lo = |a: Bnd, b: Bnd| -> Bnd {
            match (a, b) {
                (Bnd::NegInf, _) | (_, Bnd::NegInf) => Bnd::NegInf,
                (Bnd::Excl(x), Bnd::Excl(y)) => Bnd::Excl(f(x, y)),
                (Bnd::Incl(x) | Bnd::Excl(x), Bnd::Incl(y) | Bnd::Excl(y)) => Bnd::Incl(f(x, y)),
                (Bnd::PosInf, _) | (_, Bnd::PosInf) => Bnd::PosInf,
            }
        };
        let combine_hi = |a: Bnd, b: Bnd| -> Bnd {
            match (a, b) {
                (Bnd::PosInf, _) | (_, Bnd::PosInf) => Bnd::PosInf,
                (Bnd::Excl(x), Bnd::Excl(y)) => Bnd::Excl(f(x, y)),
                (Bnd::Incl(x) | Bnd::Excl(x), Bnd::Incl(y) | Bnd::Excl(y)) => Bnd::Incl(f(x, y)),
                (Bnd::NegInf, _) | (_, Bnd::NegInf) => Bnd::NegInf,
            }
        };
        // Exact pointwise image where both sides are genuine point sets
        // (finite-membership constraints like `{10, 20}`): this is what
        // reproduces the paper's `{12,17,22}`. Contiguous ranges combine
        // by endpoints instead — `avg` of `[4,10]` and `[6,10]` is the
        // paper's `[5,10]`, not an enumeration of half-integers.
        if self.is_point_set() && other.is_point_set() {
            if let (Some(xs), Some(ys)) = (self.enumerate(64), other.enumerate(64)) {
                if xs.len() * ys.len() <= 4096 {
                    let mut pts = Vec::with_capacity(xs.len() * ys.len());
                    for &x in &xs {
                        for &y in &ys {
                            pts.push(f(x, y));
                        }
                    }
                    return NumSet::points(integral_out, pts);
                }
            }
        }
        let mut out = Vec::new();
        for a in &self.ivs {
            for b in &other.ivs {
                if let Some(iv) = Iv::new(combine_lo(a.lo, b.lo), combine_hi(a.hi, b.hi)) {
                    out.push(iv);
                }
            }
        }
        NumSet::from_ivs(integral_out, out)
    }

    /// Image under an affine map `x ↦ a·x + b` (conversion functions such
    /// as `multiply(2)`; §4's domain conversion of constraint constants).
    pub fn affine_image(&self, a: R64, b: R64, integral_out: bool) -> NumSet {
        let map = |v: R64| a * v + b;
        let map_bnd = |bd: Bnd| match bd {
            Bnd::NegInf => Bnd::NegInf,
            Bnd::PosInf => Bnd::PosInf,
            Bnd::Incl(v) => Bnd::Incl(map(v)),
            Bnd::Excl(v) => Bnd::Excl(map(v)),
        };
        let flip = a.get() < 0.0;
        let mut out = Vec::new();
        for iv in &self.ivs {
            let (lo, hi) = if flip {
                (map_bnd(iv.hi), map_bnd(iv.lo))
            } else {
                (map_bnd(iv.lo), map_bnd(iv.hi))
            };
            // Infinities swap roles under reflection.
            let lo = if matches!(lo, Bnd::PosInf) {
                Bnd::NegInf
            } else {
                lo
            };
            let hi = if matches!(hi, Bnd::NegInf) {
                Bnd::PosInf
            } else {
                hi
            };
            if let Some(iv) = Iv::new(lo, hi) {
                out.push(iv);
            }
        }
        NumSet::from_ivs(integral_out, out)
    }
}

fn touches(a: &Iv, b: &Iv, integral: bool) -> bool {
    // b.lo is known >= a.lo (sorted). Merge when overlapping or adjacent.
    let (av, a_closed) = match a.hi {
        Bnd::PosInf => return true,
        Bnd::Incl(v) => (v, true),
        Bnd::Excl(v) => (v, false),
        Bnd::NegInf => return false,
    };
    let (bv, b_closed) = match b.lo {
        Bnd::NegInf => return true,
        Bnd::Incl(v) => (v, true),
        Bnd::Excl(v) => (v, false),
        Bnd::PosInf => return false,
    };
    match bv.cmp(&av) {
        std::cmp::Ordering::Less => true,
        // Equal endpoints: contiguous unless both open (gap of one point).
        std::cmp::Ordering::Equal => a_closed || b_closed,
        // Integer adjacency: [.., x] u [x+1, ..].
        std::cmp::Ordering::Greater => {
            integral && a_closed && b_closed && bv.get() - av.get() == 1.0
        }
    }
}

impl fmt::Display for NumSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ivs.is_empty() {
            return write!(f, "{{}}");
        }
        if let Some(pts) = self.enumerate(16) {
            write!(f, "{{")?;
            for (i, p) in pts.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{p}")?;
            }
            return write!(f, "}}");
        }
        for (i, iv) in self.ivs.iter().enumerate() {
            if i > 0 {
                write!(f, " u ")?;
            }
            write!(f, "{iv}")?;
        }
        Ok(())
    }
}

/// A finite (`In`) or cofinite (`NotIn`) set of discrete values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DiscSet {
    /// Exactly these values.
    In(BTreeSet<Value>),
    /// Everything except these values.
    NotIn(BTreeSet<Value>),
}

impl DiscSet {
    /// The full discrete carrier.
    pub fn full() -> DiscSet {
        DiscSet::NotIn(BTreeSet::new())
    }

    /// The empty set.
    pub fn empty() -> DiscSet {
        DiscSet::In(BTreeSet::new())
    }

    /// Singleton.
    pub fn point(v: Value) -> DiscSet {
        DiscSet::In([v].into_iter().collect())
    }

    /// Is this ∅? (Cofinite sets are never empty — the carrier is assumed
    /// infinite; booleans get a finite carrier via [`Domain::full_of`].)
    pub fn is_empty(&self) -> bool {
        matches!(self, DiscSet::In(s) if s.is_empty())
    }

    /// Membership.
    pub fn contains(&self, v: &Value) -> bool {
        match self {
            DiscSet::In(s) => s.contains(v),
            DiscSet::NotIn(s) => !s.contains(v),
        }
    }

    /// Intersection.
    pub fn intersect(&self, other: &DiscSet) -> DiscSet {
        match (self, other) {
            (DiscSet::In(a), DiscSet::In(b)) => DiscSet::In(a.intersection(b).cloned().collect()),
            (DiscSet::In(a), DiscSet::NotIn(b)) => DiscSet::In(a.difference(b).cloned().collect()),
            (DiscSet::NotIn(a), DiscSet::In(b)) => DiscSet::In(b.difference(a).cloned().collect()),
            (DiscSet::NotIn(a), DiscSet::NotIn(b)) => DiscSet::NotIn(a.union(b).cloned().collect()),
        }
    }

    /// Union.
    pub fn union(&self, other: &DiscSet) -> DiscSet {
        match (self, other) {
            (DiscSet::In(a), DiscSet::In(b)) => DiscSet::In(a.union(b).cloned().collect()),
            (DiscSet::In(a), DiscSet::NotIn(b)) => {
                DiscSet::NotIn(b.difference(a).cloned().collect())
            }
            (DiscSet::NotIn(a), DiscSet::In(b)) => {
                DiscSet::NotIn(a.difference(b).cloned().collect())
            }
            (DiscSet::NotIn(a), DiscSet::NotIn(b)) => {
                DiscSet::NotIn(a.intersection(b).cloned().collect())
            }
        }
    }

    /// Complement.
    pub fn complement(&self) -> DiscSet {
        match self {
            DiscSet::In(s) => DiscSet::NotIn(s.clone()),
            DiscSet::NotIn(s) => DiscSet::In(s.clone()),
        }
    }

    /// Subset test.
    pub fn is_subset(&self, other: &DiscSet) -> bool {
        self.intersect(&other.complement()).is_empty()
    }
}

impl fmt::Display for DiscSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let write_set = |f: &mut fmt::Formatter<'_>, s: &BTreeSet<Value>| -> fmt::Result {
            write!(f, "{{")?;
            for (i, v) in s.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, "}}")
        };
        match self {
            DiscSet::In(s) => write_set(f, s),
            DiscSet::NotIn(s) if s.is_empty() => write!(f, "ANY"),
            DiscSet::NotIn(s) => {
                write!(f, "not ")?;
                write_set(f, s)
            }
        }
    }
}

/// A candidate-value set for one attribute term.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Domain {
    /// Numeric carrier.
    Num(NumSet),
    /// Discrete carrier.
    Disc(DiscSet),
}

impl Domain {
    /// The full domain of an attribute type. Range types contribute their
    /// bounds as an implicit constraint (the paper leans on this:
    /// `rating : 1..5` already bounds ratings before any explicit
    /// constraint).
    pub fn full_of(ty: &Type) -> Domain {
        match ty {
            Type::Int => Domain::Num(NumSet::full(true)),
            Type::Real => Domain::Num(NumSet::full(false)),
            Type::Range(lo, hi) => {
                Domain::Num(NumSet::from_iv(true, Iv::closed(*lo as f64, *hi as f64)))
            }
            Type::Bool => Domain::Disc(DiscSet::In(
                [Value::Bool(false), Value::Bool(true)]
                    .into_iter()
                    .collect(),
            )),
            _ => Domain::Disc(DiscSet::full()),
        }
    }

    /// The empty domain (numeric carrier by convention).
    pub fn empty() -> Domain {
        Domain::Num(NumSet::empty(false))
    }

    /// A domain from a finite value set; numeric if all members are.
    pub fn from_values(vals: &BTreeSet<Value>, integral: bool) -> Domain {
        if !vals.is_empty() && vals.iter().all(|v| v.as_num().is_some()) {
            Domain::Num(NumSet::points(
                integral,
                vals.iter().filter_map(|v| v.as_num()),
            ))
        } else {
            Domain::Disc(DiscSet::In(vals.clone()))
        }
    }

    /// Is the domain provably empty?
    pub fn is_empty(&self) -> bool {
        match self {
            Domain::Num(n) => n.is_empty(),
            Domain::Disc(d) => d.is_empty(),
        }
    }

    /// Is the domain the full carrier (no information)?
    pub fn is_full(&self) -> bool {
        match self {
            Domain::Num(n) => n.is_full(),
            Domain::Disc(DiscSet::NotIn(s)) => s.is_empty(),
            Domain::Disc(_) => false,
        }
    }

    /// Membership.
    pub fn contains(&self, v: &Value) -> bool {
        match self {
            Domain::Num(n) => v.as_num().is_some_and(|x| n.contains(x)),
            Domain::Disc(d) => d.contains(v),
        }
    }

    /// Intersection. Mixed carriers intersect conservatively: numeric
    /// values inside a `Disc` set are lifted into the numeric carrier;
    /// otherwise the intersection over-approximates to the numeric side
    /// (sound for "satisfiable unless proven empty").
    pub fn intersect(&self, other: &Domain) -> Domain {
        match (self, other) {
            (Domain::Num(a), Domain::Num(b)) => Domain::Num(a.intersect(b)),
            (Domain::Disc(a), Domain::Disc(b)) => Domain::Disc(a.intersect(b)),
            (Domain::Num(n), Domain::Disc(DiscSet::In(s)))
            | (Domain::Disc(DiscSet::In(s)), Domain::Num(n)) => {
                let pts: Vec<R64> = s
                    .iter()
                    .filter_map(|v| v.as_num())
                    .filter(|&x| n.contains(x))
                    .collect();
                Domain::Num(NumSet::points(n.integral, pts))
            }
            (Domain::Num(n), Domain::Disc(DiscSet::NotIn(s)))
            | (Domain::Disc(DiscSet::NotIn(s)), Domain::Num(n)) => {
                let mut acc = n.clone();
                for v in s {
                    if let Some(x) = v.as_num() {
                        acc = acc.intersect(&NumSet::from_cmp(
                            acc.integral,
                            crate::expr::CmpOp::Ne,
                            x,
                        ));
                    }
                }
                Domain::Num(acc)
            }
        }
    }

    /// Union (mixed carriers widen to full — conservative).
    pub fn union(&self, other: &Domain) -> Domain {
        match (self, other) {
            (Domain::Num(a), Domain::Num(b)) => Domain::Num(a.union(b)),
            (Domain::Disc(a), Domain::Disc(b)) => Domain::Disc(a.union(b)),
            _ => Domain::Disc(DiscSet::full()),
        }
    }

    /// Subset test (false on mixed carriers — conservative).
    pub fn is_subset(&self, other: &Domain) -> bool {
        match (self, other) {
            (Domain::Num(a), Domain::Num(b)) => a.is_subset(b),
            (Domain::Disc(a), Domain::Disc(b)) => a.is_subset(b),
            (a, b) => a.is_empty() || b.is_full(),
        }
    }

    /// Pointwise image under a binary value function, exact when both
    /// domains enumerate to small finite sets (`≤ cap` each). Reproduces
    /// the paper's `{10,20} × {14,24} —avg→ {12,17,22}`.
    pub fn combine_pointwise(
        &self,
        other: &Domain,
        cap: usize,
        f: impl Fn(&Value, &Value) -> Option<Value>,
    ) -> Option<Domain> {
        let enumerate = |d: &Domain| -> Option<Vec<Value>> {
            match d {
                Domain::Num(n) => {
                    let pts = n.enumerate(cap)?;
                    Some(
                        pts.into_iter()
                            .map(|r| {
                                if n.integral && r.get().fract() == 0.0 {
                                    Value::Int(r.get() as i64)
                                } else {
                                    Value::Real(r)
                                }
                            })
                            .collect(),
                    )
                }
                Domain::Disc(DiscSet::In(s)) if s.len() <= cap => Some(s.iter().cloned().collect()),
                _ => None,
            }
        };
        let xs = enumerate(self)?;
        let ys = enumerate(other)?;
        let mut out = BTreeSet::new();
        for x in &xs {
            for y in &ys {
                out.insert(f(x, y)?);
            }
        }
        Some(Domain::from_values(&out, false))
    }

    /// The numeric view, if this is a numeric domain.
    pub fn as_num(&self) -> Option<&NumSet> {
        match self {
            Domain::Num(n) => Some(n),
            _ => None,
        }
    }

    /// The discrete view, if this is a discrete domain.
    pub fn as_disc(&self) -> Option<&DiscSet> {
        match self {
            Domain::Disc(d) => Some(d),
            _ => None,
        }
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Domain::Num(n) => write!(f, "{n}"),
            Domain::Disc(d) => write!(f, "{d}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp;

    fn ge(v: f64) -> NumSet {
        NumSet::from_cmp(false, CmpOp::Ge, R64::new(v))
    }

    fn le(v: f64) -> NumSet {
        NumSet::from_cmp(false, CmpOp::Le, R64::new(v))
    }

    #[test]
    fn interval_emptiness() {
        assert!(Iv::new(Bnd::Incl(R64::new(2.0)), Bnd::Incl(R64::new(1.0))).is_none());
        assert!(Iv::new(Bnd::Excl(R64::new(1.0)), Bnd::Incl(R64::new(1.0))).is_none());
        assert!(Iv::new(Bnd::Incl(R64::new(1.0)), Bnd::Incl(R64::new(1.0))).is_some());
    }

    #[test]
    fn from_cmp_solution_sets() {
        assert!(ge(4.0).contains(R64::new(4.0)));
        assert!(!ge(4.0).contains(R64::new(3.9)));
        let ne = NumSet::from_cmp(false, CmpOp::Ne, R64::new(2.0));
        assert!(!ne.contains(R64::new(2.0)));
        assert!(ne.contains(R64::new(2.1)));
        let gt = NumSet::from_cmp(false, CmpOp::Gt, R64::new(4.0));
        assert!(!gt.contains(R64::new(4.0)));
    }

    #[test]
    fn intersect_and_empty_detection() {
        // rating >= 7 and rating <= 3 is empty
        assert!(ge(7.0).intersect(&le(3.0)).is_empty());
        // rating >= 7 and rating >= 4 is rating >= 7
        let i = ge(7.0).intersect(&ge(4.0));
        assert_eq!(i, ge(7.0));
    }

    #[test]
    fn integral_snapping() {
        // 3 < x < 4 over the integers is empty.
        let s = NumSet::from_cmp(true, CmpOp::Gt, R64::new(3.0)).intersect(&NumSet::from_cmp(
            true,
            CmpOp::Lt,
            R64::new(4.0),
        ));
        assert!(s.is_empty());
        // 2.5 <= x over the integers starts at 3.
        let s = NumSet::from_cmp(true, CmpOp::Ge, R64::new(2.5));
        assert!(s.contains(R64::new(3.0)));
        assert!(!s.contains(R64::new(2.5)));
    }

    #[test]
    fn union_merges_adjacent_integrals() {
        let a = NumSet::from_iv(true, Iv::closed(1.0, 3.0));
        let b = NumSet::from_iv(true, Iv::closed(4.0, 6.0));
        let u = a.union(&b);
        assert_eq!(u.intervals().len(), 1);
        assert!(u.contains(R64::new(4.0)));
    }

    #[test]
    fn union_merges_touching_reals() {
        let a = NumSet::from_ivs(
            false,
            vec![Iv::new(Bnd::NegInf, Bnd::Excl(R64::new(2.0))).unwrap()],
        );
        let b = NumSet::from_ivs(
            false,
            vec![Iv::new(Bnd::Incl(R64::new(2.0)), Bnd::PosInf).unwrap()],
        );
        assert!(a.union(&b).is_full());
    }

    #[test]
    fn complement_round_trip() {
        let s = ge(4.0).intersect(&le(10.0));
        let c = s.complement();
        assert!(c.contains(R64::new(3.0)));
        assert!(c.contains(R64::new(11.0)));
        assert!(!c.contains(R64::new(7.0)));
        assert_eq!(c.complement(), s);
        assert!(NumSet::full(false).complement().is_empty());
        assert!(NumSet::empty(false).complement().is_full());
    }

    #[test]
    fn subset_checks() {
        assert!(ge(7.0).is_subset(&ge(4.0)));
        assert!(!ge(4.0).is_subset(&ge(7.0)));
        let pts = NumSet::points(true, [R64::from(1), R64::from(3)]);
        assert!(pts.is_subset(&NumSet::from_iv(true, Iv::closed(1.0, 5.0))));
    }

    #[test]
    fn enumerate_finite_sets() {
        let pts = NumSet::points(true, [R64::from(10), R64::from(20)]);
        let e = pts.enumerate(10).unwrap();
        assert_eq!(e.len(), 2);
        assert!(ge(1.0).enumerate(1000).is_none());
        let range = NumSet::from_iv(true, Iv::closed(1.0, 5.0));
        assert_eq!(range.enumerate(10).unwrap().len(), 5);
        assert!(range.enumerate(3).is_none()); // over cap
    }

    #[test]
    fn paper_intro_example_avg_image() {
        // trav_reimb in {10,20} and {14,24}; avg => {12, 15, 17, 22}?
        // Paper: {12, 17, 22} — avg(10,14)=12, avg(10,24)=17=avg(20,14),
        // avg(20,24)=22.
        let a = NumSet::points(true, [R64::from(10), R64::from(20)]);
        let b = NumSet::points(true, [R64::from(14), R64::from(24)]);
        let img = a.combine_monotone(&b, true, |x, y| (x + y) / R64::new(2.0));
        let vals: Vec<f64> = img.enumerate(10).unwrap().iter().map(|r| r.get()).collect();
        assert_eq!(vals, vec![12.0, 17.0, 22.0]);
    }

    #[test]
    fn paper_acm_example_avg_interval() {
        // avg of [4, +inf) and [6, +inf) = [5, +inf)
        let img = ge(4.0).combine_monotone(&ge(6.0), false, |x, y| (x + y) / R64::new(2.0));
        assert_eq!(img, ge(5.0));
    }

    #[test]
    fn min_max_combination() {
        let a = ge(4.0).intersect(&le(8.0));
        let b = ge(6.0).intersect(&le(10.0));
        let mx = a.combine_monotone(&b, false, |x, y| x.max(y));
        assert!(mx.contains(R64::new(6.0)));
        assert!(!mx.contains(R64::new(5.0)));
        assert!(mx.contains(R64::new(10.0)));
        assert!(!mx.contains(R64::new(10.5)));
    }

    #[test]
    fn affine_image_multiply_2() {
        // Paper §4: rating >= 2 on a 1..5 scale conformed via multiply(2)
        // becomes rating >= 4.
        let s = NumSet::from_cmp(true, CmpOp::Ge, R64::new(2.0));
        let img = s.affine_image(R64::new(2.0), R64::new(0.0), true);
        assert!(img.contains(R64::new(4.0)));
        assert!(!img.contains(R64::new(3.0)));
    }

    #[test]
    fn affine_image_negative_slope_flips() {
        let s = ge(1.0); // [1, inf)
        let img = s.affine_image(R64::new(-1.0), R64::new(0.0), false);
        // (-inf, -1]
        assert!(img.contains(R64::new(-1.0)));
        assert!(!img.contains(R64::new(0.0)));
    }

    #[test]
    fn disc_set_algebra() {
        let known = DiscSet::In(
            ["ACM", "IEEE", "Springer"]
                .into_iter()
                .map(Value::str)
                .collect(),
        );
        let not_acm = DiscSet::NotIn([Value::str("ACM")].into_iter().collect());
        let i = known.intersect(&not_acm);
        assert!(i.contains(&Value::str("IEEE")));
        assert!(!i.contains(&Value::str("ACM")));
        assert!(known.is_subset(&DiscSet::full()));
        assert!(!DiscSet::full().is_subset(&known));
        let u = DiscSet::point(Value::str("X")).union(&not_acm);
        assert!(u.contains(&Value::str("X")));
        assert!(!u.contains(&Value::str("ACM")));
        assert_eq!(known.complement().complement(), known);
    }

    #[test]
    fn domain_full_of_types() {
        let d = Domain::full_of(&Type::Range(1, 5));
        assert!(d.contains(&Value::int(5)));
        assert!(!d.contains(&Value::int(6)));
        let b = Domain::full_of(&Type::Bool);
        assert!(b.contains(&Value::Bool(true)));
        let s = Domain::full_of(&Type::Str);
        assert!(s.is_full());
    }

    #[test]
    fn domain_mixed_intersection_lifts_numeric_points() {
        let num = Domain::Num(ge(5.0));
        let disc = Domain::Disc(DiscSet::In(
            [Value::int(3), Value::int(7)].into_iter().collect(),
        ));
        let i = num.intersect(&disc);
        assert!(i.contains(&Value::int(7)));
        assert!(!i.contains(&Value::int(3)));
    }

    #[test]
    fn domain_pointwise_avg_reproduces_intro() {
        let a = Domain::from_values(
            &[Value::int(10), Value::int(20)].into_iter().collect(),
            true,
        );
        let b = Domain::from_values(
            &[Value::int(14), Value::int(24)].into_iter().collect(),
            true,
        );
        let img = a
            .combine_pointwise(&b, 64, |x, y| {
                let (x, y) = (x.as_num()?, y.as_num()?);
                Some(Value::Real((x + y) / R64::new(2.0)))
            })
            .unwrap();
        assert!(img.contains(&Value::real(12.0)));
        assert!(img.contains(&Value::real(17.0)));
        assert!(img.contains(&Value::real(22.0)));
        assert!(!img.contains(&Value::real(15.0)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(ge(4.0).to_string(), "[4, +inf)");
        let pts = NumSet::points(true, [R64::from(12), R64::from(17), R64::from(22)]);
        assert_eq!(pts.to_string(), "{12, 17, 22}");
        assert_eq!(DiscSet::full().to_string(), "ANY");
    }
}
