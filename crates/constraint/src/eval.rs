//! Constraint evaluation against populated databases.
//!
//! Evaluation is three-valued ([`Truth`]): comparisons involving `Null`
//! are `Unknown`, mirroring SQL-style semantics. A constraint is
//! *violated* only when it evaluates to `False` — absent attributes do
//! not trigger violations (remote objects typically lack local-only
//! attributes after integration).

use interop_model::{Database, ModelError, Object, Value, R64};

use crate::constraint::{
    ClassConstraint, ClassConstraintBody, DbConstraint, ObjectConstraint, Quantifier,
};
use crate::expr::{AggOp, ArithOp, CmpOp, Expr, Formula, Path};

/// Three-valued logic outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Truth {
    /// Definitely true.
    True,
    /// Definitely false.
    False,
    /// Unknown (some input was `Null`).
    Unknown,
}

impl Truth {
    /// From a two-valued bool.
    pub fn from_bool(b: bool) -> Truth {
        if b {
            Truth::True
        } else {
            Truth::False
        }
    }

    /// Three-valued conjunction.
    pub fn and(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (False, _) | (_, False) => False,
            (True, True) => True,
            _ => Unknown,
        }
    }

    /// Three-valued disjunction.
    pub fn or(self, other: Truth) -> Truth {
        use Truth::*;
        match (self, other) {
            (True, _) | (_, True) => True,
            (False, False) => False,
            _ => Unknown,
        }
    }

    /// Three-valued negation.
    #[allow(clippy::should_implement_trait)] // three-valued, not bool Not
    pub fn not(self) -> Truth {
        match self {
            Truth::True => Truth::False,
            Truth::False => Truth::True,
            Truth::Unknown => Truth::Unknown,
        }
    }

    /// Is the constraint *not violated* (true or unknown)?
    pub fn holds(self) -> bool {
        self != Truth::False
    }
}

/// Evaluates an expression on `obj` within `db` (paths may navigate
/// references stored in `db`).
pub fn eval_expr(db: &Database, obj: &Object, e: &Expr) -> Result<Value, ModelError> {
    match e {
        Expr::Const(v) => Ok(v.clone()),
        Expr::Attr(p) => eval_path(db, obj, p),
        Expr::Neg(inner) => {
            let v = eval_expr(db, obj, inner)?;
            Ok(match v.as_num() {
                Some(n) => Value::Real(-n),
                None => Value::Null,
            })
        }
        Expr::Bin(a, op, b) => {
            let (va, vb) = (eval_expr(db, obj, a)?, eval_expr(db, obj, b)?);
            Ok(apply_arith(&va, *op, &vb))
        }
    }
}

/// Evaluates a path; the empty path yields the object reference itself.
pub fn eval_path(db: &Database, obj: &Object, p: &Path) -> Result<Value, ModelError> {
    if p.is_this() {
        return Ok(Value::Ref(obj.id));
    }
    db.navigate(obj, &p.0)
}

/// Borrowing variant of [`eval_path`]: attribute paths return a reference
/// into the object graph (no clone); only the empty `this` path must
/// materialise an owned `Ref` value. Hot joins in the merge phase hash
/// and compare through this without allocating.
pub fn eval_path_ref<'a>(
    db: &'a Database,
    obj: &'a Object,
    p: &Path,
) -> Result<std::borrow::Cow<'a, Value>, ModelError> {
    if p.is_this() {
        return Ok(std::borrow::Cow::Owned(Value::Ref(obj.id)));
    }
    db.navigate_ref(obj, &p.0).map(std::borrow::Cow::Borrowed)
}

fn apply_arith(a: &Value, op: ArithOp, b: &Value) -> Value {
    match (a.as_num(), b.as_num()) {
        (Some(x), Some(y)) => {
            let r = match op {
                ArithOp::Add => x + y,
                ArithOp::Sub => x - y,
                ArithOp::Mul => x * y,
                ArithOp::Div => {
                    if y.get() == 0.0 {
                        return Value::Null;
                    }
                    x / y
                }
            };
            Value::Real(r)
        }
        _ => Value::Null,
    }
}

/// Evaluates a formula on `obj` within `db`.
pub fn eval_formula(db: &Database, obj: &Object, f: &Formula) -> Result<Truth, ModelError> {
    match f {
        Formula::True => Ok(Truth::True),
        Formula::False => Ok(Truth::False),
        Formula::Cmp(a, op, b) => {
            let (va, vb) = (eval_expr(db, obj, a)?, eval_expr(db, obj, b)?);
            if va.is_null() || vb.is_null() {
                return Ok(Truth::Unknown);
            }
            match va.compare(&vb) {
                Some(ord) => Ok(Truth::from_bool(op.test(ord))),
                None => Ok(Truth::from_bool(matches!(op, CmpOp::Ne))),
            }
        }
        Formula::In(e, set) => {
            let v = eval_expr(db, obj, e)?;
            if v.is_null() {
                return Ok(Truth::Unknown);
            }
            Ok(Truth::from_bool(set.iter().any(|s| s.sem_eq(&v))))
        }
        Formula::Contains(e, needle) => {
            let v = eval_expr(db, obj, e)?;
            match v {
                Value::Null => Ok(Truth::Unknown),
                Value::Str(s) => Ok(Truth::from_bool(s.contains(needle.as_str()))),
                _ => Ok(Truth::False),
            }
        }
        Formula::Not(inner) => Ok(eval_formula(db, obj, inner)?.not()),
        Formula::And(fs) => {
            let mut acc = Truth::True;
            for g in fs {
                acc = acc.and(eval_formula(db, obj, g)?);
                if acc == Truth::False {
                    break;
                }
            }
            Ok(acc)
        }
        Formula::Or(fs) => {
            let mut acc = Truth::False;
            for g in fs {
                acc = acc.or(eval_formula(db, obj, g)?);
                if acc == Truth::True {
                    break;
                }
            }
            Ok(acc)
        }
        Formula::Implies(a, b) => {
            let ta = eval_formula(db, obj, a)?;
            Ok(ta.not().or(eval_formula(db, obj, b)?))
        }
    }
}

/// Checks an object constraint against every object in the class
/// extension; returns the ids of violating objects.
pub fn check_object_constraint(
    db: &Database,
    c: &ObjectConstraint,
) -> Result<Vec<interop_model::ObjectId>, ModelError> {
    let mut bad = Vec::new();
    for id in db.extension(&c.class) {
        let obj = db.object_req(id)?;
        if !eval_formula(db, obj, &c.formula)?.holds() {
            bad.push(id);
        }
    }
    Ok(bad)
}

/// Convenience: does every object constraint in `catalog` hold on `db`?
/// (Navigation errors count as violations.)
pub fn check_all_object(db: &Database, catalog: &crate::constraint::Catalog) -> bool {
    catalog
        .all_object()
        .all(|oc| matches!(check_object_constraint(db, oc), Ok(v) if v.is_empty()))
}

/// Checks a class constraint against the class extension. Returns `True`
/// when satisfied, `False` when violated, `Unknown` when aggregation hit
/// nulls only.
pub fn check_class_constraint(db: &Database, c: &ClassConstraint) -> Result<Truth, ModelError> {
    match &c.body {
        ClassConstraintBody::Key(attrs) => {
            let mut seen = std::collections::BTreeSet::new();
            for id in db.extension(&c.class) {
                let obj = db.object_req(id)?;
                let tuple: Vec<Value> = attrs.iter().map(|a| obj.get(a).clone()).collect();
                if tuple.iter().any(Value::is_null) {
                    continue;
                }
                if !seen.insert(tuple) {
                    return Ok(Truth::False);
                }
            }
            Ok(Truth::True)
        }
        ClassConstraintBody::Aggregate {
            op,
            path,
            cmp,
            bound,
        } => {
            let mut nums: Vec<R64> = Vec::new();
            let mut count = 0usize;
            for id in db.extension(&c.class) {
                let obj = db.object_req(id)?;
                count += 1;
                let v = eval_path(db, obj, path)?;
                if let Some(n) = v.as_num() {
                    nums.push(n);
                }
            }
            let agg = aggregate(*op, &nums, count);
            match agg {
                None => Ok(Truth::Unknown),
                Some(a) => {
                    let bv = match bound.as_num() {
                        Some(b) => b,
                        None => return Ok(Truth::Unknown),
                    };
                    Ok(Truth::from_bool(cmp.test(a.cmp(&bv))))
                }
            }
        }
    }
}

/// Computes an aggregate over numeric samples. `count` is the extension
/// size (used by `count` even when values are missing).
pub fn aggregate(op: AggOp, nums: &[R64], count: usize) -> Option<R64> {
    match op {
        AggOp::Count => Some(R64::from(count as i64)),
        AggOp::Sum => Some(nums.iter().copied().fold(R64::new(0.0), |a, b| a + b)),
        AggOp::Avg => {
            if nums.is_empty() {
                None
            } else {
                let sum = nums.iter().copied().fold(R64::new(0.0), |a, b| a + b);
                Some(sum / R64::from(nums.len() as i64))
            }
        }
        AggOp::Min => nums.iter().copied().min(),
        AggOp::Max => nums.iter().copied().max(),
    }
}

/// Checks a database constraint: for every outer object, the quantified
/// inner condition must hold.
pub fn check_db_constraint(db: &Database, c: &DbConstraint) -> Result<Truth, ModelError> {
    let inner_ids = db.extension(&c.inner_class);
    for oid in db.extension(&c.outer_class) {
        let outer = db.object_req(oid)?;
        let mut any = false;
        let mut all = true;
        for iid in &inner_ids {
            let inner = db.object_req(*iid)?;
            let mut matches = true;
            for atom in &c.atoms {
                let vo = eval_path(db, outer, &atom.outer)?;
                let vi = eval_path(db, inner, &atom.inner)?;
                let ok = match vi.compare(&vo) {
                    Some(ord) => atom.op.test(ord),
                    None => matches!(atom.op, CmpOp::Ne),
                };
                if !ok {
                    matches = false;
                    break;
                }
            }
            any |= matches;
            all &= matches;
        }
        let ok = match c.quant {
            Quantifier::Exists => any,
            Quantifier::Forall => all,
        };
        if !ok {
            return Ok(Truth::False);
        }
    }
    Ok(Truth::True)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraint::{ConstraintId, PairAtom};
    use interop_model::{ClassDef, ClassName, DbName, Schema, Type};

    fn db() -> Database {
        let schema = Schema::new(
            "Bookseller",
            vec![
                ClassDef::new("Publisher")
                    .attr("name", Type::Str)
                    .attr("location", Type::Str),
                ClassDef::new("Item")
                    .attr("title", Type::Str)
                    .attr("isbn", Type::Str)
                    .attr("publisher", Type::Ref(ClassName::new("Publisher")))
                    .attr("shopprice", Type::Real)
                    .attr("libprice", Type::Real),
                ClassDef::new("Proceedings")
                    .isa("Item")
                    .attr("ref?", Type::Bool)
                    .attr("rating", Type::Range(1, 10)),
            ],
        )
        .unwrap();
        Database::new(schema, 2)
    }

    fn cid(label: &str) -> ConstraintId {
        ConstraintId::new(&DbName::new("Bookseller"), &ClassName::new("Item"), label)
    }

    #[test]
    fn truth_table() {
        use Truth::*;
        assert_eq!(True.and(Unknown), Unknown);
        assert_eq!(False.and(Unknown), False);
        assert_eq!(True.or(Unknown), True);
        assert_eq!(False.or(Unknown), Unknown);
        assert_eq!(Unknown.not(), Unknown);
        assert!(Unknown.holds());
        assert!(!False.holds());
    }

    #[test]
    fn cmp_with_ref_navigation() {
        let mut d = db();
        let p = d
            .create("Publisher", vec![("name", "IEEE".into())])
            .unwrap();
        let i = d
            .create(
                "Proceedings",
                vec![("publisher", Value::Ref(p)), ("ref?", true.into())],
            )
            .unwrap();
        let obj = d.object(i).unwrap().clone();
        // Figure 1 oc1 of Proceedings: publisher.name='IEEE' implies ref?=true
        let f = Formula::cmp("publisher.name", CmpOp::Eq, "IEEE").implies(Formula::cmp(
            "ref?",
            CmpOp::Eq,
            true,
        ));
        assert_eq!(eval_formula(&d, &obj, &f).unwrap(), Truth::True);
    }

    #[test]
    fn implication_violated() {
        let mut d = db();
        let p = d
            .create("Publisher", vec![("name", "IEEE".into())])
            .unwrap();
        let i = d
            .create(
                "Proceedings",
                vec![("publisher", Value::Ref(p)), ("ref?", false.into())],
            )
            .unwrap();
        let obj = d.object(i).unwrap().clone();
        let f = Formula::cmp("publisher.name", CmpOp::Eq, "IEEE").implies(Formula::cmp(
            "ref?",
            CmpOp::Eq,
            true,
        ));
        assert_eq!(eval_formula(&d, &obj, &f).unwrap(), Truth::False);
    }

    #[test]
    fn null_yields_unknown_and_holds() {
        let mut d = db();
        let i = d.create("Item", vec![]).unwrap();
        let obj = d.object(i).unwrap().clone();
        let f = Formula::cmp("libprice", CmpOp::Le, 10.0);
        assert_eq!(eval_formula(&d, &obj, &f).unwrap(), Truth::Unknown);
        assert!(eval_formula(&d, &obj, &f).unwrap().holds());
    }

    #[test]
    fn in_and_contains() {
        let mut d = db();
        let i = d
            .create("Item", vec![("title", "Proceedings of VLDB".into())])
            .unwrap();
        let obj = d.object(i).unwrap().clone();
        assert_eq!(
            eval_formula(
                &d,
                &obj,
                &Formula::Contains(Expr::attr("title"), "Proceed".into())
            )
            .unwrap(),
            Truth::True
        );
        assert_eq!(
            eval_formula(
                &d,
                &obj,
                &Formula::isin("title", [Value::str("Proceedings of VLDB")])
            )
            .unwrap(),
            Truth::True
        );
        assert_eq!(
            eval_formula(&d, &obj, &Formula::isin("title", [Value::str("Other")])).unwrap(),
            Truth::False
        );
    }

    #[test]
    fn arithmetic_in_constraints() {
        let mut d = db();
        let i = d
            .create(
                "Item",
                vec![("shopprice", 29.0.into()), ("libprice", 26.0.into())],
            )
            .unwrap();
        let obj = d.object(i).unwrap().clone();
        // libprice <= shopprice  (Figure 1 oc1 of Item)
        let f = Formula::Cmp(Expr::attr("libprice"), CmpOp::Le, Expr::attr("shopprice"));
        assert_eq!(eval_formula(&d, &obj, &f).unwrap(), Truth::True);
        // libprice * 2 > shopprice
        let g = Formula::Cmp(
            Expr::Bin(
                Box::new(Expr::attr("libprice")),
                ArithOp::Mul,
                Box::new(Expr::val(2.0)),
            ),
            CmpOp::Gt,
            Expr::attr("shopprice"),
        );
        assert_eq!(eval_formula(&d, &obj, &g).unwrap(), Truth::True);
        // Division by zero is Unknown.
        let z = Formula::Cmp(
            Expr::Bin(
                Box::new(Expr::attr("libprice")),
                ArithOp::Div,
                Box::new(Expr::val(0.0)),
            ),
            CmpOp::Gt,
            Expr::val(1.0),
        );
        assert_eq!(eval_formula(&d, &obj, &z).unwrap(), Truth::Unknown);
    }

    #[test]
    fn object_constraint_check_collects_violators() {
        let mut d = db();
        d.create(
            "Item",
            vec![("libprice", 26.0.into()), ("shopprice", 29.0.into())],
        )
        .unwrap();
        let bad = d
            .create(
                "Item",
                vec![("libprice", 35.0.into()), ("shopprice", 29.0.into())],
            )
            .unwrap();
        let c = ObjectConstraint::new(
            cid("oc1"),
            "Item",
            Formula::Cmp(Expr::attr("libprice"), CmpOp::Le, Expr::attr("shopprice")),
        );
        let viol = check_object_constraint(&d, &c).unwrap();
        assert_eq!(viol, vec![bad]);
    }

    #[test]
    fn object_constraint_applies_to_subclasses() {
        let mut d = db();
        let bad = d
            .create(
                "Proceedings",
                vec![("libprice", 35.0.into()), ("shopprice", 29.0.into())],
            )
            .unwrap();
        let c = ObjectConstraint::new(
            cid("oc1"),
            "Item",
            Formula::Cmp(Expr::attr("libprice"), CmpOp::Le, Expr::attr("shopprice")),
        );
        assert_eq!(check_object_constraint(&d, &c).unwrap(), vec![bad]);
    }

    #[test]
    fn key_constraint_detects_duplicates() {
        let mut d = db();
        d.create("Item", vec![("isbn", "X".into())]).unwrap();
        d.create("Item", vec![("isbn", "Y".into())]).unwrap();
        let c = ClassConstraint::key(cid("cc1"), "Item", vec!["isbn"]);
        assert_eq!(check_class_constraint(&d, &c).unwrap(), Truth::True);
        d.create("Item", vec![("isbn", "X".into())]).unwrap();
        assert_eq!(check_class_constraint(&d, &c).unwrap(), Truth::False);
    }

    #[test]
    fn aggregate_constraints() {
        let mut d = db();
        d.create("Item", vec![("libprice", 10.0.into())]).unwrap();
        d.create("Item", vec![("libprice", 20.0.into())]).unwrap();
        let sum = ClassConstraint::new(
            cid("cc2"),
            "Item",
            ClassConstraintBody::Aggregate {
                op: AggOp::Sum,
                path: Path::parse("libprice"),
                cmp: CmpOp::Lt,
                bound: Value::real(100.0),
            },
        );
        assert_eq!(check_class_constraint(&d, &sum).unwrap(), Truth::True);
        let avg = ClassConstraint::new(
            cid("cc3"),
            "Item",
            ClassConstraintBody::Aggregate {
                op: AggOp::Avg,
                path: Path::parse("libprice"),
                cmp: CmpOp::Lt,
                bound: Value::real(12.0),
            },
        );
        assert_eq!(check_class_constraint(&d, &avg).unwrap(), Truth::False);
    }

    #[test]
    fn aggregate_helpers() {
        let xs = [R64::new(1.0), R64::new(2.0), R64::new(3.0)];
        assert_eq!(aggregate(AggOp::Sum, &xs, 3).unwrap().get(), 6.0);
        assert_eq!(aggregate(AggOp::Avg, &xs, 3).unwrap().get(), 2.0);
        assert_eq!(aggregate(AggOp::Min, &xs, 3).unwrap().get(), 1.0);
        assert_eq!(aggregate(AggOp::Max, &xs, 3).unwrap().get(), 3.0);
        assert_eq!(aggregate(AggOp::Count, &[], 5).unwrap().get(), 5.0);
        assert!(aggregate(AggOp::Avg, &[], 0).is_none());
    }

    #[test]
    fn db_constraint_forall_exists() {
        let mut d = db();
        let p = d.create("Publisher", vec![("name", "ACM".into())]).unwrap();
        // dbl: forall p in Publisher exists i in Item | i.publisher = p
        let c = DbConstraint {
            id: ConstraintId::db_level(&DbName::new("Bookseller"), "dbl"),
            outer_class: ClassName::new("Publisher"),
            quant: Quantifier::Exists,
            inner_class: ClassName::new("Item"),
            atoms: vec![PairAtom {
                outer: Path::this(),
                op: CmpOp::Eq,
                inner: Path::parse("publisher"),
            }],
            status: crate::constraint::Status::Subjective,
        };
        // No items yet: violated.
        assert_eq!(check_db_constraint(&d, &c).unwrap(), Truth::False);
        d.create("Item", vec![("publisher", Value::Ref(p))])
            .unwrap();
        assert_eq!(check_db_constraint(&d, &c).unwrap(), Truth::True);
    }
}
