//! Expressions and first-order formulas over a single object.
//!
//! The fragment is the one TM constraints in the paper actually use:
//! attribute paths (possibly navigating object references, e.g.
//! `publisher.name`), constants, arithmetic, comparisons, finite-set
//! membership (`trav_reimb in {10, 20}`), substring tests
//! (`contains(title, 'Proceed')`), and the boolean connectives including
//! implication (`ref? = true implies rating >= 7`).

use std::collections::BTreeSet;
use std::fmt;

use interop_model::{AttrName, Value};

/// An attribute path on the constrained object: `publisher.name` is
/// `Path(["publisher", "name"])`. The empty path denotes the object
/// itself (used by database constraints comparing references).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Path(pub Vec<AttrName>);

impl Path {
    /// Builds a path from dotted text: `"publisher.name"`.
    pub fn parse(s: &str) -> Self {
        if s.is_empty() {
            return Path(Vec::new());
        }
        Path(s.split('.').map(AttrName::new).collect())
    }

    /// Single-attribute path.
    pub fn attr(a: impl Into<AttrName>) -> Self {
        Path(vec![a.into()])
    }

    /// The empty path (the object itself).
    pub fn this() -> Self {
        Path(Vec::new())
    }

    /// First segment, if any.
    pub fn head(&self) -> Option<&AttrName> {
        self.0.first()
    }

    /// True for the empty path.
    pub fn is_this(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of segments.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the path has no segments.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Returns a copy with the first segment replaced (attribute
    /// substitution during conformation).
    pub fn with_head(&self, head: AttrName) -> Self {
        let mut segs = self.0.clone();
        if segs.is_empty() {
            segs.push(head);
        } else {
            segs[0] = head;
        }
        Path(segs)
    }
}

impl fmt::Display for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_empty() {
            return write!(f, "self");
        }
        for (i, a) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Path {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Path({self})")
    }
}

/// Binary arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl fmt::Display for ArithOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
        })
    }
}

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The negated operator (`<` ↦ `>=`, ...).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// The operator with operands swapped (`<` ↦ `>`, `=` ↦ `=`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
            other => other,
        }
    }

    /// Applies the comparison to an [`std::cmp::Ordering`].
    pub fn test(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// Aggregate operators used by class constraints
/// (`(sum (collect x for x in self) over ourprice) < MAX`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AggOp {
    /// `sum`
    Sum,
    /// `avg`
    Avg,
    /// `count`
    Count,
    /// `min`
    Min,
    /// `max`
    Max,
}

impl fmt::Display for AggOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AggOp::Sum => "sum",
            AggOp::Avg => "avg",
            AggOp::Count => "count",
            AggOp::Min => "min",
            AggOp::Max => "max",
        })
    }
}

/// A scalar expression over one object.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Expr {
    /// A literal constant.
    Const(Value),
    /// An attribute path on the constrained object.
    Attr(Path),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Binary arithmetic.
    Bin(Box<Expr>, ArithOp, Box<Expr>),
}

impl Expr {
    /// Constant shorthand.
    pub fn val(v: impl Into<Value>) -> Expr {
        Expr::Const(v.into())
    }

    /// Attribute shorthand from dotted text.
    pub fn attr(p: &str) -> Expr {
        Expr::Attr(Path::parse(p))
    }

    /// All attribute paths mentioned by the expression.
    pub fn paths(&self, out: &mut BTreeSet<Path>) {
        match self {
            Expr::Const(_) => {}
            Expr::Attr(p) => {
                out.insert(p.clone());
            }
            Expr::Neg(e) => e.paths(out),
            Expr::Bin(a, _, b) => {
                a.paths(out);
                b.paths(out);
            }
        }
    }

    /// Is the expression a constant?
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Expr::Const(v) => Some(v),
            _ => None,
        }
    }

    /// Is the expression a bare attribute path?
    pub fn as_path(&self) -> Option<&Path> {
        match self {
            Expr::Attr(p) => Some(p),
            _ => None,
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Attr(p) => write!(f, "{p}"),
            Expr::Neg(e) => write!(f, "-({e})"),
            Expr::Bin(a, op, b) => write!(f, "({a} {op} {b})"),
        }
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A boolean formula over one object — the body of an object constraint or
/// of an intraobject comparison-rule condition.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Formula {
    /// Constant truth.
    True,
    /// Constant falsity.
    False,
    /// Comparison between two expressions.
    Cmp(Expr, CmpOp, Expr),
    /// Finite-set membership: `trav_reimb in {10, 20}`.
    In(Expr, BTreeSet<Value>),
    /// Substring test: `contains(title, 'Proceed')`.
    Contains(Expr, String),
    /// Negation.
    Not(Box<Formula>),
    /// N-ary conjunction.
    And(Vec<Formula>),
    /// N-ary disjunction.
    Or(Vec<Formula>),
    /// Implication (kept explicit: the paper's conditional constraints are
    /// first-class in derivation, §5.2.1).
    Implies(Box<Formula>, Box<Formula>),
}

impl Formula {
    /// `path op const` shorthand.
    pub fn cmp(path: &str, op: CmpOp, v: impl Into<Value>) -> Formula {
        Formula::Cmp(Expr::attr(path), op, Expr::val(v))
    }

    /// `path in {values}` shorthand.
    pub fn isin<I, V>(path: &str, vals: I) -> Formula
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Formula::In(Expr::attr(path), vals.into_iter().map(Into::into).collect())
    }

    /// Conjunction of two formulas, flattening nested `And`s.
    pub fn and(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::True, f) | (f, Formula::True) => f,
            (Formula::False, _) | (_, Formula::False) => Formula::False,
            (Formula::And(mut a), Formula::And(b)) => {
                a.extend(b);
                Formula::And(a)
            }
            (Formula::And(mut a), f) => {
                a.push(f);
                Formula::And(a)
            }
            (f, Formula::And(mut b)) => {
                b.insert(0, f);
                Formula::And(b)
            }
            (a, b) => Formula::And(vec![a, b]),
        }
    }

    /// Disjunction of two formulas, flattening nested `Or`s.
    pub fn or(self, other: Formula) -> Formula {
        match (self, other) {
            (Formula::False, f) | (f, Formula::False) => f,
            (Formula::True, _) | (_, Formula::True) => Formula::True,
            (Formula::Or(mut a), Formula::Or(b)) => {
                a.extend(b);
                Formula::Or(a)
            }
            (Formula::Or(mut a), f) => {
                a.push(f);
                Formula::Or(a)
            }
            (f, Formula::Or(mut b)) => {
                b.insert(0, f);
                Formula::Or(b)
            }
            (a, b) => Formula::Or(vec![a, b]),
        }
    }

    /// Logical negation (not simplified — see [`crate::normalize::nnf`]).
    pub fn negate(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// `guard implies body`.
    pub fn implies(self, body: Formula) -> Formula {
        Formula::Implies(Box::new(self), Box::new(body))
    }

    /// Conjunction of many formulas.
    pub fn conj(fs: impl IntoIterator<Item = Formula>) -> Formula {
        fs.into_iter().fold(Formula::True, Formula::and)
    }

    /// All attribute paths mentioned by the formula.
    pub fn paths(&self) -> BTreeSet<Path> {
        let mut out = BTreeSet::new();
        self.collect_paths(&mut out);
        out
    }

    fn collect_paths(&self, out: &mut BTreeSet<Path>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Cmp(a, _, b) => {
                a.paths(out);
                b.paths(out);
            }
            Formula::In(e, _) | Formula::Contains(e, _) => e.paths(out),
            Formula::Not(f) => f.collect_paths(out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_paths(out);
                }
            }
            Formula::Implies(a, b) => {
                a.collect_paths(out);
                b.collect_paths(out);
            }
        }
    }

    /// Applies `f` to every expression in the formula (bottom-up rewrite
    /// helper used by conformation's attribute substitution and domain
    /// conversion).
    pub fn map_exprs(&self, f: &impl Fn(&Expr) -> Expr) -> Formula {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Cmp(a, op, b) => Formula::Cmp(f(a), *op, f(b)),
            Formula::In(e, set) => Formula::In(f(e), set.clone()),
            Formula::Contains(e, s) => Formula::Contains(f(e), s.clone()),
            Formula::Not(inner) => Formula::Not(Box::new(inner.map_exprs(f))),
            Formula::And(fs) => Formula::And(fs.iter().map(|x| x.map_exprs(f)).collect()),
            Formula::Or(fs) => Formula::Or(fs.iter().map(|x| x.map_exprs(f)).collect()),
            Formula::Implies(a, b) => {
                Formula::Implies(Box::new(a.map_exprs(f)), Box::new(b.map_exprs(f)))
            }
        }
    }
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Cmp(a, op, b) => write!(f, "{a} {op} {b}"),
            Formula::In(e, set) => {
                write!(f, "{e} in {{")?;
                for (i, v) in set.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Formula::Contains(e, s) => write!(f, "contains({e}, '{s}')"),
            Formula::Not(inner) => write!(f, "not ({inner})"),
            Formula::And(fs) => join(f, fs, " and "),
            Formula::Or(fs) => join(f, fs, " or "),
            Formula::Implies(a, b) => write!(f, "{a} implies {b}"),
        }
    }
}

impl fmt::Debug for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

fn join(f: &mut fmt::Formatter<'_>, fs: &[Formula], sep: &str) -> fmt::Result {
    if fs.is_empty() {
        return write!(f, "true");
    }
    for (i, item) in fs.iter().enumerate() {
        if i > 0 {
            f.write_str(sep)?;
        }
        let parens = matches!(
            item,
            Formula::And(_) | Formula::Or(_) | Formula::Implies(..)
        );
        if parens {
            write!(f, "({item})")?;
        } else {
            write!(f, "{item}")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_parse_display() {
        let p = Path::parse("publisher.name");
        assert_eq!(p.len(), 2);
        assert_eq!(p.to_string(), "publisher.name");
        assert_eq!(Path::this().to_string(), "self");
        assert!(Path::parse("").is_this());
    }

    #[test]
    fn path_with_head() {
        let p = Path::parse("ourprice");
        assert_eq!(
            p.with_head(AttrName::new("libprice")).to_string(),
            "libprice"
        );
        let q = Path::parse("publisher.name").with_head(AttrName::new("pub"));
        assert_eq!(q.to_string(), "pub.name");
    }

    #[test]
    fn cmp_op_negate_flip_test() {
        assert_eq!(CmpOp::Lt.negate(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.negate(), CmpOp::Ne);
        assert_eq!(CmpOp::Le.flip(), CmpOp::Ge);
        assert_eq!(CmpOp::Eq.flip(), CmpOp::Eq);
        use std::cmp::Ordering::*;
        assert!(CmpOp::Le.test(Equal));
        assert!(CmpOp::Le.test(Less));
        assert!(!CmpOp::Le.test(Greater));
        assert!(CmpOp::Ne.test(Less));
    }

    #[test]
    fn formula_display_matches_paper_style() {
        let f = Formula::cmp("ourprice", CmpOp::Le, 100.0)
            .and(Formula::isin("trav_reimb", [10i64, 20]));
        assert_eq!(f.to_string(), "ourprice <= 100 and trav_reimb in {10, 20}");
        let g = Formula::cmp("publisher.name", CmpOp::Eq, "IEEE").implies(Formula::cmp(
            "ref?",
            CmpOp::Eq,
            true,
        ));
        assert_eq!(g.to_string(), "publisher.name = 'IEEE' implies ref? = true");
    }

    #[test]
    fn and_or_flatten_and_absorb() {
        let a = Formula::cmp("x", CmpOp::Eq, 1i64);
        let b = Formula::cmp("y", CmpOp::Eq, 2i64);
        let c = Formula::cmp("z", CmpOp::Eq, 3i64);
        match a.clone().and(b.clone()).and(c.clone()) {
            Formula::And(fs) => assert_eq!(fs.len(), 3),
            other => panic!("expected flat And, got {other}"),
        }
        assert_eq!(a.clone().and(Formula::True), a);
        assert_eq!(a.clone().and(Formula::False), Formula::False);
        assert_eq!(a.clone().or(Formula::False), a);
        assert_eq!(a.clone().or(Formula::True), Formula::True);
        match a.clone().or(b).or(c) {
            Formula::Or(fs) => assert_eq!(fs.len(), 3),
            other => panic!("expected flat Or, got {other}"),
        }
    }

    #[test]
    fn paths_collected() {
        let f = Formula::cmp("publisher.name", CmpOp::Eq, "ACM").implies(Formula::cmp(
            "rating",
            CmpOp::Ge,
            6i64,
        ));
        let ps = f.paths();
        assert!(ps.contains(&Path::parse("publisher.name")));
        assert!(ps.contains(&Path::parse("rating")));
        assert_eq!(ps.len(), 2);
    }

    #[test]
    fn map_exprs_rewrites_attrs() {
        let f = Formula::cmp("ourprice", CmpOp::Le, 10.0);
        let g = f.map_exprs(&|e| match e {
            Expr::Attr(p) if p == &Path::parse("ourprice") => Expr::attr("libprice"),
            other => other.clone(),
        });
        assert_eq!(g.to_string(), "libprice <= 10");
    }

    #[test]
    fn conj_of_empty_is_true() {
        assert_eq!(Formula::conj(Vec::new()), Formula::True);
    }
}
