//! Property-based tests for the solver: soundness of satisfiability and
//! implication against brute-force evaluation over sampled assignments,
//! and semantic preservation of the normalisation passes.

use std::collections::BTreeMap;

use interop_constraint::normalize::{nnf, simplify, split_conjuncts};
use interop_constraint::solve::{implies, is_satisfiable, project, TypeEnv};
use interop_constraint::{CmpOp, Expr, Formula, Path};
use interop_model::{Type, Value};
use proptest::prelude::*;

/// Three attributes: x, y (ints 0..=9 via range type), flag (bool).
fn env() -> TypeEnv {
    TypeEnv::new()
        .with("x", Type::Range(0, 9))
        .with("y", Type::Range(0, 9))
        .with("flag", Type::Bool)
}

type Assignment = BTreeMap<&'static str, Value>;

fn assignments() -> Vec<Assignment> {
    let mut out = Vec::new();
    for x in 0..10i64 {
        for y in [0i64, 3, 7, 9] {
            for flag in [false, true] {
                let mut m = BTreeMap::new();
                m.insert("x", Value::Int(x));
                m.insert("y", Value::Int(y));
                m.insert("flag", Value::Bool(flag));
                out.push(m);
            }
        }
    }
    out
}

/// Ground evaluation of the fragment used in this suite.
fn eval(f: &Formula, a: &Assignment) -> bool {
    match f {
        Formula::True => true,
        Formula::False => false,
        Formula::Cmp(Expr::Attr(p), op, Expr::Const(v)) => {
            let lhs = &a[p.to_string().as_str()];
            lhs.compare(v).map(|o| op.test(o)).unwrap_or(false)
        }
        Formula::Cmp(Expr::Attr(p), op, Expr::Attr(q)) => {
            let lhs = &a[p.to_string().as_str()];
            let rhs = &a[q.to_string().as_str()];
            lhs.compare(rhs).map(|o| op.test(o)).unwrap_or(false)
        }
        Formula::In(Expr::Attr(p), set) => set.iter().any(|v| v.sem_eq(&a[p.to_string().as_str()])),
        Formula::Not(inner) => !eval(inner, a),
        Formula::And(fs) => fs.iter().all(|g| eval(g, a)),
        Formula::Or(fs) => fs.iter().any(|g| eval(g, a)),
        Formula::Implies(l, r) => !eval(l, a) || eval(r, a),
        other => panic!("unsupported formula in ground eval: {other}"),
    }
}

fn arb_atom() -> impl Strategy<Value = Formula> {
    let var = prop::sample::select(vec!["x", "y"]);
    let op = prop::sample::select(vec![
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ]);
    prop_oneof![
        (var.clone(), op.clone(), 0i64..10).prop_map(|(v, o, c)| Formula::cmp(v, o, c)),
        (op, prop::sample::select(vec![("x", "y"), ("y", "x")]))
            .prop_map(|(o, (a, b))| Formula::Cmp(Expr::attr(a), o, Expr::attr(b))),
        prop::collection::btree_set(0i64..10, 1..4).prop_map(|s| Formula::isin("x", s)),
        prop::sample::select(vec![true, false]).prop_map(|b| Formula::cmp("flag", CmpOp::Eq, b)),
    ]
}

fn arb_formula() -> impl Strategy<Value = Formula> {
    arb_atom().prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(Formula::And),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Formula::Or),
            inner.clone().prop_map(|f| Formula::Not(Box::new(f))),
            (inner.clone(), inner).prop_map(|(a, b)| a.implies(b)),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// If the solver says UNSAT, no assignment satisfies the formula.
    #[test]
    fn unsat_is_sound(f in arb_formula()) {
        let e = env();
        if !is_satisfiable(&f, &e) {
            for a in assignments() {
                prop_assert!(!eval(&f, &a), "solver claimed unsat but {:?} satisfies {}", a, f);
            }
        }
    }

    /// If the solver proves `phi ⊨ psi`, every model of phi models psi.
    #[test]
    fn implication_is_sound(phi in arb_formula(), psi in arb_formula()) {
        let e = env();
        if implies(&phi, &psi, &e) {
            for a in assignments() {
                if eval(&phi, &a) {
                    prop_assert!(eval(&psi, &a), "{:?}: {} does not imply {}", a, phi, psi);
                }
            }
        }
    }

    /// NNF preserves ground semantics.
    #[test]
    fn nnf_preserves_semantics(f in arb_formula()) {
        let n = nnf(&f);
        for a in assignments() {
            prop_assert_eq!(eval(&f, &a), eval(&n, &a), "nnf changed {} at {:?}", f, a);
        }
    }

    /// Simplification preserves ground semantics.
    #[test]
    fn simplify_preserves_semantics(f in arb_formula()) {
        let s = simplify(&f);
        for a in assignments() {
            prop_assert_eq!(eval(&f, &a), eval(&s, &a), "simplify changed {} at {:?}", f, a);
        }
    }

    /// The conjunction of split parts equals the original.
    #[test]
    fn split_conjuncts_preserves_semantics(f in arb_formula()) {
        let parts = split_conjuncts(&f);
        let rebuilt = Formula::conj(parts);
        for a in assignments() {
            prop_assert_eq!(eval(&f, &a), eval(&rebuilt, &a));
        }
    }

    /// Projection over-approximates: every model's value of x lies in the
    /// projected domain.
    #[test]
    fn projection_is_an_over_approximation(f in arb_formula()) {
        let e = env();
        let dom = project(&f, &Path::parse("x"), &e);
        for a in assignments() {
            if eval(&f, &a) {
                prop_assert!(
                    dom.contains(&a["x"]),
                    "x = {} satisfies {} but escapes the projection {}",
                    &a["x"], f, dom
                );
            }
        }
    }

    /// Satisfiable-by-witness formulas are never reported unsat
    /// (completeness on the ground fragment).
    #[test]
    fn witnessed_sat_never_reported_unsat(f in arb_formula()) {
        let e = env();
        let has_model = assignments().iter().any(|a| eval(&f, a));
        if has_model {
            prop_assert!(is_satisfiable(&f, &e), "witnessed formula reported unsat: {}", f);
        }
    }
}
