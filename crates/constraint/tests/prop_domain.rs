//! Property-based tests for the domain algebra: lattice laws, complement
//! involution, and exactness of images against brute-force enumeration.

use interop_constraint::{CmpOp, DiscSet, Iv, NumSet};
use interop_model::{Value, R64};
use proptest::prelude::*;

fn arb_numset() -> impl Strategy<Value = NumSet> {
    (
        any::<bool>(),
        prop::collection::vec((-50i32..50, 0i32..20), 0..4),
    )
        .prop_map(|(integral, raw)| {
            let ivs: Vec<Iv> = raw
                .into_iter()
                .map(|(lo, len)| Iv::closed(lo as f64, (lo + len) as f64))
                .collect();
            NumSet::from_ivs(integral, ivs)
        })
}

fn arb_points() -> impl Strategy<Value = NumSet> {
    prop::collection::btree_set(-30i64..30, 0..6)
        .prop_map(|s| NumSet::points(true, s.into_iter().map(R64::from)))
}

fn sample_points() -> Vec<R64> {
    (-60..=60).map(|i| R64::new(i as f64 / 2.0)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn complement_is_involution(s in arb_numset()) {
        let cc = s.complement().complement();
        for p in sample_points() {
            prop_assert_eq!(s.contains(p), cc.contains(p), "at {}", p);
        }
    }

    #[test]
    fn complement_partitions_the_line(s in arb_numset()) {
        let c = s.complement();
        for p in sample_points() {
            if !s.integral || p.get().fract() == 0.0 {
                prop_assert!(s.contains(p) ^ c.contains(p), "at {}", p);
            }
        }
    }

    #[test]
    fn intersect_is_pointwise_and(a in arb_numset(), b in arb_numset()) {
        let i = a.intersect(&b);
        for p in sample_points() {
            prop_assert_eq!(i.contains(p), a.contains(p) && b.contains(p), "at {}", p);
        }
    }

    #[test]
    fn union_is_pointwise_or(a in arb_numset(), b in arb_numset()) {
        // Union downgrades to the coarser carrier; only compare where the
        // carriers agree on membership semantics.
        let u = a.union(&b);
        for p in sample_points() {
            if u.integral || (!a.integral && !b.integral) {
                prop_assert_eq!(u.contains(p), a.contains(p) || b.contains(p), "at {}", p);
            } else if a.contains(p) || b.contains(p) {
                prop_assert!(u.contains(p), "union must be a superset at {}", p);
            }
        }
    }

    #[test]
    fn subset_agrees_with_membership(a in arb_numset(), b in arb_numset()) {
        if a.is_subset(&b) {
            for p in sample_points() {
                if a.contains(p) {
                    prop_assert!(b.contains(p), "subset violated at {}", p);
                }
            }
        }
    }

    #[test]
    fn from_cmp_matches_direct_test(op in prop::sample::select(vec![
        CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge
    ]), bound in -20i32..20) {
        let b = R64::new(bound as f64);
        let s = NumSet::from_cmp(false, op, b);
        for p in sample_points() {
            let expect = op.test(p.cmp(&b));
            prop_assert_eq!(s.contains(p), expect, "{} {} {}", p, op, b);
        }
    }

    #[test]
    fn monotone_image_exact_on_finite_sets(a in arb_points(), b in arb_points()) {
        // avg image vs brute force.
        let img = a.combine_monotone(&b, false, |x, y| (x + y) / R64::new(2.0));
        let xs = a.enumerate(64).expect("finite");
        let ys = b.enumerate(64).expect("finite");
        for &x in &xs {
            for &y in &ys {
                let v = (x + y) / R64::new(2.0);
                prop_assert!(img.contains(v), "missing avg({}, {})", x, y);
            }
        }
        // And nothing spurious: every member of the image must be the avg
        // of some pair.
        if let Some(members) = img.enumerate(4096) {
            for m in members {
                let witnessed = xs.iter().any(|&x| ys.iter().any(|&y| (x + y) / R64::new(2.0) == m));
                prop_assert!(witnessed, "spurious member {}", m);
            }
        }
    }

    #[test]
    fn monotone_image_sound_on_intervals(a in arb_numset(), b in arb_numset()) {
        let img = a.combine_monotone(&b, false, |x, y| x.max(y));
        for p in sample_points() {
            for q in sample_points() {
                if a.contains(p) && b.contains(q) {
                    prop_assert!(img.contains(p.max(q)), "max({}, {}) escaped", p, q);
                }
            }
        }
    }

    #[test]
    fn affine_image_exact(a in arb_numset(), k in -3i32..=3, c in -5i32..=5) {
        prop_assume!(k != 0);
        let img = a.affine_image(R64::new(k as f64), R64::new(c as f64), false);
        for p in sample_points() {
            if a.contains(p) {
                let v = R64::new(k as f64) * p + R64::new(c as f64);
                prop_assert!(img.contains(v), "{} * {} + {} escaped", k, p, c);
            }
        }
    }

    #[test]
    fn disc_set_laws(xs in prop::collection::btree_set(0i64..20, 0..6),
                     ys in prop::collection::btree_set(0i64..20, 0..6),
                     cofinite_a in any::<bool>(), cofinite_b in any::<bool>()) {
        let mk = |s: &std::collections::BTreeSet<i64>, co: bool| {
            let vals = s.iter().map(|&v| Value::Int(v)).collect();
            if co { DiscSet::NotIn(vals) } else { DiscSet::In(vals) }
        };
        let a = mk(&xs, cofinite_a);
        let b = mk(&ys, cofinite_b);
        for v in 0i64..20 {
            let val = Value::Int(v);
            prop_assert_eq!(
                a.intersect(&b).contains(&val),
                a.contains(&val) && b.contains(&val)
            );
            prop_assert_eq!(
                a.union(&b).contains(&val),
                a.contains(&val) || b.contains(&val)
            );
            prop_assert_eq!(a.complement().contains(&val), !a.contains(&val));
        }
        prop_assert_eq!(a.complement().complement(), a.clone());
        if a.is_subset(&b) {
            for v in 0i64..20 {
                let val = Value::Int(v);
                if a.contains(&val) {
                    prop_assert!(b.contains(&val));
                }
            }
        }
    }
}
