//! Per-side constraint checks: unsatisfiable constraints (A001),
//! contradictory pairs effective on one class (A002), and atom/domain
//! type mismatches (A007).

use std::collections::{BTreeMap, BTreeSet};

use interop_constraint::solve::{conjunction_unsat, is_satisfiable, TypeEnv};
use interop_constraint::Catalog;
use interop_model::{ClassName, Schema};

use crate::diag::{Code, Diagnostic, Location};
use crate::AnalysisInput;

/// Runs the per-side checks. Constraints found defective here (A001 or
/// A007) are recorded in `broken` by id text so the pair checks — this
/// module's A002 and the cross-database A003 — don't re-report the same
/// root cause.
pub(crate) fn check(
    input: &AnalysisInput<'_>,
    diags: &mut Vec<Diagnostic>,
    broken: &mut BTreeSet<String>,
) {
    for (schema, catalog) in [
        (input.local, input.local_catalog),
        (input.remote, input.remote_catalog),
    ] {
        side(schema, catalog, diags, broken);
    }
}

fn side(
    schema: &Schema,
    catalog: &Catalog,
    diags: &mut Vec<Diagnostic>,
    broken: &mut BTreeSet<String>,
) {
    let mut envs: BTreeMap<ClassName, TypeEnv> = BTreeMap::new();
    let mut env_of = |class: &ClassName| -> TypeEnv {
        envs.entry(class.clone())
            .or_insert_with(|| TypeEnv::for_class(schema, class))
            .clone()
    };

    // A007 / A001 per constraint.
    for oc in catalog.all_object() {
        let env = env_of(&oc.class);
        let mismatches = super::type_mismatches(&oc.formula, &env);
        if !mismatches.is_empty() {
            for m in mismatches {
                diags.push(Diagnostic::new(
                    Code::A007,
                    Location::item(oc.id.as_str()),
                    m,
                ));
            }
            // A type-broken constraint is excluded from the satisfiability
            // checks: an unsat verdict would restate the same root cause.
            broken.insert(oc.id.as_str().to_owned());
            continue;
        }
        if !is_satisfiable(&oc.formula, &env) {
            diags.push(Diagnostic::new(
                Code::A001,
                Location::item(oc.id.as_str()),
                format!(
                    "constraint '{}' on class {} can never hold over the declared domains",
                    oc.formula, oc.class
                ),
            ));
            broken.insert(oc.id.as_str().to_owned());
        }
    }

    // A002: pairwise conjunctions among the constraints *effective* on
    // each class. A pair is reported once, at the first (shallowest)
    // class where both members are visible together.
    let mut seen: BTreeSet<(String, String)> = BTreeSet::new();
    for def in schema.classes() {
        let effective = catalog.object_effective(schema, &def.name);
        let env = env_of(&def.name);
        for (i, a) in effective.iter().enumerate() {
            for b in effective.iter().skip(i + 1) {
                let (first, second) = if a.id.as_str() <= b.id.as_str() {
                    (a, b)
                } else {
                    (b, a)
                };
                let key = (first.id.as_str().to_owned(), second.id.as_str().to_owned());
                if broken.contains(&key.0) || broken.contains(&key.1) || seen.contains(&key) {
                    continue;
                }
                if conjunction_unsat(&[&a.formula, &b.formula], &env) {
                    diags.push(
                        Diagnostic::new(
                            Code::A002,
                            Location::item(&key.0),
                            format!(
                                "constraints '{}' and '{}' can never hold together on class {}",
                                first.formula, second.formula, def.name
                            ),
                        )
                        .with_related(Location::item(&key.1)),
                    );
                    seen.insert(key);
                }
            }
        }
    }
}
