//! The check registry: each submodule contributes one family of
//! diagnostics to the stream. Shared atom-walking and type-compatibility
//! helpers live here.

pub mod conformed;
pub mod constraints;
pub mod spec_rules;

use interop_constraint::solve::TypeEnv;
use interop_constraint::{Expr, Formula, Path};
use interop_model::{Type, Value};

/// Collects every comparison/membership/substring atom of `f`,
/// descending through the boolean connectives.
pub(crate) fn atoms<'f>(f: &'f Formula, out: &mut Vec<&'f Formula>) {
    match f {
        Formula::True | Formula::False => {}
        Formula::Cmp(..) | Formula::In(..) | Formula::Contains(..) => out.push(f),
        Formula::Not(g) => atoms(g, out),
        Formula::And(fs) | Formula::Or(fs) => {
            for g in fs {
                atoms(g, out);
            }
        }
        Formula::Implies(a, b) => {
            atoms(a, out);
            atoms(b, out);
        }
    }
}

/// Is a constant of this value shape a plausible member of the declared
/// type? Deliberately permissive where the constraint fragment is opaque
/// (sets, references): the analyzer only reports mismatches evaluation
/// could never reconcile.
pub(crate) fn const_compat(ty: &Type, v: &Value) -> bool {
    matches!(
        (ty, v),
        (_, Value::Null)
            | (Type::Bool, Value::Bool(_))
            | (
                Type::Int | Type::Real | Type::Range(_, _),
                Value::Int(_) | Value::Real(_)
            )
            | (Type::Str, Value::Str(_))
            | (Type::SetOf(_), _)
            | (Type::Ref(_), _)
    )
}

fn check_const(p: &Path, v: &Value, env: &TypeEnv, out: &mut Vec<String>) {
    let Some(ty) = env.get(p) else { return };
    if !const_compat(ty, v) {
        out.push(format!(
            "'{p}' has domain {ty} but is compared against {} constant {v}",
            v.kind()
        ));
    }
}

/// All atom-level type mismatches of `f` against the declared domains in
/// `env` — the A007 core, shared by the constraint and rule checks.
pub(crate) fn type_mismatches(f: &Formula, env: &TypeEnv) -> Vec<String> {
    let mut ats = Vec::new();
    atoms(f, &mut ats);
    let mut found = Vec::new();
    for a in ats {
        match a {
            Formula::Cmp(Expr::Attr(p), _, Expr::Const(v))
            | Formula::Cmp(Expr::Const(v), _, Expr::Attr(p)) => check_const(p, v, env, &mut found),
            Formula::In(Expr::Attr(p), set) => {
                for v in set {
                    check_const(p, v, env, &mut found);
                }
            }
            Formula::Contains(Expr::Attr(p), _) => {
                if let Some(ty) = env.get(p) {
                    if !matches!(ty, Type::Str) {
                        found.push(format!(
                            "contains() applies to '{p}' whose domain {ty} is not string"
                        ));
                    }
                }
            }
            _ => {}
        }
    }
    found
}
