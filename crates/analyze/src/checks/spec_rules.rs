//! Spec-level checks: dead rules (A004), shadowed rules (A005),
//! divergent attribute actions (A006), type mismatches inside rule
//! premises (A007), and the planner lints over premises (A008/A009).

use std::collections::{BTreeMap, BTreeSet};

use interop_constraint::normalize::split_conjuncts;
use interop_constraint::solve::{
    conjunction_unsat, implied_by_restricted, is_satisfiable, selectivity_hint, TypeEnv,
};
use interop_constraint::{Catalog, CmpOp, Expr, Formula};
use interop_model::{AttrName, ClassName, Schema};
use interop_spec::{ComparisonRule, Conversion, PropEq, Relationship, Side};
use interop_storage::store::CompositePolicy;
use interop_storage::{composite_gain_hint, indexable_atoms, IndexAtom};

use crate::diag::{Code, Diagnostic, Location};
use crate::AnalysisInput;

pub(crate) fn check(
    input: &AnalysisInput<'_>,
    diags: &mut Vec<Diagnostic>,
    broken_constraints: &BTreeSet<String>,
) {
    let mut type_broken_rules: BTreeSet<usize> = BTreeSet::new();
    premise_checks(input, diags, broken_constraints, &mut type_broken_rules);
    shadowed_rules(input, diags, &type_broken_rules);
    divergent_actions(input, diags);
}

/// The rule's location, with the parser-recorded spec line when present.
fn rule_loc(input: &AnalysisInput<'_>, r: &ComparisonRule) -> Location {
    Location::at(
        format!("rule {}", r.id),
        input.spec.locations.rules.get(&r.id).copied(),
    )
}

fn side_of<'a>(input: &AnalysisInput<'a>, side: Side) -> (&'a Schema, &'a Catalog) {
    match side {
        Side::Local => (input.local, input.local_catalog),
        Side::Remote => (input.remote, input.remote_catalog),
    }
}

/// A rule's premises with the class each one ranges over: the subject
/// condition on the subject class, and — for equality/descriptivity —
/// the counterpart condition on the counterpart class.
fn premises<'r>(
    input: &AnalysisInput<'r>,
    r: &'r ComparisonRule,
) -> Vec<(&'r Formula, &'r ClassName, Side)> {
    let mut out = vec![(&r.intra_subject, &r.subject_class, r.subject_side)];
    if let Some(c) = &r.counterpart_class {
        out.push((&r.intra_counterpart, c, r.subject_side.other()));
    }
    let _ = input;
    out
}

/// A004 + A007 + A008 + A009, one pass per rule premise.
fn premise_checks(
    input: &AnalysisInput<'_>,
    diags: &mut Vec<Diagnostic>,
    broken_constraints: &BTreeSet<String>,
    type_broken_rules: &mut BTreeSet<usize>,
) {
    for (ridx, r) in input.spec.rules.iter().enumerate() {
        let loc = rule_loc(input, r);
        for (premise, class, side) in premises(input, r) {
            if *premise == Formula::True {
                continue;
            }
            let (schema, catalog) = side_of(input, side);
            if schema.class(class).is_none() {
                continue; // unknown class: conformation reports it (A010)
            }
            let env = TypeEnv::for_class(schema, class);

            // A007 on the premise. A type-broken premise is excluded
            // from the satisfiability checks below (same suppression as
            // for constraints: one root cause, one code).
            let mismatches = super::type_mismatches(premise, &env);
            if !mismatches.is_empty() {
                for m in mismatches {
                    diags.push(Diagnostic::new(Code::A007, loc.clone(), m));
                }
                type_broken_rules.insert(ridx);
                continue;
            }

            // A004: dead premise — against the domains alone, or against
            // the constraints enforced on the class.
            if !is_satisfiable(premise, &env) {
                diags.push(Diagnostic::new(
                    Code::A004,
                    loc.clone(),
                    format!(
                        "premise '{premise}' on class {class} can never hold \
                         over the declared domains; the rule is dead"
                    ),
                ));
                continue;
            }
            let enforced: Vec<&Formula> = catalog
                .object_effective(schema, class)
                .into_iter()
                .filter(|oc| !broken_constraints.contains(oc.id.as_str()))
                .map(|oc| &oc.formula)
                .collect();
            if !enforced.is_empty() {
                let mut all = vec![premise];
                all.extend(enforced.iter().copied());
                if conjunction_unsat(&all, &env) {
                    diags.push(Diagnostic::new(
                        Code::A004,
                        loc.clone(),
                        format!(
                            "premise '{premise}' contradicts the constraints enforced \
                             on class {class}; the rule can never fire"
                        ),
                    ));
                    continue;
                }
            }

            planner_lints(premise, &env, &loc, diags);
        }
    }
}

/// A008/A009 over one premise.
fn planner_lints(premise: &Formula, env: &TypeEnv, loc: &Location, diags: &mut Vec<Diagnostic>) {
    let conjuncts = split_conjuncts(premise);
    // A008: conjuncts that *look* index-shaped (a path against a
    // constant) but can never probe an index. Inherently non-indexable
    // atoms — contains(), path-vs-path — are not flagged.
    for c in &conjuncts {
        if !indexable_atoms(c).is_empty() {
            continue;
        }
        let reason = match c {
            Formula::Cmp(Expr::Attr(p), op, Expr::Const(v))
            | Formula::Cmp(Expr::Const(v), op, Expr::Attr(p)) => {
                if p.len() > 1 {
                    Some("a multi-segment path navigates references and has no index")
                } else if *op == CmpOp::Ne {
                    Some("'<>' cannot be answered from posting lists")
                } else if *op != CmpOp::Eq && v.as_num().is_none() {
                    Some(
                        "an ordering comparison against a non-numeric constant \
                         has no sorted-index entry",
                    )
                } else {
                    None
                }
            }
            Formula::In(Expr::Attr(p), _) if p.len() > 1 => {
                Some("a multi-segment path navigates references and has no index")
            }
            _ => None,
        };
        if let Some(reason) = reason {
            diags.push(Diagnostic::new(
                Code::A008,
                loc.clone(),
                format!("conjunct '{c}' can never probe an index: {reason}"),
            ));
        }
    }
    // A009: equality pairs whose static gain estimate clears the default
    // composite admission policy.
    let policy = CompositePolicy::default();
    let eq_atoms: Vec<(&Formula, AttrName, f64)> = conjuncts
        .iter()
        .filter_map(|c| {
            let mut found = indexable_atoms(c);
            match (found.len(), found.pop()) {
                (1, Some(IndexAtom::Eq { attr, .. })) => {
                    selectivity_hint(c, env).map(|sel| (c, attr, sel))
                }
                _ => None,
            }
        })
        .collect();
    let mut seen_pairs: BTreeSet<(AttrName, AttrName)> = BTreeSet::new();
    for (i, (_, a, sel_a)) in eq_atoms.iter().enumerate() {
        for (_, b, sel_b) in eq_atoms.iter().skip(i + 1) {
            if a == b {
                continue;
            }
            let (x, y) = if a <= b { (a, b) } else { (b, a) };
            if !seen_pairs.insert((x.clone(), y.clone())) {
                continue;
            }
            let gain = composite_gain_hint(*sel_a, *sel_b);
            if gain >= policy.min_gain {
                diags.push(Diagnostic::new(
                    Code::A009,
                    loc.clone(),
                    format!(
                        "equality pair ({x}, {y}) qualifies for a composite index \
                         (estimated gain {gain:.1}x >= policy {:.1}x)",
                        policy.min_gain
                    ),
                ));
            }
        }
    }
}

/// The signature under which two rules compete: same relationship
/// target, same subject, same interobject conditions.
fn signature(r: &ComparisonRule) -> Option<String> {
    let target = match &r.relationship {
        Relationship::Equality => "=".to_owned(),
        Relationship::StrictSimilarity { class } => format!("sim:{class}"),
        Relationship::ApproxSimilarity {
            class,
            virtual_class,
        } => format!("approx:{class}:{virtual_class}"),
        // Descriptivity relates a value set, not object membership;
        // overlapping descriptivity rules are legitimate.
        Relationship::Descriptivity { .. } => return None,
    };
    let mut inter: Vec<String> = r.inter.iter().map(|c| c.to_string()).collect();
    inter.sort();
    Some(format!(
        "{target}|{:?}|{}|{}|{}",
        r.subject_side,
        r.subject_class,
        r.counterpart_class
            .as_ref()
            .map(|c| c.as_str())
            .unwrap_or(""),
        inter.join("&")
    ))
}

/// A005: a later rule whose premises are implied by an earlier rule with
/// the same signature adds nothing — every object it matches already
/// fired the earlier rule.
fn shadowed_rules(
    input: &AnalysisInput<'_>,
    diags: &mut Vec<Diagnostic>,
    type_broken_rules: &BTreeSet<usize>,
) {
    let rules = &input.spec.rules;
    for (j, rj) in rules.iter().enumerate() {
        if type_broken_rules.contains(&j) {
            continue;
        }
        let Some(sig_j) = signature(rj) else { continue };
        for (i, ri) in rules.iter().enumerate().take(j) {
            if type_broken_rules.contains(&i) || signature(ri).as_ref() != Some(&sig_j) {
                continue;
            }
            let (schema, _) = side_of(input, rj.subject_side);
            if schema.class(&rj.subject_class).is_none() {
                continue;
            }
            let env = TypeEnv::for_class(schema, &rj.subject_class);
            let subject_shadowed = ri.intra_subject == Formula::True
                || implied_by_restricted(
                    std::slice::from_ref(&rj.intra_subject),
                    &ri.intra_subject,
                    &env,
                );
            let counterpart_shadowed = ri.intra_counterpart == Formula::True || {
                match &rj.counterpart_class {
                    Some(c) => {
                        let (cschema, _) = side_of(input, rj.subject_side.other());
                        cschema.class(c).is_some()
                            && implied_by_restricted(
                                std::slice::from_ref(&rj.intra_counterpart),
                                &ri.intra_counterpart,
                                &TypeEnv::for_class(cschema, c),
                            )
                    }
                    None => false,
                }
            };
            if subject_shadowed && counterpart_shadowed {
                diags.push(
                    Diagnostic::new(
                        Code::A005,
                        rule_loc(input, rj),
                        format!(
                            "every object matched by this rule already matches the \
                             earlier rule '{}'; the rule is redundant",
                            ri.id
                        ),
                    )
                    .with_related(rule_loc(input, ri)),
                );
                break; // one shadowing witness per rule is enough
            }
        }
    }
}

fn conv_str(c: &Conversion) -> String {
    match c {
        Conversion::Id => "id".to_owned(),
        Conversion::Multiply(k) => format!("multiply({k})"),
        Conversion::Linear { a, b } => format!("linear({a}, {b})"),
        Conversion::Table(_) => "table(..)".to_owned(),
    }
}

fn propeq_loc(input: &AnalysisInput<'_>, idx: usize, p: &PropEq) -> Location {
    Location::at(
        format!(
            "propeq {}.{} ~ {}.{}",
            p.local_class, p.local_path, p.remote_class, p.remote_path
        ),
        input.spec.locations.propeqs.get(&idx).copied(),
    )
}

/// A006: two propeqs resolving to the same *declared* attribute with
/// divergent actions (conformed name or conversion). `build_plans` keys
/// its attribute map by the declaring class and inserts last-wins, so
/// one of the actions would be silently dropped — the class of defect
/// the differential suites previously only caught at runtime.
fn divergent_actions(input: &AnalysisInput<'_>, diags: &mut Vec<Diagnostic>) {
    // (side-tag, declaring class, attr) -> [(propeq idx, conformed name, conversion)]
    type ActionGroups<'p> = BTreeMap<(u8, ClassName, String), Vec<(usize, String, &'p Conversion)>>;
    let mut groups: ActionGroups<'_> = BTreeMap::new();
    for (idx, p) in input.spec.propeqs.iter().enumerate() {
        let conformed = p.conformed_name.to_string();
        for (tag, schema, class, path, conv) in [
            (0u8, input.local, &p.local_class, &p.local_path, &p.cf_local),
            (
                1u8,
                input.remote,
                &p.remote_class,
                &p.remote_path,
                &p.cf_remote,
            ),
        ] {
            let key = if path.len() == 1 {
                match path.head().and_then(|a| schema.resolve_attr(class, a)) {
                    Some((declaring, def)) => (tag, declaring.clone(), def.name.to_string()),
                    None => continue, // unknown attr: conformation reports it
                }
            } else {
                (tag, class.clone(), path.to_string())
            };
            groups
                .entry(key)
                .or_default()
                .push((idx, conformed.clone(), conv));
        }
    }
    for ((_, class, attr), members) in groups {
        if members.len() < 2 {
            continue;
        }
        let mut actions: Vec<(String, String)> = members
            .iter()
            .map(|(_, name, conv)| (name.clone(), conv_str(conv)))
            .collect();
        actions.sort();
        actions.dedup();
        if actions.len() < 2 {
            continue; // agreeing duplicates are harmless
        }
        let described: Vec<String> = actions
            .iter()
            .map(|(n, c)| format!("'{n}' via {c}"))
            .collect();
        let first = &input.spec.propeqs[members[0].0];
        let mut d = Diagnostic::new(
            Code::A006,
            propeq_loc(input, members[0].0, first),
            format!(
                "attribute {class}.{attr} is given divergent actions ({}); \
                 the conform plan silently keeps only the last one",
                described.join(" vs ")
            ),
        );
        for (idx, _, _) in members.iter().skip(1) {
            d = d.with_related(propeq_loc(input, *idx, &input.spec.propeqs[*idx]));
        }
        diags.push(d);
    }
}
