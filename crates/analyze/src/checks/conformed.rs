//! Cross-database checks in the conformed namespace: plan construction
//! failures (A010) and contradictory local/remote constraint pairs on
//! conformed attributes (A003).
//!
//! Both sides' object constraints are rewritten through the same
//! [`Rewriter`] the conform phase uses, so the analyzer sees exactly the
//! formulas the pipeline would compare — renames applied, constants
//! pushed through conversions.

use std::collections::{BTreeMap, BTreeSet};

use interop_conform::{plan::build_plans, AttrAction, PlanIndex, Rewriter};
use interop_constraint::solve::{conjunction_unsat, TypeEnv};
use interop_constraint::{Formula, Path};
use interop_model::ClassName;
use interop_spec::{Relationship, Side};

use crate::diag::{Code, Diagnostic, Location};
use crate::AnalysisInput;

pub(crate) fn check(
    input: &AnalysisInput<'_>,
    diags: &mut Vec<Diagnostic>,
    broken: &BTreeSet<String>,
) {
    let (lp, rp) = match build_plans(input.spec, input.local, input.remote) {
        Ok(plans) => plans,
        Err(e) => {
            diags.push(Diagnostic::new(
                Code::A010,
                Location::item(format!(
                    "integration {} with {}",
                    input.spec.local_db, input.spec.remote_db
                )),
                format!("spec cannot be conformed: {e}"),
            ));
            return;
        }
    };
    let idx_l = PlanIndex::new(input.local, &lp);
    let idx_r = PlanIndex::new(input.remote, &rp);
    let rw_l = Rewriter::new(&idx_l);
    let rw_r = Rewriter::new(&idx_r);

    // Class pairs whose instances can denote the same real-world object:
    // equality counterpart/subject, and similarity subject/target.
    let mut pairs: Vec<(ClassName, ClassName, String)> = Vec::new();
    for r in &input.spec.rules {
        let (lclass, rclass) = match &r.relationship {
            Relationship::Equality => match (&r.subject_side, &r.counterpart_class) {
                (Side::Remote, Some(c)) => (c.clone(), r.subject_class.clone()),
                (Side::Local, Some(c)) => (r.subject_class.clone(), c.clone()),
                _ => continue,
            },
            Relationship::StrictSimilarity { class }
            | Relationship::ApproxSimilarity { class, .. } => match r.subject_side {
                Side::Local => (r.subject_class.clone(), class.clone()),
                Side::Remote => (class.clone(), r.subject_class.clone()),
            },
            // Descriptivity objectifies a value set; its constraints are
            // reallocated to the virtual class, not conjoined.
            Relationship::Descriptivity { .. } => continue,
        };
        pairs.push((lclass, rclass, r.id.to_string()));
    }

    let mut reported: BTreeSet<(String, String)> = BTreeSet::new();
    for (lclass, rclass, rule_id) in pairs {
        if input.local.class(&lclass).is_none() || input.remote.class(&rclass).is_none() {
            continue;
        }
        let mut env = TypeEnv::new();
        conformed_env(&idx_l, &lclass, &mut env);
        conformed_env(&idx_r, &rclass, &mut env);
        let lcs = rewritten(input, Side::Local, &rw_l, &lclass, broken);
        let rcs = rewritten(input, Side::Remote, &rw_r, &rclass, broken);
        for (lid, lf) in &lcs {
            for (rid, rf) in &rcs {
                let key = (lid.clone(), rid.clone());
                if reported.contains(&key) {
                    continue;
                }
                if conjunction_unsat(&[lf, rf], &env) {
                    diags.push(
                        Diagnostic::new(
                            Code::A003,
                            Location::item(lid),
                            format!(
                                "conformed constraint '{lf}' contradicts remote '{rf}' \
                                 (classes {lclass} ~ {rclass} related by rule {rule_id})"
                            ),
                        )
                        .with_related(Location::item(rid)),
                    );
                    reported.insert(key);
                }
            }
        }
    }
}

/// Registers the conformed name and type of every visible attribute of
/// `class` into `env`. Objectified attributes become references and are
/// left untyped (unconstrained — conservative).
fn conformed_env(idx: &PlanIndex<'_>, class: &ClassName, env: &mut TypeEnv) {
    for (attr, info) in idx.class_attrs(class) {
        match &info.action {
            Some(AttrAction::Objectified(..)) => {}
            Some(AttrAction::Planned(p)) => {
                env.insert(Path::attr(p.new_name.clone()), p.new_type.clone());
            }
            None => {
                env.insert(Path::attr(attr.clone()), info.def.ty.clone());
            }
        }
    }
}

/// The class's effective object constraints, rewritten into the
/// conformed namespace. Constraints the rewriter cannot conform (the
/// pipeline drops them with a note) and constraints already reported
/// broken (A001/A007) are skipped.
fn rewritten(
    input: &AnalysisInput<'_>,
    side: Side,
    rw: &Rewriter<'_>,
    class: &ClassName,
    broken: &BTreeSet<String>,
) -> BTreeMap<String, Formula> {
    let (schema, catalog) = match side {
        Side::Local => (input.local, input.local_catalog),
        Side::Remote => (input.remote, input.remote_catalog),
    };
    let mut out = BTreeMap::new();
    for oc in catalog.object_effective(schema, class) {
        if broken.contains(oc.id.as_str()) {
            continue;
        }
        if let Ok(f) = rw.rewrite_formula(class, &oc.formula) {
            out.insert(oc.id.as_str().to_owned(), f);
        }
    }
    out
}
