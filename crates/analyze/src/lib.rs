//! # interop-analyze
//!
//! Static analysis of interoperation specifications: a pre-flight pass
//! over the parsed schemas, constraint catalogs and integration spec
//! that finds defective specs *before the pipeline touches any data*.
//! The paper's thesis is that integrity constraints drive interoperation
//! — which means a bad spec silently corrupts every downstream phase;
//! this crate turns "fail 20 s into a merge" into "fail in milliseconds
//! at load".
//!
//! [`analyze`] runs a registry of checks and returns a canonical
//! [`Diagnostic`] stream:
//!
//! | code | severity | meaning |
//! |------|----------|---------|
//! | A001 | error    | constraint unsatisfiable over its declared domains |
//! | A002 | error    | two constraints effective on one class contradict |
//! | A003 | error    | local/remote constraints contradict after conformation |
//! | A004 | warning  | rule premise can never hold (dead rule) |
//! | A005 | warning  | rule shadowed by an earlier same-target rule |
//! | A006 | error    | propeqs give one declared attribute divergent actions |
//! | A007 | error    | comparison constant incompatible with declared domain |
//! | A008 | hint     | comparison conjunct can never be answered from an index |
//! | A009 | hint     | equality pair qualifies for a composite index |
//! | A010 | error    | spec cannot be conformed at all |
//!
//! The checks reuse the existing machinery end-to-end: the conservative
//! solver (`interop_constraint::solve`) for satisfiability, implication
//! and pairwise conjunctions; the conform phase's `build_plans` /
//! `PlanIndex` / `Rewriter` so cross-database comparisons happen on
//! exactly the formulas the pipeline would produce; and the storage
//! planner's atom recogniser and composite gain math for the planner
//! lints.
//!
//! # Invariants
//!
//! * **The stream is deterministic and canonical.** Diagnostics are
//!   sorted by (code, location, message), deduplicated, and rendered in
//!   a fixed format ([`diag::render`]) — two runs over the same input
//!   are byte-identical (pinned by the snapshot suite).
//! * **Conservative, like the solver it wraps.** Every `error` is a
//!   *proven* defect (an over-approximating satisfiability verdict never
//!   fires an unsat diagnostic on a satisfiable spec); silence is not a
//!   proof of correctness.
//! * **One root cause, one code.** A constraint or premise reported
//!   broken by one check is suppressed from the downstream checks that
//!   would restate it (a type-broken atom is not also "unsatisfiable";
//!   an unsatisfiable constraint is not also half of every
//!   "contradictory pair").
//! * **Analysis never touches extensions.** The input is schemas,
//!   catalogs and the spec; object data is neither read nor required —
//!   the pre-flight gate runs before any load.
//!
//! The [`corpus`] module carries the seeded defect corpus: one fixture
//! per diagnostic code, used by the snapshot suite, the property suite
//! and the CLI's `--corpus` mode.

mod checks;
pub mod corpus;
pub mod diag;

use std::collections::BTreeSet;

use interop_constraint::Catalog;
use interop_model::Schema;
use interop_spec::Spec;

pub use diag::{canonicalize, render, Code, Diagnostic, Location, Severity};

/// Everything the analyzer looks at: the two sides' schemas and
/// constraint catalogs, and the integration spec between them. No
/// object data — analysis is purely static.
#[derive(Clone, Copy, Debug)]
pub struct AnalysisInput<'a> {
    /// The local schema.
    pub local: &'a Schema,
    /// Constraints enforced by the local database.
    pub local_catalog: &'a Catalog,
    /// The remote schema.
    pub remote: &'a Schema,
    /// Constraints enforced by the remote database.
    pub remote_catalog: &'a Catalog,
    /// The integration specification.
    pub spec: &'a Spec,
}

/// Runs every registered check and returns the canonical diagnostic
/// stream (sorted, deduplicated — see [`diag::canonicalize`]).
pub fn analyze(input: &AnalysisInput<'_>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // Constraints found defective here are suppressed from the pair
    // checks downstream (one root cause, one code).
    let mut broken: BTreeSet<String> = BTreeSet::new();
    checks::constraints::check(input, &mut diags, &mut broken);
    checks::spec_rules::check(input, &mut diags, &broken);
    checks::conformed::check(input, &mut diags, &broken);
    canonicalize(diags)
}

/// True when the stream contains at least one `Error` diagnostic — the
/// strict pre-flight refusal predicate.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Severity::Error)
}
