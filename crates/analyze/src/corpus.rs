//! The seeded defect corpus: one self-contained fixture per diagnostic
//! code, each a (local `.tm`, remote `.tm`, `.tmspec`) source triple
//! whose only planted defect is the one its code describes.
//!
//! The corpus is the single source of truth for three consumers: the
//! snapshot suite (pinned rendered diagnostics per fixture), the
//! property suite's non-vacuity half (each defect is caught by exactly
//! its code), and the CLI's `--corpus` mode (CI asserts the corpus run
//! is noisy while the paper fixture stays clean).

use interop_lang::{parse_database, parse_spec};

use crate::diag::{Code, Diagnostic};
use crate::{analyze, AnalysisInput};

/// One corpus fixture: sources plus the code its planted defect must
/// trigger.
#[derive(Clone, Debug)]
pub struct Fixture {
    /// The diagnostic code this fixture seeds.
    pub code: Code,
    /// Stable fixture name (snapshot file stem).
    pub name: &'static str,
    /// Local database source (`.tm`).
    pub local_tm: String,
    /// Remote database source (`.tm`).
    pub remote_tm: String,
    /// Integration spec source (`.tmspec`).
    pub spec: String,
}

/// Base local database; `extra` is spliced into the `Person` class body
/// after the attributes (e.g. an `object constraints` block).
fn local_tm(extra: &str) -> String {
    format!(
        "database LocalDB\n\n\
         class Person\n  attributes\n    name : string\n    age : 0..120\n    score : 1..5\n\
         {extra}end Person\n\n\
         class Student isa Person\n  attributes\n    unit : string\nend Student\n"
    )
}

/// Base remote database; `extra` splices into the `Member` class body.
fn remote_tm(extra: &str) -> String {
    format!(
        "database RemoteDB\n\n\
         class Member\n  attributes\n    name : string\n    age : 0..120\n    \
         grade : 1..10\n    level : 1..4\n    active : boolean\n\
         {extra}end Member\n"
    )
}

/// Base spec; `extra` lines follow the always-present equality rule.
fn spec_src(extra: &str) -> String {
    format!(
        "integration LocalDB with RemoteDB\n\n\
         rule r1: Eq(p : Person, m : Member) <- p.name = m.name\n\
         {extra}"
    )
}

/// The full defect corpus, one fixture per registered code, in code
/// order.
pub fn defect_corpus() -> Vec<Fixture> {
    vec![
        Fixture {
            code: Code::A001,
            name: "a001_unsat_constraint",
            local_tm: local_tm("  object constraints\n    bad: age >= 18 and age <= 10\n"),
            remote_tm: remote_tm(""),
            spec: spec_src(""),
        },
        Fixture {
            code: Code::A002,
            name: "a002_contradictory_pair",
            local_tm: local_tm("  object constraints\n    oc1: age >= 18\n    oc2: age <= 10\n"),
            remote_tm: remote_tm(""),
            spec: spec_src(""),
        },
        Fixture {
            code: Code::A003,
            name: "a003_cross_db_contradiction",
            local_tm: local_tm("  object constraints\n    oc1: score >= 4\n"),
            remote_tm: remote_tm("  object constraints\n    oc1: grade <= 5\n"),
            spec: spec_src("propeq(Person.score, Member.grade, multiply(2), id, avg)\n"),
        },
        Fixture {
            code: Code::A004,
            name: "a004_dead_rule",
            local_tm: local_tm(""),
            remote_tm: remote_tm(""),
            spec: spec_src("rule r2: Sim(m : Member, Student) <- m.age > 200\n"),
        },
        Fixture {
            code: Code::A005,
            name: "a005_shadowed_rule",
            local_tm: local_tm(""),
            remote_tm: remote_tm(""),
            spec: spec_src(
                "rule r2: Sim(m : Member, Student) <- m.grade >= 5\n\
                 rule r3: Sim(m : Member, Student) <- m.grade >= 7\n",
            ),
        },
        Fixture {
            code: Code::A006,
            name: "a006_divergent_actions",
            local_tm: local_tm(""),
            remote_tm: remote_tm(""),
            spec: spec_src(
                "propeq(Person.score, Member.grade, id, id, avg)\n\
                 propeq(Student.score, Member.level, id, id, avg)\n",
            ),
        },
        Fixture {
            code: Code::A007,
            name: "a007_type_mismatch",
            local_tm: local_tm(""),
            remote_tm: remote_tm(""),
            spec: spec_src("rule r2: Sim(m : Member, Student) <- m.name = 3\n"),
        },
        Fixture {
            code: Code::A008,
            name: "a008_unindexable_conjunct",
            local_tm: local_tm(""),
            remote_tm: remote_tm(""),
            spec: spec_src("rule r2: Sim(m : Member, Student) <- m.name <> 'zzz'\n"),
        },
        Fixture {
            code: Code::A009,
            name: "a009_composite_pair",
            local_tm: local_tm(""),
            remote_tm: remote_tm(""),
            spec: spec_src("rule r2: Sim(m : Member, Student) <- m.grade = 4 and m.level = 2\n"),
        },
        Fixture {
            code: Code::A010,
            name: "a010_unconformable_spec",
            local_tm: local_tm(""),
            remote_tm: remote_tm(""),
            spec: spec_src("propeq(Person.ghost, Member.grade, id, id, any)\n"),
        },
    ]
}

/// Parses a fixture's three sources and runs the analyzer over them.
/// Errors (which a well-formed corpus never produces) are reported as
/// text so callers need no panic path.
pub fn analyze_fixture(f: &Fixture) -> Result<Vec<Diagnostic>, String> {
    let local = parse_database(&f.local_tm).map_err(|e| format!("{}: local: {e}", f.name))?;
    let remote = parse_database(&f.remote_tm).map_err(|e| format!("{}: remote: {e}", f.name))?;
    let spec = parse_spec(&f.spec, &local.schema, &remote.schema)
        .map_err(|e| format!("{}: spec: {e}", f.name))?;
    Ok(analyze(&AnalysisInput {
        local: &local.schema,
        local_catalog: &local.catalog,
        remote: &remote.schema,
        remote_catalog: &remote.catalog,
        spec: &spec,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_covers_every_code_in_order() {
        let corpus = defect_corpus();
        let codes: Vec<Code> = corpus.iter().map(|f| f.code).collect();
        assert_eq!(codes, Code::ALL.to_vec());
        let mut names: Vec<&str> = corpus.iter().map(|f| f.name).collect();
        names.dedup();
        assert_eq!(names.len(), corpus.len(), "fixture names must be unique");
    }

    #[test]
    fn every_fixture_triggers_exactly_its_code() {
        for f in defect_corpus() {
            let diags = analyze_fixture(&f).unwrap();
            let fired: std::collections::BTreeSet<Code> = diags.iter().map(|d| d.code).collect();
            assert_eq!(
                fired,
                std::iter::once(f.code).collect(),
                "fixture {} expected only {:?}, got:\n{}",
                f.name,
                f.code,
                crate::render(&diags)
            );
        }
    }
}
