//! The diagnostics model: stable codes, severities, locations, and a
//! deterministic rendering used by the snapshot suites and the CLI.

use std::fmt;

/// A stable diagnostic code. Codes are append-only: a released code never
/// changes meaning, so snapshots and allowlists stay valid across
/// versions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// A single constraint is unsatisfiable over its class's declared
    /// attribute domains.
    A001,
    /// Two constraints effective on one class can never hold together.
    A002,
    /// A local and a remote constraint contradict each other once both
    /// are rewritten into the conformed namespace.
    A003,
    /// A rule premise can never hold (against the declared domains, or
    /// against the constraints enforced on the subject class).
    A004,
    /// A rule is shadowed by an earlier rule with the same target: every
    /// object the later rule matches already fires the earlier one.
    A005,
    /// Two property equivalences resolve to the same declared attribute
    /// with divergent actions; the conform plan silently keeps only one.
    A006,
    /// A comparison atom's constant is incompatible with the attribute's
    /// declared domain.
    A007,
    /// A comparison conjunct looks index-shaped but can never probe an
    /// index (planner lint).
    A008,
    /// An equality-atom pair qualifies for a composite index under the
    /// default admission policy (planner hint).
    A009,
    /// The spec cannot be conformed at all: plan construction fails
    /// before any data is touched.
    A010,
}

/// Diagnostic severity. `Error` diagnostics make strict pre-flight
/// refuse the spec; warnings and hints never block.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The spec is defective; integration will fail or silently corrupt.
    Error,
    /// The spec is suspicious but runnable.
    Warning,
    /// An optimisation opportunity, not a defect.
    Hint,
}

impl Code {
    /// Every registered code, ascending.
    pub const ALL: [Code; 10] = [
        Code::A001,
        Code::A002,
        Code::A003,
        Code::A004,
        Code::A005,
        Code::A006,
        Code::A007,
        Code::A008,
        Code::A009,
        Code::A010,
    ];

    /// The code text (`"A001"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Code::A001 => "A001",
            Code::A002 => "A002",
            Code::A003 => "A003",
            Code::A004 => "A004",
            Code::A005 => "A005",
            Code::A006 => "A006",
            Code::A007 => "A007",
            Code::A008 => "A008",
            Code::A009 => "A009",
            Code::A010 => "A010",
        }
    }

    /// The severity every diagnostic with this code carries.
    pub fn severity(self) -> Severity {
        match self {
            Code::A001 | Code::A002 | Code::A003 | Code::A006 | Code::A007 | Code::A010 => {
                Severity::Error
            }
            Code::A004 | Code::A005 => Severity::Warning,
            Code::A008 | Code::A009 => Severity::Hint,
        }
    }

    /// A one-line summary of what the code means (the CLI's `--codes`
    /// reference table).
    pub fn summary(self) -> &'static str {
        match self {
            Code::A001 => "constraint is unsatisfiable over its declared domains",
            Code::A002 => "two constraints effective on one class contradict each other",
            Code::A003 => "local and remote constraints contradict after conformation",
            Code::A004 => "rule premise can never hold; the rule is dead",
            Code::A005 => "rule is shadowed by an earlier rule with the same target",
            Code::A006 => "property equivalences assign divergent actions to one attribute",
            Code::A007 => "comparison constant is incompatible with the declared domain",
            Code::A008 => "comparison conjunct can never be answered from an index",
            Code::A009 => "equality pair qualifies for a composite index",
            Code::A010 => "spec cannot be conformed",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Hint => "hint",
        })
    }
}

/// Where a diagnostic points: a named spec item (constraint id, rule id,
/// propeq, class) plus the 1-based spec source line when the parser
/// recorded one ([`interop_spec::SpecLocations`]).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Location {
    /// The item the diagnostic anchors to, e.g. `CSLibrary.Publication.oc1`
    /// or `rule r3`.
    pub item: String,
    /// Spec source line, when known.
    pub line: Option<u32>,
}

impl Location {
    /// A location with no source line (items from `.tm` catalogs).
    pub fn item(item: impl Into<String>) -> Self {
        Location {
            item: item.into(),
            line: None,
        }
    }

    /// A location with an optional spec source line.
    pub fn at(item: impl Into<String>, line: Option<u32>) -> Self {
        Location {
            item: item.into(),
            line,
        }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.line {
            Some(n) => write!(f, "{} (spec line {n})", self.item),
            None => f.write_str(&self.item),
        }
    }
}

/// One analyzer finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// The check that fired.
    pub code: Code,
    /// Severity (always `code.severity()`).
    pub severity: Severity,
    /// The primary location.
    pub location: Location,
    /// Human-readable description of this instance.
    pub message: String,
    /// Other locations involved (the second constraint of a pair, the
    /// shadowing rule, ...).
    pub related: Vec<Location>,
}

impl Diagnostic {
    /// Creates a diagnostic; the severity comes from the code.
    pub fn new(code: Code, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: code.severity(),
            location,
            message: message.into(),
            related: Vec::new(),
        }
    }

    /// Builder: attaches a related location.
    pub fn with_related(mut self, loc: Location) -> Self {
        self.related.push(loc);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] at {}: {}",
            self.severity, self.code, self.location, self.message
        )?;
        for r in &self.related {
            write!(f, "\n  related: {r}")?;
        }
        Ok(())
    }
}

/// Sorts diagnostics into the canonical stream order (code, then
/// location, then message) and drops exact duplicates. Every analyzer
/// entry point funnels its output through here, so two runs over the
/// same input render byte-identically.
pub fn canonicalize(mut diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
    diags.sort_by(|a, b| {
        (&a.code, &a.location, &a.message, &a.related).cmp(&(
            &b.code,
            &b.location,
            &b.message,
            &b.related,
        ))
    });
    diags.dedup();
    diags
}

/// Renders a diagnostic stream one finding per paragraph — the format
/// pinned by the snapshot suite and printed by `examples/analyze.rs`.
/// An empty stream renders as the explicit all-clear marker so snapshots
/// of clean fixtures are non-empty files.
pub fn render(diags: &[Diagnostic]) -> String {
    if diags.is_empty() {
        return "no diagnostics\n".to_owned();
    }
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_sorted_and_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for w in Code::ALL.windows(2) {
            assert!(w[0] < w[1], "ALL must be ascending");
        }
        for c in Code::ALL {
            assert!(seen.insert(c.as_str()), "duplicate code text");
            assert!(!c.summary().is_empty());
        }
    }

    #[test]
    fn canonicalize_sorts_and_dedupes() {
        let a = Diagnostic::new(Code::A002, Location::item("x"), "m");
        let b = Diagnostic::new(Code::A001, Location::item("y"), "m");
        let out = canonicalize(vec![a.clone(), b.clone(), a.clone()]);
        assert_eq!(out, vec![b, a]);
    }

    #[test]
    fn display_formats() {
        let d = Diagnostic::new(
            Code::A001,
            Location::at("rule r1", Some(3)),
            "premise is unsatisfiable",
        )
        .with_related(Location::item("L.C.oc1"));
        assert_eq!(
            d.to_string(),
            "error[A001] at rule r1 (spec line 3): premise is unsatisfiable\n  related: L.C.oc1"
        );
        assert_eq!(render(&[]), "no diagnostics\n");
    }
}
