//! # interop-conform
//!
//! The **conformation phase** of §4: before local and remote constraints
//! can be compared, both databases are brought into a common semantical
//! context. This crate implements the paper's four subtasks:
//!
//! 1. **Allocating constraints to conformed classes** — object–value
//!    conflicts are settled by creating virtual classes from values (the
//!    paper's `VirtPublisher`); constraints whose properties move to the
//!    virtual class are reallocated there (`oc2: publisher in
//!    KNOWNPUBLISHERS` becomes `VirtPublisher: name in KNOWNPUBLISHERS`).
//! 2. **Attribute substitution** — equivalent properties get identical
//!    conformed names (`ourprice` → `libprice`) and joined types.
//! 3. **Domain conversion** — constants inside constraints are mapped
//!    through the conversion function (`rating >= 2` under `multiply(2)`
//!    becomes `rating >= 4`).
//! 4. **Derived attributes** — non-trivial conversions yield derived
//!    conformed attributes whose constraints are converted with them.
//!
//! Constraints that cannot be conformed exactly (e.g. a `contains` atom
//! under a non-identity conversion) are *dropped with a note* rather than
//! silently kept wrong — the conservative direction for everything
//! downstream.
//!
//! # Invariants
//!
//! * **Attribute plans are keyed by the declaring class.** A `propeq`
//!   or descriptivity rule stated on a subclass resolves to the class
//!   that *declares* the attribute before any renaming, so object data
//!   is never rewritten into a shape the conformed schema rejects
//!   (regression-tested; found by the differential suites).
//! * **One interned [`interned::PlanIndex`] per side** serves the database
//!   transformation, every constraint rewrite, and the spec rewrite —
//!   built top-down so each class inherits its parent's resolved
//!   attribute actions, with ancestry sets giving O(1) subclass tests.
//!   Interned lookups are property-tested against naive hierarchy
//!   walks.
//! * **Conform output is deterministic** and pinned byte-for-byte on
//!   the paper fixtures (`tests/conform_snapshot.rs` at the workspace
//!   root); notes are emitted in source order.
//! * **Delta emission is equivalent to re-conforming.** For a batch of
//!   touched source ids, [`delta::VirtRegistry::reconform`] emits
//!   [`delta::ConformedDelta`]s whose application
//!   ([`delta::apply_deltas`]) yields exactly the conformed database a
//!   full re-run of the interned plan would build — per-object
//!   transformation re-run for just the touched ids, virtual-object
//!   ownership diffed so emptied virtuals are retired and new ones
//!   allocated deterministically (differentially tested, and relied on
//!   by `interop_merge`'s incremental engine one layer up).

pub mod conform;
pub mod delta;
pub mod interned;
pub mod objectify;
pub mod plan;
pub mod rewrite;

pub use conform::{conform, Conformed, ConformedSide, LOCAL_VIRT_SPACE, REMOTE_VIRT_SPACE};
pub use delta::{apply_deltas, ConformedDelta, VirtRegistry};
pub use interned::{AttrAction, AttrInfo, PlanIndex};
pub use plan::{AttrPlan, ConformError, Objectify, SidePlan};
pub use rewrite::{ConformNote, RewriteOutcome, Rewriter};
