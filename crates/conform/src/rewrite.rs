//! Constraint rewriting: attribute substitution, domain conversion, and
//! reallocation to conformed classes (§4).

use interop_constraint::expr::AggOp;
use interop_constraint::{
    ClassConstraint, ClassConstraintBody, CmpOp, DbConstraint, Expr, Formula, ObjectConstraint,
    Path,
};
use interop_model::{ClassName, Type, Value};
use interop_spec::Conversion;

use crate::interned::PlanIndex;

/// A note about a constraint that could not be conformed exactly and was
/// therefore dropped (conservative) or otherwise adjusted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConformNote {
    /// What the note is about (constraint id, rule id, ...).
    pub context: String,
    /// Why the item could not be conformed.
    pub reason: String,
}

/// Outcome of rewriting one object constraint.
#[derive(Clone, Debug)]
pub enum RewriteOutcome {
    /// Conformed in place (possibly with renamed/converted parts).
    Kept(ObjectConstraint),
    /// Moved to a virtual class created by objectification.
    Reallocated(ObjectConstraint),
    /// Dropped; see the note.
    Dropped(ConformNote),
}

/// Rewrites formulas and constraints for one side against the side's
/// shared [`PlanIndex`] — one interned index serves every constraint and
/// every spec rule, instead of re-walking the schema per path.
pub struct Rewriter<'a> {
    /// The shared flattened schema/plan index.
    pub index: &'a PlanIndex<'a>,
}

impl<'a> Rewriter<'a> {
    /// Creates a rewriter over a side's interned index.
    pub fn new(index: &'a PlanIndex<'a>) -> Self {
        Rewriter { index }
    }

    /// Rewrites a path on `class`: objectified value attributes extend
    /// into the virtual class (`publisher` → `publisher.name`), every
    /// segment is renamed per the plan, and the terminal segment's
    /// conversion is returned for constant conversion.
    pub fn rewrite_path(
        &self,
        class: &ClassName,
        path: &Path,
    ) -> Result<(Path, Conversion), String> {
        let mut out = Vec::new();
        let mut cur = class.clone();
        let mut terminal = Conversion::Id;
        let mut i = 0;
        while i < path.0.len() {
            let attr = &path.0[i];
            let last = i + 1 == path.0.len();
            if let Some(o) = self.index.objectify_for(&cur, attr) {
                if last {
                    // Bare value attribute: extend into the virtual class.
                    let virt_attr = o
                        .attr_names
                        .iter()
                        .find(|(a, _)| a == attr)
                        .map(|(_, v)| v.clone())
                        .expect("objectify_for guarantees membership");
                    out.push(o.ref_attr.clone());
                    out.push(virt_attr);
                    terminal = Conversion::Id;
                    i += 1;
                    continue;
                }
                // Already-extended form `ref_attr.virt_attr` (appears in
                // repaired rule conditions written in conformed terms).
                let next = &path.0[i + 1];
                if i + 2 == path.0.len()
                    && attr == &o.ref_attr
                    && o.attr_names.iter().any(|(_, v)| v == next)
                {
                    out.push(o.ref_attr.clone());
                    out.push(next.clone());
                    terminal = Conversion::Id;
                    i += 2;
                    continue;
                }
                return Err(format!(
                    "path continues past objectified value attribute '{attr}'"
                ));
            }
            let (new_name, cv) = match self.index.attr_plan(&cur, attr) {
                Some(p) => (p.new_name.clone(), p.conversion.clone()),
                None => (attr.clone(), Conversion::Id),
            };
            out.push(new_name);
            terminal = cv;
            if !last {
                let def = self
                    .index
                    .attr(&cur, attr)
                    .map(|info| info.def)
                    .ok_or_else(|| format!("unknown attribute '{cur}.{attr}'"))?;
                match &def.ty {
                    Type::Ref(c2) => cur = c2.clone(),
                    other => {
                        return Err(format!(
                            "path navigates non-reference attribute '{attr}' of type {other}"
                        ))
                    }
                }
            }
            i += 1;
        }
        Ok((Path(out), terminal))
    }

    fn convert_const(&self, cv: &Conversion, v: &Value) -> Result<Value, String> {
        cv.apply(v)
            .ok_or_else(|| format!("constant {v} outside conversion domain of {cv}"))
    }

    fn adjust_op(&self, cv: &Conversion, op: CmpOp) -> Result<CmpOp, String> {
        match cv {
            Conversion::Id => Ok(op),
            Conversion::Multiply(k) | Conversion::Linear { a: k, .. } => {
                if *k > 0.0 {
                    Ok(op)
                } else if *k < 0.0 {
                    Ok(op.flip())
                } else {
                    Err("conversion with zero slope erases comparisons".into())
                }
            }
            Conversion::Table(_) => match op {
                CmpOp::Eq => Ok(op),
                CmpOp::Ne if cv.invert().is_some() => Ok(op),
                _ => Err("table conversion supports only (in)equality atoms".into()),
            },
        }
    }

    /// Rewrites an expression, requiring identity conversions on every
    /// path inside arithmetic (a converted attribute inside `a + b` would
    /// change the arithmetic's meaning).
    fn rewrite_expr_id_only(&self, class: &ClassName, e: &Expr) -> Result<Expr, String> {
        match e {
            Expr::Const(_) => Ok(e.clone()),
            Expr::Attr(p) => {
                let (p2, cv) = self.rewrite_path(class, p)?;
                if cv != Conversion::Id {
                    return Err(format!(
                        "attribute '{p}' under non-identity conversion inside a compound expression"
                    ));
                }
                Ok(Expr::Attr(p2))
            }
            Expr::Neg(inner) => Ok(Expr::Neg(Box::new(
                self.rewrite_expr_id_only(class, inner)?,
            ))),
            Expr::Bin(a, op, b) => Ok(Expr::Bin(
                Box::new(self.rewrite_expr_id_only(class, a)?),
                *op,
                Box::new(self.rewrite_expr_id_only(class, b)?),
            )),
        }
    }

    /// Rewrites a formula on `class` into conformed terms.
    pub fn rewrite_formula(&self, class: &ClassName, f: &Formula) -> Result<Formula, String> {
        match f {
            Formula::True | Formula::False => Ok(f.clone()),
            Formula::Cmp(a, op, b) => match (a, b) {
                (Expr::Attr(p), Expr::Const(v)) => {
                    let (p2, cv) = self.rewrite_path(class, p)?;
                    let v2 = self.convert_const(&cv, v)?;
                    let op2 = self.adjust_op(&cv, *op)?;
                    Ok(Formula::Cmp(Expr::Attr(p2), op2, Expr::Const(v2)))
                }
                (Expr::Const(v), Expr::Attr(p)) => {
                    let (p2, cv) = self.rewrite_path(class, p)?;
                    let v2 = self.convert_const(&cv, v)?;
                    let op2 = self.adjust_op(&cv, op.flip())?;
                    Ok(Formula::Cmp(Expr::Attr(p2), op2, Expr::Const(v2)))
                }
                (Expr::Attr(p), Expr::Attr(q)) => {
                    let (p2, cvp) = self.rewrite_path(class, p)?;
                    let (q2, cvq) = self.rewrite_path(class, q)?;
                    if cvp != cvq {
                        return Err(format!(
                            "attributes '{p}' and '{q}' compared under different conversions"
                        ));
                    }
                    let op2 = self.adjust_op(&cvp, *op)?;
                    Ok(Formula::Cmp(Expr::Attr(p2), op2, Expr::Attr(q2)))
                }
                _ => {
                    let a2 = self.rewrite_expr_id_only(class, a)?;
                    let b2 = self.rewrite_expr_id_only(class, b)?;
                    Ok(Formula::Cmp(a2, *op, b2))
                }
            },
            Formula::In(e, set) => match e {
                Expr::Attr(p) => {
                    let (p2, cv) = self.rewrite_path(class, p)?;
                    let mut set2 = std::collections::BTreeSet::new();
                    for v in set {
                        set2.insert(self.convert_const(&cv, v)?);
                    }
                    Ok(Formula::In(Expr::Attr(p2), set2))
                }
                _ => Ok(Formula::In(
                    self.rewrite_expr_id_only(class, e)?,
                    set.clone(),
                )),
            },
            Formula::Contains(e, s) => match e {
                Expr::Attr(p) => {
                    let (p2, cv) = self.rewrite_path(class, p)?;
                    if cv != Conversion::Id {
                        return Err(format!("contains() on '{p}' under non-identity conversion"));
                    }
                    Ok(Formula::Contains(Expr::Attr(p2), s.clone()))
                }
                _ => Ok(Formula::Contains(
                    self.rewrite_expr_id_only(class, e)?,
                    s.clone(),
                )),
            },
            Formula::Not(inner) => Ok(Formula::Not(Box::new(self.rewrite_formula(class, inner)?))),
            Formula::And(fs) => Ok(Formula::And(
                fs.iter()
                    .map(|g| self.rewrite_formula(class, g))
                    .collect::<Result<_, _>>()?,
            )),
            Formula::Or(fs) => Ok(Formula::Or(
                fs.iter()
                    .map(|g| self.rewrite_formula(class, g))
                    .collect::<Result<_, _>>()?,
            )),
            Formula::Implies(a, b) => Ok(Formula::Implies(
                Box::new(self.rewrite_formula(class, a)?),
                Box::new(self.rewrite_formula(class, b)?),
            )),
        }
    }

    /// Maps a formula written in *conformed* terms back into the
    /// original terms of `class` (inverse attribute substitution and
    /// inverse domain conversion). Needed when a repair suggestion —
    /// phrased in conformed terms, like everything the designer sees —
    /// is applied to the original specification (§5.2.1's "change the
    /// object comparison rules").
    pub fn unrewrite_formula(&self, class: &ClassName, f: &Formula) -> Result<Formula, String> {
        // Enumerate original candidate paths (length ≤ 2) and build the
        // conformed → (original, inverse conversion) map.
        let schema = self.index.schema;
        let mut map: std::collections::BTreeMap<Path, (Path, Conversion)> =
            std::collections::BTreeMap::new();
        let mut candidates: Vec<Path> = Vec::new();
        for a in schema.all_attrs(class) {
            candidates.push(Path::attr(a.name.clone()));
            if let Type::Ref(target) = &a.ty {
                for b in schema.all_attrs(target) {
                    candidates.push(Path(vec![a.name.clone(), b.name.clone()]));
                }
            }
        }
        for orig in candidates {
            if let Ok((conformed, cv)) = self.rewrite_path(class, &orig) {
                if let Some(inv) = cv.invert() {
                    map.entry(conformed).or_insert((orig, inv));
                }
            }
        }
        let lookup = |p: &Path| -> Result<(Path, Conversion), String> {
            map.get(p)
                .cloned()
                .ok_or_else(|| format!("no original form for conformed path '{p}'"))
        };
        self.map_atoms(f, &|atom| match atom {
            Formula::Cmp(Expr::Attr(p), op, Expr::Const(v)) => {
                let (orig, inv) = lookup(p)?;
                let v2 = inv
                    .apply(v)
                    .ok_or_else(|| format!("constant {v} not invertible"))?;
                let op2 = self.adjust_op(&inv, *op)?;
                Ok(Formula::Cmp(Expr::Attr(orig), op2, Expr::Const(v2)))
            }
            Formula::Cmp(Expr::Const(v), op, Expr::Attr(p)) => {
                let (orig, inv) = lookup(p)?;
                let v2 = inv
                    .apply(v)
                    .ok_or_else(|| format!("constant {v} not invertible"))?;
                let op2 = self.adjust_op(&inv, op.flip())?;
                Ok(Formula::Cmp(Expr::Attr(orig), op2, Expr::Const(v2)))
            }
            Formula::Cmp(Expr::Attr(p), op, Expr::Attr(q)) => {
                let (po, pi) = lookup(p)?;
                let (qo, qi) = lookup(q)?;
                if pi != qi {
                    return Err("paths compared under different conversions".into());
                }
                Ok(Formula::Cmp(
                    Expr::Attr(po),
                    self.adjust_op(&pi, *op)?,
                    Expr::Attr(qo),
                ))
            }
            Formula::In(Expr::Attr(p), set) => {
                let (orig, inv) = lookup(p)?;
                let mut set2 = std::collections::BTreeSet::new();
                for v in set {
                    set2.insert(
                        inv.apply(v)
                            .ok_or_else(|| format!("constant {v} not invertible"))?,
                    );
                }
                Ok(Formula::In(Expr::Attr(orig), set2))
            }
            Formula::Contains(Expr::Attr(p), s) => {
                let (orig, inv) = lookup(p)?;
                if inv != Conversion::Id {
                    return Err("contains() under non-identity conversion".into());
                }
                Ok(Formula::Contains(Expr::Attr(orig), s.clone()))
            }
            other => Ok(other.clone()),
        })
    }

    /// Applies `f` to every atomic subformula, rebuilding the boolean
    /// structure.
    fn map_atoms(
        &self,
        f: &Formula,
        g: &impl Fn(&Formula) -> Result<Formula, String>,
    ) -> Result<Formula, String> {
        match f {
            Formula::True | Formula::False => Ok(f.clone()),
            Formula::Not(inner) => Ok(Formula::Not(Box::new(self.map_atoms(inner, g)?))),
            Formula::And(fs) => Ok(Formula::And(
                fs.iter()
                    .map(|x| self.map_atoms(x, g))
                    .collect::<Result<_, _>>()?,
            )),
            Formula::Or(fs) => Ok(Formula::Or(
                fs.iter()
                    .map(|x| self.map_atoms(x, g))
                    .collect::<Result<_, _>>()?,
            )),
            Formula::Implies(a, b) => Ok(Formula::Implies(
                Box::new(self.map_atoms(a, g)?),
                Box::new(self.map_atoms(b, g)?),
            )),
            atom => g(atom),
        }
    }

    /// Rewrites an object constraint; constraints whose (rewritten) paths
    /// all live inside an objectified value are *reallocated* to the
    /// virtual class (the paper's `oc2` → `VirtPublisher` example).
    pub fn rewrite_object_constraint(&self, c: &ObjectConstraint) -> RewriteOutcome {
        let formula = match self.rewrite_formula(&c.class, &c.formula) {
            Ok(f) => f,
            Err(reason) => {
                return RewriteOutcome::Dropped(ConformNote {
                    context: c.id.to_string(),
                    reason,
                })
            }
        };
        // Reallocation: all paths start with an objectification's ref
        // attribute on this constraint's class.
        for o in &self.index.plan.objectifications {
            if !self.index.is_subclass(&c.class, &o.described_class) {
                continue;
            }
            let paths = formula.paths();
            if !paths.is_empty()
                && paths
                    .iter()
                    .all(|p| p.head() == Some(&o.ref_attr) && p.len() > 1)
            {
                let stripped = formula.map_exprs(&|e| match e {
                    Expr::Attr(p) if p.head() == Some(&o.ref_attr) => {
                        Expr::Attr(Path(p.0[1..].to_vec()))
                    }
                    other => other.clone(),
                });
                let mut c2 = c.clone();
                c2.class = o.virt_class.clone();
                c2.formula = stripped;
                return RewriteOutcome::Reallocated(c2);
            }
        }
        let mut c2 = c.clone();
        c2.formula = formula;
        RewriteOutcome::Kept(c2)
    }

    /// Rewrites a class constraint (keys rename; aggregates rename +
    /// convert the bound when the aggregate commutes with the conversion).
    pub fn rewrite_class_constraint(
        &self,
        c: &ClassConstraint,
    ) -> Result<ClassConstraint, ConformNote> {
        let note = |reason: String| ConformNote {
            context: c.id.to_string(),
            reason,
        };
        match &c.body {
            ClassConstraintBody::Key(attrs) => {
                let mut renamed = Vec::new();
                for a in attrs {
                    let (p2, cv) = self
                        .rewrite_path(&c.class, &Path::attr(a.clone()))
                        .map_err(&note)?;
                    if cv != Conversion::Id && cv.invert().is_none() {
                        return Err(note(format!(
                            "key attribute '{a}' under non-injective conversion"
                        )));
                    }
                    if p2.len() != 1 {
                        return Err(note(format!("key attribute '{a}' was objectified")));
                    }
                    renamed.push(p2.head().expect("len 1").clone());
                }
                let mut c2 = c.clone();
                c2.body = ClassConstraintBody::Key(renamed);
                Ok(c2)
            }
            ClassConstraintBody::Aggregate {
                op,
                path,
                cmp,
                bound,
            } => {
                let (p2, cv) = self.rewrite_path(&c.class, path).map_err(&note)?;
                let (op2, cmp2, bound2) = match (&cv, op) {
                    (Conversion::Id, _) => (*op, *cmp, bound.clone()),
                    // count ignores the values entirely.
                    (_, AggOp::Count) => (*op, *cmp, bound.clone()),
                    // avg commutes with any affine map.
                    (Conversion::Multiply(k) | Conversion::Linear { a: k, .. }, AggOp::Avg) => {
                        let b2 = cv
                            .apply(bound)
                            .ok_or_else(|| note("aggregate bound not convertible".into()))?;
                        let c2 = if *k < 0.0 { cmp.flip() } else { *cmp };
                        (*op, c2, b2)
                    }
                    // sum commutes with pure scaling only.
                    (Conversion::Multiply(k), AggOp::Sum) => {
                        let b2 = cv
                            .apply(bound)
                            .ok_or_else(|| note("aggregate bound not convertible".into()))?;
                        let c2 = if *k < 0.0 { cmp.flip() } else { *cmp };
                        (*op, c2, b2)
                    }
                    // min/max commute with monotone affine maps; a negative
                    // slope swaps min and max.
                    (
                        Conversion::Multiply(k) | Conversion::Linear { a: k, .. },
                        AggOp::Min | AggOp::Max,
                    ) => {
                        let b2 = cv
                            .apply(bound)
                            .ok_or_else(|| note("aggregate bound not convertible".into()))?;
                        let swapped = if *k < 0.0 {
                            match op {
                                AggOp::Min => AggOp::Max,
                                AggOp::Max => AggOp::Min,
                                _ => unreachable!("matched Min/Max"),
                            }
                        } else {
                            *op
                        };
                        let c2 = if *k < 0.0 { cmp.flip() } else { *cmp };
                        (swapped, c2, b2)
                    }
                    _ => {
                        return Err(note(format!(
                            "aggregate {op} does not commute with conversion {cv}"
                        )))
                    }
                };
                let mut c2 = c.clone();
                c2.body = ClassConstraintBody::Aggregate {
                    op: op2,
                    path: p2,
                    cmp: cmp2,
                    bound: bound2,
                };
                Ok(c2)
            }
        }
    }

    /// Rewrites a database constraint (renames on both quantified
    /// classes; conversions must agree since the atom compares values
    /// across objects).
    pub fn rewrite_db_constraint(&self, c: &DbConstraint) -> Result<DbConstraint, ConformNote> {
        let mut atoms = Vec::new();
        for a in &c.atoms {
            let (outer2, cv_o) = if a.outer.is_this() {
                (a.outer.clone(), Conversion::Id)
            } else {
                self.rewrite_path(&c.outer_class, &a.outer)
                    .map_err(|e| ConformNote {
                        context: c.id.to_string(),
                        reason: e,
                    })?
            };
            let (inner2, cv_i) = if a.inner.is_this() {
                (a.inner.clone(), Conversion::Id)
            } else {
                self.rewrite_path(&c.inner_class, &a.inner)
                    .map_err(|e| ConformNote {
                        context: c.id.to_string(),
                        reason: e,
                    })?
            };
            if cv_o != cv_i {
                return Err(ConformNote {
                    context: c.id.to_string(),
                    reason: "atom compares attributes under different conversions".into(),
                });
            }
            atoms.push(interop_constraint::PairAtom {
                outer: outer2,
                op: a.op,
                inner: inner2,
            });
        }
        let mut c2 = c.clone();
        c2.atoms = atoms;
        Ok(c2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interned::PlanIndex;
    use crate::plan::{build_plans, SidePlan};
    use interop_constraint::{ConstraintId, Formula};
    use interop_model::{AttrName, ClassDef, DbName, Schema};
    use interop_spec::{ComparisonRule, Decision, InterCond, PropEq, Side, Spec};

    fn setup() -> (Schema, Schema, SidePlan, SidePlan) {
        let local = Schema::new(
            "CSLibrary",
            vec![
                ClassDef::new("Publication")
                    .attr("isbn", Type::Str)
                    .attr("publisher", Type::Str)
                    .attr("shopprice", Type::Real)
                    .attr("ourprice", Type::Real),
                ClassDef::new("ScientificPubl")
                    .isa("Publication")
                    .attr("rating", Type::Range(1, 5)),
                ClassDef::new("RefereedPubl").isa("ScientificPubl"),
            ],
        )
        .unwrap();
        let remote = Schema::new(
            "Bookseller",
            vec![
                ClassDef::new("Publisher").attr("name", Type::Str),
                ClassDef::new("Item")
                    .attr("isbn", Type::Str)
                    .attr("publisher", Type::Ref(ClassName::new("Publisher")))
                    .attr("shopprice", Type::Real)
                    .attr("libprice", Type::Real),
                ClassDef::new("Proceedings")
                    .isa("Item")
                    .attr("rating", Type::Range(1, 10)),
            ],
        )
        .unwrap();
        let mut spec = Spec::new("CSLibrary", "Bookseller");
        spec.add_rule(ComparisonRule::descriptivity(
            "r2",
            "Publication",
            vec!["publisher"],
            "Publisher",
            vec![InterCond::eq("publisher", "name")],
        ));
        spec.add_propeq(PropEq::named_after_remote(
            "Publication",
            "ourprice",
            "Item",
            "libprice",
            Conversion::Id,
            Conversion::Id,
            Decision::Trust(Side::Local),
        ));
        spec.add_propeq(PropEq::named_after_remote(
            "ScientificPubl",
            "rating",
            "Proceedings",
            "rating",
            Conversion::Multiply(2.0),
            Conversion::Id,
            Decision::Avg,
        ));
        spec.add_propeq(PropEq::named_after_remote(
            "Publication",
            "publisher",
            "Publisher",
            "name",
            Conversion::Id,
            Conversion::Id,
            Decision::Any,
        ));
        let (lp, rp) = build_plans(&spec, &local, &remote).unwrap();
        (local, remote, lp, rp)
    }

    fn cid(label: &str) -> ConstraintId {
        ConstraintId::new(
            &DbName::new("CSLibrary"),
            &ClassName::new("Publication"),
            label,
        )
    }

    #[test]
    fn paper_rating_conversion() {
        // §4: RefereedPubl ocl `rating >= 2` conformed via multiply(2)
        // becomes `rating >= 4`.
        let (local, _, lp, _) = setup();
        let idx = PlanIndex::new(&local, &lp);
        let rw = Rewriter::new(&idx);
        let c = ObjectConstraint::new(
            ConstraintId::new(
                &DbName::new("CSLibrary"),
                &ClassName::new("RefereedPubl"),
                "oc1",
            ),
            "RefereedPubl",
            Formula::cmp("rating", CmpOp::Ge, 2i64),
        );
        match rw.rewrite_object_constraint(&c) {
            RewriteOutcome::Kept(c2) => {
                assert_eq!(c2.formula.to_string(), "rating >= 4");
            }
            other => panic!("expected Kept, got {other:?}"),
        }
    }

    #[test]
    fn paper_publisher_reallocation() {
        // §4: oc2 `publisher in KNOWNPUBLISHERS` moves to VirtPublisher as
        // `name in KNOWNPUBLISHERS`.
        let (local, _, lp, _) = setup();
        let idx = PlanIndex::new(&local, &lp);
        let rw = Rewriter::new(&idx);
        let c = ObjectConstraint::new(
            cid("oc2"),
            "Publication",
            Formula::isin("publisher", [Value::str("ACM"), Value::str("IEEE")]),
        );
        match rw.rewrite_object_constraint(&c) {
            RewriteOutcome::Reallocated(c2) => {
                assert_eq!(c2.class.as_str(), "VirtPublisher");
                assert_eq!(c2.formula.to_string(), "name in {'ACM', 'IEEE'}");
            }
            other => panic!("expected Reallocated, got {other:?}"),
        }
    }

    #[test]
    fn rename_in_two_path_comparison() {
        // ocl: ourprice <= shopprice → libprice <= shopprice.
        let (local, _, lp, _) = setup();
        let idx = PlanIndex::new(&local, &lp);
        let rw = Rewriter::new(&idx);
        let c = ObjectConstraint::new(
            cid("oc1"),
            "Publication",
            Formula::Cmp(Expr::attr("ourprice"), CmpOp::Le, Expr::attr("shopprice")),
        );
        match rw.rewrite_object_constraint(&c) {
            RewriteOutcome::Kept(c2) => {
                assert_eq!(c2.formula.to_string(), "libprice <= shopprice");
            }
            other => panic!("expected Kept, got {other:?}"),
        }
    }

    #[test]
    fn differing_conversions_in_comparison_dropped() {
        let (local, _, lp, _) = setup();
        let idx = PlanIndex::new(&local, &lp);
        let rw = Rewriter::new(&idx);
        let c = ObjectConstraint::new(
            ConstraintId::new(
                &DbName::new("CSLibrary"),
                &ClassName::new("ScientificPubl"),
                "ocx",
            ),
            "ScientificPubl",
            // rating is multiplied by 2; shopprice is identity — cannot
            // compare them after conformation.
            Formula::Cmp(Expr::attr("rating"), CmpOp::Le, Expr::attr("shopprice")),
        );
        match rw.rewrite_object_constraint(&c) {
            RewriteOutcome::Dropped(note) => {
                assert!(note.reason.contains("different conversions"));
            }
            other => panic!("expected Dropped, got {other:?}"),
        }
    }

    #[test]
    fn in_set_converted() {
        let (local, _, lp, _) = setup();
        let idx = PlanIndex::new(&local, &lp);
        let rw = Rewriter::new(&idx);
        let f = Formula::isin("rating", [1i64, 3]);
        let out = rw
            .rewrite_formula(&ClassName::new("ScientificPubl"), &f)
            .unwrap();
        assert_eq!(out.to_string(), "rating in {2, 6}");
    }

    #[test]
    fn remote_side_ref_paths_survive() {
        // Remote constraints use publisher.name; the remote plan leaves
        // Publisher.name in place (it is the conformed name).
        let (_, remote, _, rp) = setup();
        let idx = PlanIndex::new(&remote, &rp);
        let rw = Rewriter::new(&idx);
        let f = Formula::cmp("publisher.name", CmpOp::Eq, "ACM").implies(Formula::cmp(
            "rating",
            CmpOp::Ge,
            6i64,
        ));
        let out = rw
            .rewrite_formula(&ClassName::new("Proceedings"), &f)
            .unwrap();
        assert_eq!(
            out.to_string(),
            "publisher.name = 'ACM' implies rating >= 6"
        );
    }

    #[test]
    fn aggregate_bound_scaling() {
        let (local, _, lp, _) = setup();
        let idx = PlanIndex::new(&local, &lp);
        let rw = Rewriter::new(&idx);
        // avg rating < 4 on the 1..5 scale → avg rating < 8 on 1..10.
        let c = ClassConstraint::new(
            ConstraintId::new(
                &DbName::new("CSLibrary"),
                &ClassName::new("ScientificPubl"),
                "cc1",
            ),
            "ScientificPubl",
            ClassConstraintBody::Aggregate {
                op: AggOp::Avg,
                path: Path::parse("rating"),
                cmp: CmpOp::Lt,
                bound: Value::int(4),
            },
        );
        let c2 = rw.rewrite_class_constraint(&c).unwrap();
        match &c2.body {
            ClassConstraintBody::Aggregate { bound, .. } => assert_eq!(bound, &Value::int(8)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn key_rename_and_objectified_key_rejected() {
        let (local, _, lp, _) = setup();
        let idx = PlanIndex::new(&local, &lp);
        let rw = Rewriter::new(&idx);
        let key = ClassConstraint::key(cid("cc1"), "Publication", vec!["isbn"]);
        let out = rw.rewrite_class_constraint(&key).unwrap();
        match &out.body {
            ClassConstraintBody::Key(attrs) => assert_eq!(attrs, &[AttrName::new("isbn")]),
            other => panic!("unexpected {other:?}"),
        }
        let bad = ClassConstraint::key(cid("cc9"), "Publication", vec!["publisher"]);
        assert!(rw.rewrite_class_constraint(&bad).is_err());
    }

    #[test]
    fn contains_under_conversion_dropped() {
        let (local, _, lp, _) = setup();
        let idx = PlanIndex::new(&local, &lp);
        let rw = Rewriter::new(&idx);
        let f = Formula::Contains(Expr::attr("rating"), "x".into());
        assert!(rw
            .rewrite_formula(&ClassName::new("ScientificPubl"), &f)
            .is_err());
    }
}
