//! Delta-driven re-conformation: recompute the conformed image of just
//! the source objects a mutation touched, instead of re-running
//! [`crate::objectify::conform_database`] over the whole database.
//!
//! # Invariants
//!
//! * **Conformation is per-object plus a virtual-object registry.** A
//!   conformed object depends only on its own source attributes and on
//!   the ids of the virtual objects its objectified tuples map to — so
//!   a source mutation can only change the conformed image of (a) the
//!   touched objects themselves and (b) owners of a virtual object
//!   whose id moved because its *minimum owner* changed. [`VirtRegistry::reconform`]
//!   emits exactly that closure as [`ConformedDelta`]s.
//! * **Virtual ids are a pure function of content.** A virtual object's
//!   id derives from its minimum owner's serial and the
//!   objectification's plan position (see
//!   [`crate::objectify::conform_database`]); the registry maintains
//!   the owner sets so incremental re-conformation lands on exactly the
//!   ids a from-scratch conformation of the mutated database would
//!   assign. The differential property suites pin this byte-for-byte.

use std::collections::BTreeSet;

use interop_model::fx::FxHashMap;
use interop_model::{Database, Object, ObjectId, Value};

use crate::interned::PlanIndex;
use crate::objectify::{conform_object, make_virt_object, virt_id_for};
use crate::plan::ConformError;

/// One conformed-database patch produced by [`VirtRegistry::reconform`].
#[derive(Clone, Debug)]
pub enum ConformedDelta {
    /// Insert, or replace the previous image of, this conformed object
    /// (covers both source objects and virtual objects).
    Upserted(Object),
    /// The conformed object with this id no longer exists.
    Removed(ObjectId),
}

/// An objectification key: (position in `plan.objectifications`, value
/// tuple). Each key names one virtual object.
type VirtKey = (usize, Vec<Value>);

/// The owner sets behind one side's virtual objects, maintained across
/// mutations so [`VirtRegistry::reconform`] can tell when a virtual object appears,
/// disappears, or changes id (minimum owner moved).
#[derive(Clone, Debug, Default)]
pub struct VirtRegistry {
    /// Owner serials per objectified value tuple, sorted so the minimum
    /// owner (which names the virtual object) is O(1).
    owners: FxHashMap<VirtKey, BTreeSet<u64>>,
    /// Each owner's current tuples (its pre-image in `owners`), so a
    /// mutation diff needs no access to the pre-mutation source object.
    owner_tuples: FxHashMap<ObjectId, Vec<VirtKey>>,
}

/// The objectified tuples `obj` owns: at most one per objectification,
/// present only when the objectification's reference attribute is set
/// (mirrors the scratch pass, which keys creation off the ref attr).
fn owner_tuples_of(obj: &Object, index: &PlanIndex) -> Vec<VirtKey> {
    let mut out = Vec::new();
    for attr in obj.attrs.keys() {
        if let Some((opos, o)) = index.objectify_pos_for(&obj.class, attr) {
            if attr == &o.ref_attr {
                let tuple = o
                    .attr_names
                    .iter()
                    .map(|(a, _)| obj.get(a).clone())
                    .collect();
                out.push((opos, tuple));
            }
        }
    }
    out
}

impl VirtRegistry {
    /// Builds the registry for a source database (O(n), once per
    /// pipeline construction).
    pub fn new(db: &Database, index: &PlanIndex) -> Self {
        let mut reg = VirtRegistry::default();
        for obj in db.objects() {
            // The registry stores bare owner serials and reconstructs
            // ids as `ObjectId::new(src.space(), serial)` on re-emit,
            // so — unlike the scratch pass, which tolerates any single
            // owner space — delta tracking requires owners to live in
            // the database's own allocation space. This holds for every
            // live `Store`-backed source, the only place deltas flow
            // from.
            debug_assert_eq!(
                obj.id.space(),
                db.space(),
                "delta tracking requires owner ids in the source database's space"
            );
            let tuples = owner_tuples_of(obj, index);
            for (opos, tuple) in &tuples {
                reg.owners
                    .entry((*opos, tuple.clone()))
                    .or_default()
                    .insert(obj.id.serial());
            }
            if !tuples.is_empty() {
                reg.owner_tuples.insert(obj.id, tuples);
            }
        }
        reg
    }

    /// The current id of the virtual object for `key`, if any owner
    /// remains.
    fn virt_id(&self, virt_space: u32, nobj: u64, key: &VirtKey) -> Option<ObjectId> {
        self.owners
            .get(key)
            .and_then(|s| s.first())
            .map(|&min| virt_id_for(virt_space, min, nobj, key.0))
    }

    /// Re-conforms the `touched` source objects against the
    /// post-mutation database `src`, updating the registry and emitting
    /// the conformed-database patch. `conformed` is the current (not yet
    /// patched) conformed database — consulted only to decide whether a
    /// now-absent source id needs a `Removed` delta.
    ///
    /// Applying the returned deltas in order to `conformed` yields the
    /// database `conform_database(src, index, virt_space)` would build,
    /// up to extent insertion order (object sets and contents are
    /// identical; nothing downstream reads conformed extent order).
    pub fn reconform(
        &mut self,
        src: &Database,
        index: &PlanIndex,
        virt_space: u32,
        conformed: &Database,
        touched: &[ObjectId],
    ) -> Result<Vec<ConformedDelta>, ConformError> {
        let nobj = index.plan.objectifications.len() as u64;
        // Phase A: diff ownership. `old_min` snapshots, per affected
        // key, the minimum owner before this call (first touch wins).
        let mut old_min: FxHashMap<VirtKey, Option<u64>> = FxHashMap::default();
        for &id in touched {
            let old = self.owner_tuples.remove(&id).unwrap_or_default();
            let new = match src.object(id) {
                Some(obj) => owner_tuples_of(obj, index),
                None => Vec::new(),
            };
            for key in &old {
                if new.contains(key) {
                    continue;
                }
                if !old_min.contains_key(key) {
                    old_min.insert(key.clone(), self.owners[key].first().copied());
                }
                let set = self.owners.get_mut(key).expect("tracked owner");
                set.remove(&id.serial());
                if set.is_empty() {
                    self.owners.remove(key);
                }
            }
            for key in &new {
                if old.contains(key) {
                    continue;
                }
                if !old_min.contains_key(key) {
                    old_min.insert(
                        key.clone(),
                        self.owners.get(key).and_then(|s| s.first().copied()),
                    );
                }
                self.owners
                    .entry(key.clone())
                    .or_default()
                    .insert(id.serial());
            }
            if !new.is_empty() {
                self.owner_tuples.insert(id, new);
            }
        }
        // Phase B: emit. Virtual removals go first (a moved tuple can
        // re-assign a freed id in the same patch), then virtual
        // upserts, then source-object deltas in id order.
        let mut virt_removed: Vec<ObjectId> = Vec::new();
        let mut virt_upserted: Vec<Object> = Vec::new();
        let mut reemit: BTreeSet<ObjectId> = touched.iter().copied().collect();
        for (key, old) in &old_min {
            let new = self.owners.get(key).and_then(|s| s.first().copied());
            if *old == new {
                continue;
            }
            if let Some(o) = old {
                virt_removed.push(virt_id_for(virt_space, *o, nobj, key.0));
            }
            if let Some(n) = new {
                let o = &index.plan.objectifications[key.0];
                virt_upserted.push(make_virt_object(
                    virt_id_for(virt_space, n, nobj, key.0),
                    o,
                    &key.1,
                ));
                if old.is_some() {
                    // The id moved under surviving owners: every owner's
                    // conformed reference is stale, touched or not.
                    for &serial in &self.owners[key] {
                        reemit.insert(ObjectId::new(src.space(), serial));
                    }
                }
            }
        }
        virt_removed.sort_unstable();
        virt_upserted.sort_unstable_by_key(|o| o.id);
        let mut deltas: Vec<ConformedDelta> = virt_removed
            .into_iter()
            .map(ConformedDelta::Removed)
            .collect();
        deltas.extend(virt_upserted.into_iter().map(ConformedDelta::Upserted));
        for id in reemit {
            match src.object(id) {
                Some(obj) => {
                    let new_obj = conform_object(obj, index, |opos, _, tuple| {
                        self.virt_id(virt_space, nobj, &(opos, tuple))
                            .expect("registry tracks every live tuple")
                    })?;
                    deltas.push(ConformedDelta::Upserted(new_obj));
                }
                None => {
                    if conformed.object(id).is_some() {
                        deltas.push(ConformedDelta::Removed(id));
                    }
                }
            }
        }
        Ok(deltas)
    }
}

/// Applies a [`VirtRegistry::reconform`](VirtRegistry::reconform) patch to a conformed
/// database in place.
pub fn apply_deltas(db: &mut Database, deltas: &[ConformedDelta]) -> Result<(), ConformError> {
    for d in deltas {
        match d {
            ConformedDelta::Upserted(obj) => {
                let _ = db.remove(obj.id);
                db.insert(obj.clone())
                    .map_err(|e| ConformError::Model(e.to_string()))?;
            }
            ConformedDelta::Removed(id) => {
                db.remove(*id)
                    .map_err(|e| ConformError::Model(e.to_string()))?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::build_plans;
    use interop_model::{AttrName, ClassDef, ClassName, Schema, Type};
    use interop_spec::{ComparisonRule, InterCond, Spec};

    fn setup() -> (Database, crate::plan::SidePlan) {
        let local = Schema::new(
            "L",
            vec![ClassDef::new("Publication")
                .attr("isbn", Type::Str)
                .attr("publisher", Type::Str)],
        )
        .unwrap();
        let remote = Schema::new(
            "R",
            vec![ClassDef::new("Publisher").attr("name", Type::Str)],
        )
        .unwrap();
        let mut spec = Spec::new("L", "R");
        spec.add_rule(ComparisonRule::descriptivity(
            "r",
            "Publication",
            vec!["publisher"],
            "Publisher",
            vec![InterCond::eq("publisher", "name")],
        ));
        let (lp, _) = build_plans(&spec, &local, &remote).unwrap();
        let mut db = Database::new(local, 1);
        db.create(
            "Publication",
            vec![("isbn", "A".into()), ("publisher", "ACM".into())],
        )
        .unwrap();
        db.create(
            "Publication",
            vec![("isbn", "B".into()), ("publisher", "ACM".into())],
        )
        .unwrap();
        db.create(
            "Publication",
            vec![("isbn", "C".into()), ("publisher", "IEEE".into())],
        )
        .unwrap();
        (db, lp)
    }

    /// Differential check: apply `mutate`, reconform the touched ids, and
    /// require the patched conformed database to hold exactly the objects
    /// a from-scratch conformation of the mutated source would.
    fn check(mutate: impl FnOnce(&mut Database) -> Vec<ObjectId>) {
        let (mut db, lp) = setup();
        let (mut conformed, mut reg) = {
            let idx = PlanIndex::new(&db.schema, &lp);
            (
                crate::objectify::conform_database(&db, &idx, 9).unwrap(),
                VirtRegistry::new(&db, &idx),
            )
        };
        let touched = mutate(&mut db);
        let idx = PlanIndex::new(&db.schema, &lp);
        let deltas = reg.reconform(&db, &idx, 9, &conformed, &touched).unwrap();
        apply_deltas(&mut conformed, &deltas).unwrap();
        let scratch = crate::objectify::conform_database(&db, &idx, 9).unwrap();
        let dump =
            |d: &Database| -> Vec<String> { d.objects().map(|o| format!("{o:?}")).collect() };
        assert_eq!(dump(&conformed), dump(&scratch));
    }

    #[test]
    fn update_moves_object_between_virtuals() {
        check(|db| {
            let id = ObjectId::new(1, 1);
            db.update(id, "publisher", Value::str("IEEE")).unwrap();
            vec![id]
        });
    }

    #[test]
    fn removing_min_owner_moves_virtual_id_and_rewrites_refs() {
        // Object 1:0 is the minimum ACM owner; removing it hands the
        // virtual object to 1:1 under a new id, and 1:1's reference must
        // be rewritten even though 1:1 itself was not touched.
        check(|db| {
            let id = ObjectId::new(1, 0);
            db.remove(id).unwrap();
            vec![id]
        });
    }

    #[test]
    fn insert_new_publisher_creates_virtual() {
        check(|db| {
            let id = db
                .create(
                    "Publication",
                    vec![("isbn", "D".into()), ("publisher", "Springer".into())],
                )
                .unwrap();
            vec![id]
        });
    }

    #[test]
    fn insert_below_min_takes_over_virtual() {
        // A fresh owner with a smaller serial than the current minimum
        // cannot happen through `create` (serials are monotone), but a
        // direct insert can: the virtual id must move to the new owner.
        check(|db| {
            db.remove(ObjectId::new(1, 0)).unwrap();
            let mut o = Object::new(ObjectId::new(1, 0), ClassName::new("Publication"));
            o.set("isbn", Value::str("A2"));
            o.set("publisher", Value::str("IEEE"));
            db.insert(o).unwrap();
            vec![ObjectId::new(1, 0)]
        });
    }

    #[test]
    fn last_owner_removal_drops_virtual() {
        check(|db| {
            let id = ObjectId::new(1, 2); // sole IEEE owner
            db.remove(id).unwrap();
            vec![id]
        });
    }

    #[test]
    fn rollback_shaped_noop_emits_nothing() {
        let (mut db, lp) = setup();
        let (conformed, mut reg) = {
            let idx = PlanIndex::new(&db.schema, &lp);
            (
                crate::objectify::conform_database(&db, &idx, 9).unwrap(),
                VirtRegistry::new(&db, &idx),
            )
        };
        // Insert then remove (a rolled-back txn reports both as touched).
        let id = db
            .create(
                "Publication",
                vec![("isbn", "D".into()), ("publisher", "X".into())],
            )
            .unwrap();
        db.remove(id).unwrap();
        let idx = PlanIndex::new(&db.schema, &lp);
        let deltas = reg.reconform(&db, &idx, 9, &conformed, &[id]).unwrap();
        assert!(deltas.is_empty(), "deltas: {deltas:?}");
    }

    #[test]
    fn null_tuple_values_conform_like_scratch() {
        check(|db| {
            let id = db
                .create("Publication", vec![("isbn", "E".into())])
                .unwrap();
            // publisher left null: no ref attr set → no virtual object,
            // matching the scratch pass.
            let _ = id;
            vec![id]
        });
    }

    #[test]
    fn registry_tracks_attr_name_not_value_updates() {
        // Updating a non-objectified attribute must not disturb the
        // registry or the virtual objects.
        check(|db| {
            let id = ObjectId::new(1, 0);
            db.update(id, "isbn", Value::str("A-2nd")).unwrap();
            vec![id]
        });
    }

    #[test]
    fn conformed_attr_rename_reflected_in_delta() {
        let (db, lp) = setup();
        let idx = PlanIndex::new(&db.schema, &lp);
        let conformed = crate::objectify::conform_database(&db, &idx, 9).unwrap();
        let obj = conformed.object(ObjectId::new(1, 0)).unwrap();
        assert!(
            obj.get(&AttrName::new("publisher")).as_ref_id().is_some(),
            "objectified attribute became a reference"
        );
    }
}
