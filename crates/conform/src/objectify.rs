//! Database transformation: attribute renames, value conversion, and
//! value→object conversion (virtual classes).

use interop_model::fx::FxHashMap;
use interop_model::{ClassDef, Database, Object, Schema, Type, Value};

use crate::interned::PlanIndex;
use crate::plan::ConformError;

/// The id of the virtual object owned (first) by source object serial
/// `owner_serial` under objectification position `opos`: serials
/// interleave as `owner_serial * nobj + opos`, injective because each
/// owner yields exactly one tuple per objectification. Shared by the
/// from-scratch pass and [`crate::delta::reconform`] so both derive the
/// same ids.
pub(crate) fn virt_id_for(
    virt_space: u32,
    owner_serial: u64,
    nobj: u64,
    opos: usize,
) -> interop_model::ObjectId {
    interop_model::ObjectId::new(virt_space, owner_serial * nobj + opos as u64)
}

/// Applies a side's plan to its database: builds the conformed schema
/// (renamed/retyped attributes, virtual classes), converts every stored
/// value, and materialises virtual objects from objectified values.
///
/// `virt_space` tags the object ids of created virtual objects; it must
/// differ from both component databases' spaces.
pub fn conform_database(
    db: &Database,
    index: &PlanIndex,
    virt_space: u32,
) -> Result<Database, ConformError> {
    let schema = conform_schema(index)?;
    let mut out = Database::new(schema, db.space());
    // Virtual object registry: (objectification position, value tuple) →
    // id. Each virtual id derives from its *first* (minimum-serial) owner:
    // `owner.serial * nobj + opos`, injective because every owner yields
    // one tuple per objectification. Objects iterate in id order, so the
    // deriving owner is the tuple's minimum owner — making the id a pure
    // function of database content, which is what lets `reconform` keep
    // untouched virtual ids stable across source mutations. (Positions
    // index `plan.objectifications`; each position owns a distinct
    // virtual class, so keying by position equals keying by class.)
    let mut virt_ids: FxHashMap<(usize, Vec<Value>), interop_model::ObjectId> =
        FxHashMap::default();
    let nobj = index.plan.objectifications.len() as u64;
    // Serial-derived virtual ids are injective as long as every owner
    // lives in ONE space — which may legitimately differ from the
    // database's own allocation space (a materialised integrated view
    // keeps its objects' global-space ids while declaring a fresh
    // space for future creations).
    let mut owner_space: Option<u32> = None;
    for obj in db.objects() {
        debug_assert_eq!(
            *owner_space.get_or_insert(obj.id.space()),
            obj.id.space(),
            "virtual-id derivation requires a single-space source database"
        );
        let new_obj = conform_object(obj, index, |opos, o, tuple| {
            *virt_ids.entry((opos, tuple.clone())).or_insert_with(|| {
                let id = virt_id_for(virt_space, obj.id.serial(), nobj, opos);
                out.insert(make_virt_object(id, o, &tuple))
                    .expect("virtual object matches virtual schema");
                id
            })
        })?;
        out.insert(new_obj)
            .map_err(|e| ConformError::Model(e.to_string()))?;
    }
    Ok(out)
}

/// Conforms one source object: renames/converts planned attributes and
/// replaces objectified value tuples with a reference obtained from
/// `virt_ref(opos, objectify, tuple)`. Shared by [`conform_database`]
/// (which creates virtual objects on first encounter) and
/// [`crate::delta::reconform`] (which resolves ids from its registry),
/// so both emit byte-identical conformed objects.
pub(crate) fn conform_object(
    obj: &Object,
    index: &PlanIndex,
    mut virt_ref: impl FnMut(usize, &crate::plan::Objectify, Vec<Value>) -> interop_model::ObjectId,
) -> Result<Object, ConformError> {
    let mut new_obj = Object::new(obj.id, obj.class.clone());
    for (attr, value) in &obj.attrs {
        if let Some((opos, o)) = index.objectify_pos_for(&obj.class, attr) {
            // Collect the full value tuple for this objectification.
            if attr != &o.ref_attr {
                continue; // handled when we meet the ref attr
            }
            let tuple: Vec<Value> = o
                .attr_names
                .iter()
                .map(|(a, _)| obj.get(a).clone())
                .collect();
            let virt_id = virt_ref(opos, o, tuple);
            new_obj.set(o.ref_attr.clone(), Value::Ref(virt_id));
            continue;
        }
        let (new_name, converted) = match index.attr_plan(&obj.class, attr) {
            Some(ap) => {
                let v =
                    ap.conversion
                        .apply(value)
                        .ok_or_else(|| ConformError::UnconvertibleValue {
                            class: obj.class.clone(),
                            attr: attr.clone(),
                            value: value.to_string(),
                        })?;
                (ap.new_name.clone(), v)
            }
            None => (attr.clone(), value.clone()),
        };
        new_obj.set(new_name, converted);
    }
    Ok(new_obj)
}

/// Materialises the virtual object for an objectified value `tuple`.
pub(crate) fn make_virt_object(
    id: interop_model::ObjectId,
    o: &crate::plan::Objectify,
    tuple: &[Value],
) -> Object {
    let mut v = Object::new(id, o.virt_class.clone());
    for ((_, virt_attr), val) in o.attr_names.iter().zip(tuple.iter()) {
        v.set(virt_attr.clone(), val.clone());
    }
    v
}

/// Builds the conformed schema: renames/retypes planned attributes,
/// replaces objectified value attributes with a reference to the new
/// virtual class, and installs the virtual classes.
pub fn conform_schema(index: &PlanIndex) -> Result<Schema, ConformError> {
    let schema = index.schema;
    let plan = index.plan;
    let mut defs: Vec<ClassDef> = Vec::new();
    for def in schema.classes() {
        let mut new_def = ClassDef::new(def.name.clone());
        if let Some(p) = &def.parent {
            new_def = new_def.isa(p.clone());
        }
        if def.virtual_class {
            new_def = new_def.virt();
        }
        for a in &def.attrs {
            if let Some(o) = index.objectify_for(&def.name, &a.name) {
                if a.name == o.ref_attr {
                    new_def = new_def.attr(o.ref_attr.clone(), Type::Ref(o.virt_class.clone()));
                }
                // Non-ref value attributes disappear into the virtual class.
                continue;
            }
            match index.attr_plan(&def.name, &a.name) {
                // Only rename/retype at the declaring class (the plan's
                // class must be an ancestor-or-self of the declarer).
                Some(ap) => {
                    new_def = new_def.attr(ap.new_name.clone(), ap.new_type.clone());
                }
                None => {
                    new_def = new_def.attr(a.name.clone(), a.ty.clone());
                }
            }
        }
        defs.push(new_def);
    }
    // Virtual classes for objectifications.
    for o in &plan.objectifications {
        let mut vdef = ClassDef::new(o.virt_class.clone()).virt();
        for (local_attr, virt_attr) in &o.attr_names {
            let ty = schema
                .resolve_attr(&o.described_class, local_attr)
                .map(|(_, d)| d.ty.clone())
                .ok_or_else(|| ConformError::UnknownProperty {
                    class: o.described_class.clone(),
                    path: local_attr.to_string(),
                })?;
            vdef = vdef.attr(virt_attr.clone(), ty);
        }
        defs.push(vdef);
    }
    Schema::new(schema.db.clone(), defs).map_err(|e| ConformError::Model(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{build_plans, SidePlan};
    use interop_model::{AttrName, ClassName};
    use interop_spec::{ComparisonRule, Conversion, Decision, InterCond, PropEq, Side, Spec};

    fn setup() -> (Database, SidePlan) {
        let local = Schema::new(
            "CSLibrary",
            vec![
                ClassDef::new("Publication")
                    .attr("isbn", Type::Str)
                    .attr("publisher", Type::Str)
                    .attr("ourprice", Type::Real),
                ClassDef::new("ScientificPubl")
                    .isa("Publication")
                    .attr("rating", Type::Range(1, 5)),
            ],
        )
        .unwrap();
        let remote = Schema::new(
            "Bookseller",
            vec![
                ClassDef::new("Publisher").attr("name", Type::Str),
                ClassDef::new("Item")
                    .attr("isbn", Type::Str)
                    .attr("libprice", Type::Real),
                ClassDef::new("Proceedings")
                    .isa("Item")
                    .attr("rating", Type::Range(1, 10)),
            ],
        )
        .unwrap();
        let mut spec = Spec::new("CSLibrary", "Bookseller");
        spec.add_rule(ComparisonRule::descriptivity(
            "r2",
            "Publication",
            vec!["publisher"],
            "Publisher",
            vec![InterCond::eq("publisher", "name")],
        ));
        spec.add_propeq(PropEq::named_after_remote(
            "Publication",
            "ourprice",
            "Item",
            "libprice",
            Conversion::Id,
            Conversion::Id,
            Decision::Trust(Side::Local),
        ));
        spec.add_propeq(PropEq::named_after_remote(
            "ScientificPubl",
            "rating",
            "Proceedings",
            "rating",
            Conversion::Multiply(2.0),
            Conversion::Id,
            Decision::Avg,
        ));
        let (lp, _) = build_plans(&spec, &local, &remote).unwrap();
        let mut db = Database::new(local, 1);
        db.create(
            "ScientificPubl",
            vec![
                ("isbn", "A".into()),
                ("publisher", "ACM".into()),
                ("ourprice", 26.0.into()),
                ("rating", 3i64.into()),
            ],
        )
        .unwrap();
        db.create(
            "Publication",
            vec![("isbn", "B".into()), ("publisher", "ACM".into())],
        )
        .unwrap();
        db.create(
            "Publication",
            vec![("isbn", "C".into()), ("publisher", "IEEE".into())],
        )
        .unwrap();
        (db, lp)
    }

    #[test]
    fn schema_gains_virtual_class_and_renames() {
        let (db, lp) = setup();
        let idx = PlanIndex::new(&db.schema, &lp);
        let s2 = conform_schema(&idx).unwrap();
        let virt = s2.class(&ClassName::new("VirtPublisher")).unwrap();
        assert!(virt.virtual_class);
        assert_eq!(virt.attrs[0].name, AttrName::new("name"));
        // publisher attr became a reference.
        let (_, pdef) = s2
            .resolve_attr(&ClassName::new("Publication"), &AttrName::new("publisher"))
            .unwrap();
        assert_eq!(pdef.ty, Type::Ref(ClassName::new("VirtPublisher")));
        // ourprice renamed to libprice.
        assert!(s2
            .resolve_attr(&ClassName::new("Publication"), &AttrName::new("libprice"))
            .is_some());
        assert!(s2
            .resolve_attr(&ClassName::new("Publication"), &AttrName::new("ourprice"))
            .is_none());
        // rating retyped to the joined 1..10 scale.
        let (_, rdef) = s2
            .resolve_attr(&ClassName::new("ScientificPubl"), &AttrName::new("rating"))
            .unwrap();
        assert_eq!(rdef.ty, Type::Range(1, 10));
    }

    #[test]
    fn values_converted_and_virt_objects_deduped() {
        let (db, lp) = setup();
        let idx = PlanIndex::new(&db.schema, &lp);
        let out = conform_database(&db, &idx, 9).unwrap();
        // Two distinct publishers → two virtual objects.
        assert_eq!(out.extent(&ClassName::new("VirtPublisher")).len(), 2);
        // Rating 3 on the 1..5 scale became 6 on the 1..10 scale.
        let sci = out.extent(&ClassName::new("ScientificPubl"))[0];
        let obj = out.object(sci).unwrap();
        assert_eq!(obj.get(&AttrName::new("rating")), &Value::int(6));
        assert_eq!(obj.get(&AttrName::new("libprice")), &Value::real(26.0));
        assert!(obj.get(&AttrName::new("ourprice")).is_null());
        // publisher now references a VirtPublisher carrying name='ACM'.
        let pref = obj.get(&AttrName::new("publisher")).as_ref_id().unwrap();
        assert_eq!(pref.space(), 9);
        let virt = out.object(pref).unwrap();
        assert_eq!(virt.get(&AttrName::new("name")), &Value::str("ACM"));
        // The two 'ACM' publications share one virtual object.
        let pubs = out.extension(&ClassName::new("Publication"));
        let acm_refs: Vec<_> = pubs
            .iter()
            .filter_map(|id| {
                out.object(*id)
                    .unwrap()
                    .get(&AttrName::new("publisher"))
                    .as_ref_id()
            })
            .filter(|r| out.object(*r).unwrap().get(&AttrName::new("name")) == &Value::str("ACM"))
            .collect();
        assert_eq!(acm_refs.len(), 2);
        assert_eq!(acm_refs[0], acm_refs[1]);
    }

    #[test]
    fn virtual_id_assignment_deterministic() {
        // Virtual ids are assigned in first-encounter order over the
        // id-ordered object iteration; the hashed registry must not leak
        // its iteration order into the output.
        let (db, lp) = setup();
        let idx = PlanIndex::new(&db.schema, &lp);
        let a = conform_database(&db, &idx, 9).unwrap();
        let b = conform_database(&db, &idx, 9).unwrap();
        let ids = |d: &Database| -> Vec<(interop_model::ObjectId, Value)> {
            d.extension(&ClassName::new("VirtPublisher"))
                .into_iter()
                .map(|id| {
                    (
                        id,
                        d.object(id).unwrap().get(&AttrName::new("name")).clone(),
                    )
                })
                .collect()
        };
        assert_eq!(ids(&a), ids(&b));
        // First ACM publication appears before the IEEE one, so the ACM
        // virtual object gets the first serial.
        assert_eq!(ids(&a)[0].1, Value::str("ACM"));
    }

    #[test]
    fn object_ids_preserved() {
        let (db, lp) = setup();
        let idx = PlanIndex::new(&db.schema, &lp);
        let out = conform_database(&db, &idx, 9).unwrap();
        for obj in db.objects() {
            assert!(out.object(obj.id).is_some(), "object {} lost", obj.id);
        }
        assert_eq!(out.len(), db.len() + 2); // + two virtual publishers
    }
}
