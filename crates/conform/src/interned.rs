//! The interned schema/plan index shared by every conform-phase rewrite.
//!
//! The naive [`SidePlan`] lookups walk the `isa` chain (allocating the
//! ancestor vector and cloning map keys) on every call, and the rewriter
//! re-resolves attributes against the schema per constraint path. The
//! conform phase performs those lookups once per *object attribute* and
//! once per *constraint path* — the ordered-map-everywhere pattern the
//! merge overhaul removed from `interop-merge`. [`PlanIndex`] flattens
//! the hierarchy once per side: for every class, every visible attribute
//! is resolved to its declaration and its planned action (objectify /
//! rename+convert / keep), and ancestor sets make subclass tests O(1).
//! All conform-phase consumers (database transformation, constraint
//! rewriting, spec conformation) share one index per side.
//!
//! Everything here is lookup-only acceleration: outputs are emitted by
//! the same sorted passes as before, so conform output stays
//! byte-identical (pinned by the snapshot suite).

use interop_model::fx::{FxHashMap, FxHashSet};
use interop_model::{AttrDef, AttrName, ClassName, Schema};

use crate::plan::{AttrPlan, Objectify, SidePlan};

/// The planned action for one `(class, attribute)`.
#[derive(Clone, Copy, Debug)]
pub enum AttrAction<'a> {
    /// The attribute's values are objectified into a virtual class. The
    /// `usize` is the objectification's position in
    /// `plan.objectifications` — virtual-object ids derive from it.
    Objectified(usize, &'a Objectify),
    /// The attribute is renamed/converted per a propeq.
    Planned(&'a AttrPlan),
}

/// One visible attribute of a class, fully resolved.
#[derive(Clone, Copy, Debug)]
pub struct AttrInfo<'a> {
    /// The declaration (carries the pre-conformation type).
    pub def: &'a AttrDef,
    /// The planned action, if any.
    pub action: Option<AttrAction<'a>>,
}

/// A side's schema and plan, flattened for O(1) lookups.
#[derive(Debug)]
pub struct PlanIndex<'a> {
    /// The side's (pre-conformation) schema.
    pub schema: &'a Schema,
    /// The side's plan.
    pub plan: &'a SidePlan,
    attrs: FxHashMap<ClassName, FxHashMap<AttrName, AttrInfo<'a>>>,
    ancestry: FxHashMap<ClassName, FxHashSet<ClassName>>,
}

impl<'a> PlanIndex<'a> {
    /// Builds the index top-down: parents are resolved before children,
    /// and each child *inherits* its parent's resolved attribute map
    /// (identifier clones are refcount bumps), so every declared
    /// attribute is resolved exactly once instead of once per
    /// (descendant, attribute) pair.
    ///
    /// Assumes the plan came from [`crate::plan::build_plans`], which
    /// keys `attr_map` by the attribute's declaring class and normalises
    /// objectifications to the reference attribute's declaring class.
    pub fn new(schema: &'a Schema, plan: &'a SidePlan) -> Self {
        let total = schema.len();
        // Topological order (parents first). The schema is validated
        // acyclic, so repeated scans terminate.
        let mut order: Vec<&interop_model::ClassDef> = Vec::with_capacity(total);
        let mut placed: FxHashSet<&ClassName> = FxHashSet::default();
        while order.len() < total {
            for def in schema.classes() {
                if placed.contains(&def.name) {
                    continue;
                }
                if def.parent.as_ref().is_none_or(|p| placed.contains(p)) {
                    placed.insert(&def.name);
                    order.push(def);
                }
            }
        }
        let mut attrs: FxHashMap<ClassName, FxHashMap<AttrName, AttrInfo<'a>>> =
            FxHashMap::default();
        let mut ancestry: FxHashMap<ClassName, FxHashSet<ClassName>> = FxHashMap::default();
        // Objectifications active per class (inherited down the chain),
        // kept sorted by plan position: when several objectifications
        // cover one attribute, the *first in plan order* wins — exactly
        // what the naive `SidePlan::objectify_for` find returns.
        let mut active: FxHashMap<&ClassName, Vec<(usize, &'a Objectify)>> = FxHashMap::default();
        for def in order {
            let class = &def.name;
            let (mut per_attr, mut ancs, mut act) = match &def.parent {
                Some(p) => (attrs[p].clone(), ancestry[p].clone(), active[p].clone()),
                None => Default::default(),
            };
            ancs.insert(class.clone());
            let mut newly_covered: Vec<&AttrName> = Vec::new();
            for (pos, o) in plan.objectifications.iter().enumerate() {
                if &o.described_class == class {
                    act.push((pos, o));
                    newly_covered.extend(o.attr_names.iter().map(|(a, _)| a));
                }
            }
            act.sort_unstable_by_key(|(pos, _)| *pos);
            let first_covering = |a: &AttrName| -> Option<(usize, &'a Objectify)> {
                act.iter()
                    .find(|(_, o)| o.attr_names.iter().any(|(x, _)| x == a))
                    .map(|(pos, o)| (*pos, *o))
            };
            // Re-resolve inherited attributes newly captured here.
            for a in newly_covered {
                if let Some(info) = per_attr.get_mut(a) {
                    info.action = first_covering(a).map(|(pos, o)| AttrAction::Objectified(pos, o));
                }
            }
            for adef in &def.attrs {
                let action = match first_covering(&adef.name) {
                    Some((pos, o)) => Some(AttrAction::Objectified(pos, o)),
                    None => plan
                        .attr_map
                        .get(&(class.clone(), adef.name.clone()))
                        .map(AttrAction::Planned),
                };
                per_attr.insert(adef.name.clone(), AttrInfo { def: adef, action });
            }
            attrs.insert(class.clone(), per_attr);
            ancestry.insert(class.clone(), ancs);
            active.insert(class, act);
        }
        PlanIndex {
            schema,
            plan,
            attrs,
            ancestry,
        }
    }

    /// The resolved info for a visible attribute of `class`.
    pub fn attr(&self, class: &ClassName, attr: &AttrName) -> Option<&AttrInfo<'a>> {
        self.attrs.get(class)?.get(attr)
    }

    /// The objectification affecting `class.attr`, if any (equivalent to
    /// [`SidePlan::objectify_for`] without the hierarchy walk).
    pub fn objectify_for(&self, class: &ClassName, attr: &AttrName) -> Option<&'a Objectify> {
        self.objectify_pos_for(class, attr).map(|(_, o)| o)
    }

    /// [`Self::objectify_for`] plus the objectification's position in
    /// `plan.objectifications` (the position keys virtual-object ids).
    pub fn objectify_pos_for(
        &self,
        class: &ClassName,
        attr: &AttrName,
    ) -> Option<(usize, &'a Objectify)> {
        match self.attr(class, attr)?.action {
            Some(AttrAction::Objectified(pos, o)) => Some((pos, o)),
            _ => None,
        }
    }

    /// The rename/convert plan for `class.attr`, if any (equivalent to
    /// [`SidePlan::attr_plan`] without the hierarchy walk).
    pub fn attr_plan(&self, class: &ClassName, attr: &AttrName) -> Option<&'a AttrPlan> {
        match self.attr(class, attr)?.action {
            Some(AttrAction::Planned(p)) => Some(p),
            _ => None,
        }
    }

    /// All visible attributes of `class`, fully resolved, in
    /// attribute-name order. Deterministic introspection surface for the
    /// static analyzer (`interop_analyze`), which inspects every resolved
    /// action without re-walking the hierarchy.
    pub fn class_attrs(&self, class: &ClassName) -> Vec<(&AttrName, &AttrInfo<'a>)> {
        let mut v: Vec<_> = self
            .attrs
            .get(class)
            .map(|m| m.iter().collect())
            .unwrap_or_default();
        v.sort_unstable_by_key(|(a, _)| *a);
        v
    }

    /// O(1) subclass test: is `sub` equal to or a descendant of `sup`?
    pub fn is_subclass(&self, sub: &ClassName, sup: &ClassName) -> bool {
        self.ancestry
            .get(sub)
            .is_some_and(|ancs| ancs.contains(sup))
    }

    /// The conformed name of `class.attr` (identity when unplanned).
    pub fn conformed_attr_name(&self, class: &ClassName, attr: &AttrName) -> AttrName {
        self.attr_plan(class, attr)
            .map(|p| p.new_name.clone())
            .unwrap_or_else(|| attr.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::build_plans;
    use interop_model::{ClassDef, Type};
    use interop_spec::{ComparisonRule, Conversion, Decision, InterCond, PropEq, Side, Spec};

    fn setup() -> (Schema, Schema, SidePlan) {
        let local = Schema::new(
            "L",
            vec![
                ClassDef::new("Publication")
                    .attr("publisher", Type::Str)
                    .attr("ourprice", Type::Real),
                ClassDef::new("ScientificPubl")
                    .isa("Publication")
                    .attr("rating", Type::Range(1, 5)),
                ClassDef::new("RefereedPubl").isa("ScientificPubl"),
            ],
        )
        .unwrap();
        let remote = Schema::new(
            "R",
            vec![
                ClassDef::new("Publisher").attr("name", Type::Str),
                ClassDef::new("Item").attr("libprice", Type::Real),
                ClassDef::new("Proceedings")
                    .isa("Item")
                    .attr("rating", Type::Range(1, 10)),
            ],
        )
        .unwrap();
        let mut spec = Spec::new("L", "R");
        spec.add_rule(ComparisonRule::descriptivity(
            "r2",
            "Publication",
            vec!["publisher"],
            "Publisher",
            vec![InterCond::eq("publisher", "name")],
        ));
        spec.add_propeq(PropEq::named_after_remote(
            "Publication",
            "ourprice",
            "Item",
            "libprice",
            Conversion::Id,
            Conversion::Id,
            Decision::Trust(Side::Local),
        ));
        spec.add_propeq(PropEq::named_after_remote(
            "ScientificPubl",
            "rating",
            "Proceedings",
            "rating",
            Conversion::Multiply(2.0),
            Conversion::Id,
            Decision::Avg,
        ));
        let (lp, _) = build_plans(&spec, &local, &remote).unwrap();
        (local, remote, lp)
    }

    #[test]
    fn index_agrees_with_naive_plan_lookups() {
        let (local, _, lp) = setup();
        let idx = PlanIndex::new(&local, &lp);
        for def in local.classes() {
            for adef in local.all_attrs(&def.name) {
                assert_eq!(
                    idx.attr_plan(&def.name, &adef.name),
                    lp.attr_plan(&local, &def.name, &adef.name),
                    "attr_plan mismatch on {}.{}",
                    def.name,
                    adef.name
                );
                assert_eq!(
                    idx.objectify_for(&def.name, &adef.name)
                        .map(|o| &o.virt_class),
                    lp.objectify_for(&local, &def.name, &adef.name)
                        .map(|o| &o.virt_class),
                    "objectify mismatch on {}.{}",
                    def.name,
                    adef.name
                );
            }
        }
    }

    #[test]
    fn inherited_attrs_flattened() {
        let (local, _, lp) = setup();
        let idx = PlanIndex::new(&local, &lp);
        let refereed = ClassName::new("RefereedPubl");
        // rating is declared on ScientificPubl; its plan is visible from
        // the grandchild without any walk.
        assert!(idx.attr_plan(&refereed, &AttrName::new("rating")).is_some());
        // publisher objectification covers subclasses too.
        assert!(idx
            .objectify_for(&refereed, &AttrName::new("publisher"))
            .is_some());
        assert!(idx.is_subclass(&refereed, &ClassName::new("Publication")));
        assert!(!idx.is_subclass(&ClassName::new("Publication"), &refereed));
    }
}
