//! Conformation planning: what gets renamed, converted, and objectified.

use std::collections::BTreeMap;
use std::fmt;

use interop_constraint::Path;
use interop_model::{AttrName, ClassName, Schema, Type};
use interop_spec::{Conversion, Relationship, Spec};

/// Errors raised while planning or executing conformation.
#[derive(Clone, Debug, PartialEq)]
pub enum ConformError {
    /// A propeq references an attribute that does not exist.
    UnknownProperty {
        /// The class named in the propeq.
        class: ClassName,
        /// The missing attribute path.
        path: String,
    },
    /// The converted local and remote types have no common supertype.
    IncompatibleTypes {
        /// Conformed property name.
        prop: String,
        /// Converted local type (display form).
        local: String,
        /// Converted remote type (display form).
        remote: String,
    },
    /// A conversion function cannot transform the attribute's type.
    UntransformableType {
        /// The class.
        class: ClassName,
        /// The attribute.
        attr: AttrName,
    },
    /// Conformation only supports single-segment propeq paths (the
    /// paper's fragment); a longer path was given.
    MultiSegmentPath(String),
    /// A value in the database falls outside its conversion's domain.
    UnconvertibleValue {
        /// The class.
        class: ClassName,
        /// The attribute.
        attr: AttrName,
        /// Display form of the value.
        value: String,
    },
    /// Underlying model error while rebuilding the conformed database.
    Model(String),
}

impl fmt::Display for ConformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConformError::UnknownProperty { class, path } => {
                write!(f, "propeq references unknown property {class}.{path}")
            }
            ConformError::IncompatibleTypes {
                prop,
                local,
                remote,
            } => write!(
                f,
                "conformed property '{prop}': converted types {local} and {remote} have no common supertype"
            ),
            ConformError::UntransformableType { class, attr } => {
                write!(f, "conversion cannot transform the type of {class}.{attr}")
            }
            ConformError::MultiSegmentPath(p) => {
                write!(f, "propeq path '{p}' has multiple segments; conformation supports head attributes only")
            }
            ConformError::UnconvertibleValue { class, attr, value } => {
                write!(f, "value {value} of {class}.{attr} is outside the conversion's domain")
            }
            ConformError::Model(m) => write!(f, "model error during conformation: {m}"),
        }
    }
}

impl std::error::Error for ConformError {}

/// Per-attribute conformation actions.
#[derive(Clone, Debug, PartialEq)]
pub struct AttrPlan {
    /// The conformed attribute name.
    pub new_name: AttrName,
    /// The conversion into the common domain.
    pub conversion: Conversion,
    /// The conformed (joined) type.
    pub new_type: Type,
}

/// One object–value conflict resolution (object view): values of
/// `described_class.{value attrs}` become objects of a virtual class.
#[derive(Clone, Debug, PartialEq)]
pub struct Objectify {
    /// The class whose attribute values are objectified (local side in the
    /// paper's example).
    pub described_class: ClassName,
    /// The virtual class created from the values (e.g. `VirtPublisher`).
    pub virt_class: ClassName,
    /// The remote class the virtual objects will be compared with.
    pub counterpart_class: ClassName,
    /// `(value attribute on the described class, attribute name on the
    /// virtual class)` pairs.
    pub attr_names: Vec<(AttrName, AttrName)>,
    /// The reference attribute replacing the value attributes.
    pub ref_attr: AttrName,
}

/// The conformation plan for one side.
#[derive(Clone, Debug, Default)]
pub struct SidePlan {
    /// Attribute-level actions, keyed by the **declaring** class of the
    /// attribute and its name ([`build_plans`] normalises a propeq stated
    /// on a subclass up to the declarer, so the schema rename and the
    /// per-object value rename always agree). Lookup is hierarchy-aware
    /// ([`SidePlan::attr_plan`]).
    pub attr_map: BTreeMap<(ClassName, AttrName), AttrPlan>,
    /// Object–value conflicts to settle on this side.
    pub objectifications: Vec<Objectify>,
}

impl SidePlan {
    /// Looks up the plan for `class.attr`, honouring inheritance: a
    /// propeq declared on `ScientificPubl.rating` also governs
    /// `RefereedPubl.rating`.
    pub fn attr_plan(
        &self,
        schema: &Schema,
        class: &ClassName,
        attr: &AttrName,
    ) -> Option<&AttrPlan> {
        for c in schema.self_and_ancestors(class) {
            if let Some(p) = self.attr_map.get(&(c.clone(), attr.clone())) {
                return Some(p);
            }
        }
        None
    }

    /// The objectification affecting `class.attr`, if any.
    pub fn objectify_for(
        &self,
        schema: &Schema,
        class: &ClassName,
        attr: &AttrName,
    ) -> Option<&Objectify> {
        self.objectifications.iter().find(|o| {
            schema.is_subclass(class, &o.described_class)
                && o.attr_names.iter().any(|(a, _)| a == attr)
        })
    }
}

fn head_attr(path: &Path) -> Result<AttrName, ConformError> {
    if path.len() != 1 {
        return Err(ConformError::MultiSegmentPath(path.to_string()));
    }
    Ok(path.head().expect("len checked").clone())
}

/// Builds the local and remote conformation plans from a specification.
pub fn build_plans(
    spec: &Spec,
    local: &Schema,
    remote: &Schema,
) -> Result<(SidePlan, SidePlan), ConformError> {
    let mut lp = SidePlan::default();
    let mut rp = SidePlan::default();
    // Objectifications first: their attributes are excluded from plain
    // renames (the propeq then governs the *virtual* attribute name).
    if spec.object_view {
        for rule in spec.descriptivity_rules() {
            let (described, value_attrs) = match &rule.relationship {
                Relationship::Descriptivity { class, value_attrs } => (class, value_attrs),
                _ => continue,
            };
            let mut attr_names = Vec::new();
            for vp in value_attrs {
                let va = head_attr(vp)?;
                if local.resolve_attr(described, &va).is_none() {
                    return Err(ConformError::UnknownProperty {
                        class: described.clone(),
                        path: va.to_string(),
                    });
                }
                // The virtual attribute is named after the remote
                // counterpart attribute when an interobject condition
                // pairs them; otherwise it keeps the local name.
                let virt_name = rule
                    .inter
                    .iter()
                    .find(|ic| ic.local.head() == Some(&va))
                    .and_then(|ic| ic.remote.head().cloned())
                    .unwrap_or_else(|| va.clone());
                attr_names.push((va, virt_name));
            }
            let ref_attr = attr_names
                .first()
                .map(|(a, _)| a.clone())
                .ok_or_else(|| ConformError::MultiSegmentPath("<empty value set>".into()))?;
            // Normalise to the declaring class of the reference attribute:
            // the schema replaces the value attribute where it is declared,
            // so the objectification must govern exactly that subtree — a
            // rule stated on a subclass would otherwise rewrite subclass
            // objects into a shape the conformed schema rejects.
            let described = local
                .resolve_attr(described, &ref_attr)
                .map(|(c, _)| c.clone())
                .expect("value attribute resolved above");
            lp.objectifications.push(Objectify {
                described_class: described.clone(),
                virt_class: ClassName::new(format!("Virt{}", rule.subject_class)),
                counterpart_class: rule.subject_class.clone(),
                attr_names,
                ref_attr,
            });
        }
    }
    for pe in &spec.propeqs {
        let la = head_attr(&pe.local_path)?;
        let ra = head_attr(&pe.remote_path)?;
        let conformed = head_attr(&pe.conformed_name)?;
        let (ldecl, ldef) = local.resolve_attr(&pe.local_class, &la).ok_or_else(|| {
            ConformError::UnknownProperty {
                class: pe.local_class.clone(),
                path: la.to_string(),
            }
        })?;
        let (rdecl, rdef) = remote.resolve_attr(&pe.remote_class, &ra).ok_or_else(|| {
            ConformError::UnknownProperty {
                class: pe.remote_class.clone(),
                path: ra.to_string(),
            }
        })?;
        let lt =
            pe.cf_local
                .apply_type(&ldef.ty)
                .ok_or_else(|| ConformError::UntransformableType {
                    class: pe.local_class.clone(),
                    attr: la.clone(),
                })?;
        let rt =
            pe.cf_remote
                .apply_type(&rdef.ty)
                .ok_or_else(|| ConformError::UntransformableType {
                    class: pe.remote_class.clone(),
                    attr: ra.clone(),
                })?;
        let joint = lt
            .join(&rt)
            .ok_or_else(|| ConformError::IncompatibleTypes {
                prop: conformed.to_string(),
                local: lt.to_string(),
                remote: rt.to_string(),
            })?;
        // If the local attribute is objectified, the conformed name
        // applies to the virtual class attribute instead.
        if let Some(pos) = lp.objectifications.iter().position(|o| {
            local.is_subclass(&pe.local_class, &o.described_class)
                && o.attr_names.iter().any(|(a, _)| a == &la)
        }) {
            let o = &mut lp.objectifications[pos];
            for (a, virt) in &mut o.attr_names {
                if a == &la {
                    *virt = conformed.clone();
                }
            }
        } else {
            // Key by the declaring class (normalising propeqs stated on a
            // subclass) so the schema-level rename and the per-object
            // value rename cover the same set of objects.
            lp.attr_map.insert(
                (ldecl.clone(), la),
                AttrPlan {
                    new_name: conformed.clone(),
                    conversion: pe.cf_local.clone(),
                    new_type: joint.clone(),
                },
            );
        }
        rp.attr_map.insert(
            (rdecl.clone(), ra),
            AttrPlan {
                new_name: conformed,
                conversion: pe.cf_remote.clone(),
                new_type: joint,
            },
        );
    }
    Ok((lp, rp))
}

#[cfg(test)]
mod tests {
    use super::*;
    use interop_model::ClassDef;
    use interop_spec::{ComparisonRule, Decision, InterCond, PropEq, Side};

    fn schemas() -> (Schema, Schema) {
        let local = Schema::new(
            "CSLibrary",
            vec![
                ClassDef::new("Publication")
                    .attr("isbn", Type::Str)
                    .attr("publisher", Type::Str)
                    .attr("shopprice", Type::Real)
                    .attr("ourprice", Type::Real),
                ClassDef::new("ScientificPubl")
                    .isa("Publication")
                    .attr("rating", Type::Range(1, 5)),
                ClassDef::new("RefereedPubl").isa("ScientificPubl"),
            ],
        )
        .unwrap();
        let remote = Schema::new(
            "Bookseller",
            vec![
                ClassDef::new("Publisher").attr("name", Type::Str),
                ClassDef::new("Item")
                    .attr("isbn", Type::Str)
                    .attr("publisher", Type::Ref(ClassName::new("Publisher")))
                    .attr("shopprice", Type::Real)
                    .attr("libprice", Type::Real),
                ClassDef::new("Proceedings")
                    .isa("Item")
                    .attr("rating", Type::Range(1, 10)),
            ],
        )
        .unwrap();
        (local, remote)
    }

    fn spec() -> Spec {
        let mut s = Spec::new("CSLibrary", "Bookseller");
        s.add_rule(ComparisonRule::descriptivity(
            "r2",
            "Publication",
            vec!["publisher"],
            "Publisher",
            vec![InterCond::eq("publisher", "name")],
        ));
        s.add_propeq(PropEq::named_after_remote(
            "Publication",
            "ourprice",
            "Item",
            "libprice",
            Conversion::Id,
            Conversion::Id,
            Decision::Trust(Side::Local),
        ));
        s.add_propeq(PropEq::named_after_remote(
            "ScientificPubl",
            "rating",
            "Proceedings",
            "rating",
            Conversion::Multiply(2.0),
            Conversion::Id,
            Decision::Avg,
        ));
        s.add_propeq(PropEq::named_after_remote(
            "Publication",
            "publisher",
            "Publisher",
            "name",
            Conversion::Id,
            Conversion::Id,
            Decision::Any,
        ));
        s
    }

    #[test]
    fn plan_records_renames_and_conversions() {
        let (l, r) = schemas();
        let (lp, rp) = build_plans(&spec(), &l, &r).unwrap();
        let p = lp
            .attr_plan(
                &l,
                &ClassName::new("Publication"),
                &AttrName::new("ourprice"),
            )
            .unwrap();
        assert_eq!(p.new_name, AttrName::new("libprice"));
        assert_eq!(p.conversion, Conversion::Id);
        // Rating: joined type after multiply(2) is 2..10 ∪ 1..10 = 1..10.
        let rt = lp
            .attr_plan(
                &l,
                &ClassName::new("ScientificPubl"),
                &AttrName::new("rating"),
            )
            .unwrap();
        assert_eq!(rt.new_type, Type::Range(1, 10));
        assert_eq!(rt.conversion, Conversion::Multiply(2.0));
        let rr = rp
            .attr_plan(&r, &ClassName::new("Proceedings"), &AttrName::new("rating"))
            .unwrap();
        assert_eq!(rr.conversion, Conversion::Id);
    }

    #[test]
    fn hierarchy_aware_lookup() {
        let (l, r) = schemas();
        let (lp, _) = build_plans(&spec(), &l, &r).unwrap();
        // RefereedPubl inherits the ScientificPubl.rating propeq.
        assert!(lp
            .attr_plan(
                &l,
                &ClassName::new("RefereedPubl"),
                &AttrName::new("rating")
            )
            .is_some());
        // Publication does not see it.
        assert!(lp
            .attr_plan(&l, &ClassName::new("Publication"), &AttrName::new("rating"))
            .is_none());
    }

    #[test]
    fn objectification_planned_with_conformed_names() {
        let (l, r) = schemas();
        let (lp, _) = build_plans(&spec(), &l, &r).unwrap();
        assert_eq!(lp.objectifications.len(), 1);
        let o = &lp.objectifications[0];
        assert_eq!(o.virt_class.as_str(), "VirtPublisher");
        assert_eq!(o.counterpart_class.as_str(), "Publisher");
        assert_eq!(
            o.attr_names,
            vec![(AttrName::new("publisher"), AttrName::new("name"))]
        );
        // The publisher propeq went to the objectification, not attr_map.
        assert!(lp
            .attr_plan(
                &l,
                &ClassName::new("Publication"),
                &AttrName::new("publisher")
            )
            .is_none());
        assert!(lp
            .objectify_for(
                &l,
                &ClassName::new("Publication"),
                &AttrName::new("publisher")
            )
            .is_some());
        // Subclasses are covered too.
        assert!(lp
            .objectify_for(
                &l,
                &ClassName::new("RefereedPubl"),
                &AttrName::new("publisher")
            )
            .is_some());
    }

    #[test]
    fn unknown_property_rejected() {
        let (l, r) = schemas();
        let mut s = Spec::new("CSLibrary", "Bookseller");
        s.add_propeq(PropEq::named_after_remote(
            "Publication",
            "ghost",
            "Item",
            "libprice",
            Conversion::Id,
            Conversion::Id,
            Decision::Any,
        ));
        let err = build_plans(&s, &l, &r).unwrap_err();
        assert!(matches!(err, ConformError::UnknownProperty { .. }));
    }

    #[test]
    fn incompatible_types_rejected() {
        let (l, r) = schemas();
        let mut s = Spec::new("CSLibrary", "Bookseller");
        s.add_propeq(PropEq::named_after_remote(
            "Publication",
            "isbn",
            "Item",
            "libprice",
            Conversion::Id,
            Conversion::Id,
            Decision::Any,
        ));
        let err = build_plans(&s, &l, &r).unwrap_err();
        assert!(matches!(err, ConformError::IncompatibleTypes { .. }));
    }

    #[test]
    fn untransformable_type_rejected() {
        let (l, r) = schemas();
        let mut s = Spec::new("CSLibrary", "Bookseller");
        s.add_propeq(PropEq::named_after_remote(
            "Publication",
            "isbn",
            "Item",
            "isbn",
            Conversion::Multiply(2.0),
            Conversion::Id,
            Decision::Any,
        ));
        let err = build_plans(&s, &l, &r).unwrap_err();
        assert!(matches!(err, ConformError::UntransformableType { .. }));
    }

    #[test]
    fn value_view_skips_objectification() {
        let (l, r) = schemas();
        let mut s = spec();
        s.object_view = false;
        let (lp, _) = build_plans(&s, &l, &r).unwrap();
        assert!(lp.objectifications.is_empty());
        // The publisher propeq then lands in the plain attr map.
        assert!(lp
            .attr_plan(
                &l,
                &ClassName::new("Publication"),
                &AttrName::new("publisher")
            )
            .is_some());
    }
}
