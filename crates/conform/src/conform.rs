//! The conformation orchestrator: runs both sides through planning,
//! database transformation, and constraint rewriting, and conforms the
//! specification itself (rules and propeqs restated in conformed terms).

use interop_constraint::Catalog;
use interop_model::Database;
use interop_spec::{ComparisonRule, Conversion, InterCond, PropEq, Relationship, Spec};

use crate::interned::PlanIndex;
use crate::objectify::conform_database;
use crate::plan::{build_plans, ConformError, SidePlan};
use crate::rewrite::{ConformNote, RewriteOutcome, Rewriter};

/// One conformed side: transformed database plus conformed catalog.
#[derive(Clone, Debug)]
pub struct ConformedSide {
    /// The conformed database (virtual classes installed, values
    /// converted).
    pub db: Database,
    /// The conformed constraint catalog (constraints rewritten, some
    /// reallocated to virtual classes, some dropped with notes).
    pub catalog: Catalog,
    /// The plan that produced this side (kept for downstream phases).
    pub plan: SidePlan,
}

/// The full conformation result.
#[derive(Clone, Debug)]
pub struct Conformed {
    /// Conformed local side.
    pub local: ConformedSide,
    /// Conformed remote side.
    pub remote: ConformedSide,
    /// The specification restated in conformed terms: descriptivity rules
    /// become equality rules on virtual classes; propeq paths carry
    /// conformed names and identity conversions.
    pub spec: Spec,
    /// Everything that could not be conformed exactly.
    pub notes: Vec<ConformNote>,
}

/// Space tag for virtual objects created on the local side.
pub const LOCAL_VIRT_SPACE: u32 = 100;
/// Space tag for virtual objects created on the remote side.
pub const REMOTE_VIRT_SPACE: u32 = 101;

/// Runs the conformation phase (§4).
pub fn conform(
    local_db: &Database,
    local_cat: &Catalog,
    remote_db: &Database,
    remote_cat: &Catalog,
    spec: &Spec,
) -> Result<Conformed, ConformError> {
    let (lp, rp) = build_plans(spec, &local_db.schema, &remote_db.schema)?;
    let mut notes = Vec::new();

    // One interned schema/plan index per side, shared by the database
    // transformation, every constraint rewrite, and the spec rewrite —
    // the schema hierarchy is walked once, not once per constraint path.
    let lidx = PlanIndex::new(&local_db.schema, &lp);
    let ridx = PlanIndex::new(&remote_db.schema, &rp);
    let lrw = Rewriter::new(&lidx);
    let rrw = Rewriter::new(&ridx);

    let local_conf_db = conform_database(local_db, &lidx, LOCAL_VIRT_SPACE)?;
    let remote_conf_db = conform_database(remote_db, &ridx, REMOTE_VIRT_SPACE)?;

    let local_catalog = conform_catalog(local_cat, &lrw, &mut notes);
    let mut remote_catalog = conform_catalog(remote_cat, &rrw, &mut notes);

    // Value view: remote counterpart objects would be hidden into values;
    // constraints on them that reach outside the descriptive value set
    // are hidden too (§4 subtask 1).
    if !spec.object_view {
        hide_counterpart_constraints(spec, remote_cat, &mut remote_catalog, &mut notes);
    }

    let conf_spec = conform_spec(spec, &lrw, &rrw, &mut notes)?;

    Ok(Conformed {
        local: ConformedSide {
            db: local_conf_db,
            catalog: local_catalog,
            plan: lp,
        },
        remote: ConformedSide {
            db: remote_conf_db,
            catalog: remote_catalog,
            plan: rp,
        },
        spec: conf_spec,
        notes,
    })
}

fn conform_catalog(cat: &Catalog, rw: &Rewriter, notes: &mut Vec<ConformNote>) -> Catalog {
    let mut out = Catalog::new();
    for oc in cat.all_object() {
        match rw.rewrite_object_constraint(oc) {
            RewriteOutcome::Kept(c) | RewriteOutcome::Reallocated(c) => out.add_object(c),
            RewriteOutcome::Dropped(note) => notes.push(note),
        }
    }
    for cc in cat.all_class() {
        match rw.rewrite_class_constraint(cc) {
            Ok(c) => out.add_class(c),
            Err(note) => notes.push(note),
        }
    }
    for dc in cat.database_constraints() {
        match rw.rewrite_db_constraint(dc) {
            Ok(c) => out.add_database(c),
            Err(note) => notes.push(note),
        }
    }
    out
}

fn hide_counterpart_constraints(
    spec: &Spec,
    original: &Catalog,
    conformed: &mut Catalog,
    notes: &mut Vec<ConformNote>,
) {
    for rule in spec.descriptivity_rules() {
        let class = &rule.subject_class;
        let kept: Vec<interop_constraint::Path> =
            rule.inter.iter().map(|ic| ic.remote.clone()).collect();
        // Rebuild the catalog without constraints that reach outside the
        // value set of the hidden class.
        let mut rebuilt = Catalog::new();
        for oc in conformed.all_object() {
            if &oc.class == class && !oc.formula.paths().iter().all(|p| kept.contains(p)) {
                notes.push(ConformNote {
                    context: oc.id.to_string(),
                    reason: format!(
                        "hidden: class {class} is converted to values and the constraint \
                         involves properties outside the value set"
                    ),
                });
            } else {
                rebuilt.add_object(oc.clone());
            }
        }
        for cc in conformed.all_class() {
            if &cc.class == class {
                notes.push(ConformNote {
                    context: cc.id.to_string(),
                    reason: format!("hidden: class {class} is converted to values"),
                });
            } else {
                rebuilt.add_class(cc.clone());
            }
        }
        for dc in conformed.database_constraints() {
            rebuilt.add_database(dc.clone());
        }
        *conformed = rebuilt;
        let _ = original;
    }
}

fn conform_spec(
    spec: &Spec,
    lrw: &Rewriter,
    rrw: &Rewriter,
    notes: &mut Vec<ConformNote>,
) -> Result<Spec, ConformError> {
    let lp = lrw.index.plan;
    let mut out = Spec::new(spec.local_db.clone(), spec.remote_db.clone());
    out.object_view = spec.object_view;
    out.status_overrides = spec.status_overrides.clone();

    for rule in &spec.rules {
        match &rule.relationship {
            Relationship::Descriptivity { .. } if spec.object_view => {
                // Objectified: becomes an equality rule between the
                // virtual class and the remote counterpart.
                let o = lp
                    .objectifications
                    .iter()
                    .find(|o| o.counterpart_class == rule.subject_class)
                    .expect("planned from the same spec");
                let inter = rule
                    .inter
                    .iter()
                    .map(|ic| {
                        let virt_attr = ic
                            .local
                            .head()
                            .and_then(|h| {
                                o.attr_names
                                    .iter()
                                    .find(|(a, _)| a == h)
                                    .map(|(_, v)| v.clone())
                            })
                            .unwrap_or_else(|| ic.local.head().cloned().unwrap_or_default());
                        InterCond {
                            local: interop_constraint::Path::attr(virt_attr),
                            op: ic.op,
                            remote: ic.remote.clone(),
                        }
                    })
                    .collect();
                let mut eq = ComparisonRule::equality(
                    rule.id.as_str(),
                    o.virt_class.clone(),
                    rule.subject_class.clone(),
                    inter,
                );
                eq.intra_subject = rrw
                    .rewrite_formula(&rule.subject_class, &rule.intra_subject)
                    .map_err(ConformError::Model)?;
                out.add_rule(eq);
            }
            Relationship::Descriptivity { .. } => {
                notes.push(ConformNote {
                    context: rule.id.to_string(),
                    reason: "value view: descriptivity rule handled by hiding, no merge rule"
                        .into(),
                });
            }
            _ => {
                let mut r2 = rule.clone();
                // Subject-side intra condition.
                let (subj_rw, subj_schema_class) = match rule.subject_side {
                    interop_spec::Side::Local => (lrw, &rule.subject_class),
                    interop_spec::Side::Remote => (rrw, &rule.subject_class),
                };
                r2.intra_subject = subj_rw
                    .rewrite_formula(subj_schema_class, &rule.intra_subject)
                    .map_err(ConformError::Model)?;
                if let Some(cp) = &rule.counterpart_class {
                    r2.intra_counterpart = lrw
                        .rewrite_formula(cp, &rule.intra_counterpart)
                        .map_err(ConformError::Model)?;
                    // Interobject conditions: local side on the
                    // counterpart, remote side on the subject.
                    let mut inter2 = Vec::new();
                    for ic in &rule.inter {
                        let (lpath, lcv) = lrw
                            .rewrite_path(cp, &ic.local)
                            .map_err(ConformError::Model)?;
                        let (rpath, rcv) = rrw
                            .rewrite_path(&rule.subject_class, &ic.remote)
                            .map_err(ConformError::Model)?;
                        if lcv != rcv && (lcv != Conversion::Id || rcv != Conversion::Id) {
                            notes.push(ConformNote {
                                context: rule.id.to_string(),
                                reason: format!(
                                    "interobject condition {ic} compares attributes under \
                                     different conversions; kept with renamed paths"
                                ),
                            });
                        }
                        inter2.push(InterCond {
                            local: lpath,
                            op: ic.op,
                            remote: rpath,
                        });
                    }
                    r2.inter = inter2;
                }
                out.add_rule(r2);
            }
        }
    }

    for pe in &spec.propeqs {
        let la = pe.local_path.head().cloned().unwrap_or_default();
        let ra = pe.remote_path.head().cloned().unwrap_or_default();
        // Objectified local property: the propeq moves to the virtual class.
        if let Some(o) = lrw.index.objectify_for(&pe.local_class, &la) {
            let virt_attr = o
                .attr_names
                .iter()
                .find(|(a, _)| a == &la)
                .map(|(_, v)| v.clone())
                .expect("objectify_for membership");
            out.add_propeq(PropEq {
                local_class: o.virt_class.clone(),
                local_path: interop_constraint::Path::attr(virt_attr.clone()),
                remote_class: pe.remote_class.clone(),
                remote_path: interop_constraint::Path::attr(
                    rrw.index.conformed_attr_name(&pe.remote_class, &ra),
                ),
                cf_local: Conversion::Id,
                cf_remote: Conversion::Id,
                df: pe.df,
                conformed_name: interop_constraint::Path::attr(virt_attr),
            });
            continue;
        }
        let conformed = pe.conformed_name.clone();
        out.add_propeq(PropEq {
            local_class: pe.local_class.clone(),
            local_path: conformed.clone(),
            remote_class: pe.remote_class.clone(),
            remote_path: conformed.clone(),
            cf_local: Conversion::Id,
            cf_remote: Conversion::Id,
            df: pe.df,
            conformed_name: conformed,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use interop_constraint::expr::AggOp;
    use interop_constraint::{
        ClassConstraint, ClassConstraintBody, CmpOp, ConstraintId, Expr, Formula, ObjectConstraint,
        Path,
    };
    use interop_model::{AttrName, ClassDef, ClassName, DbName, Schema, Type, Value};
    use interop_spec::{Decision, Side};

    fn fixture() -> (Database, Catalog, Database, Catalog, Spec) {
        let local_schema = Schema::new(
            "CSLibrary",
            vec![
                ClassDef::new("Publication")
                    .attr("title", Type::Str)
                    .attr("isbn", Type::Str)
                    .attr("publisher", Type::Str)
                    .attr("shopprice", Type::Real)
                    .attr("ourprice", Type::Real),
                ClassDef::new("ScientificPubl")
                    .isa("Publication")
                    .attr("editors", Type::pstring())
                    .attr("rating", Type::Range(1, 5)),
                ClassDef::new("RefereedPubl")
                    .isa("ScientificPubl")
                    .attr("avgAccRate", Type::Real),
            ],
        )
        .unwrap();
        let remote_schema = Schema::new(
            "Bookseller",
            vec![
                ClassDef::new("Publisher")
                    .attr("name", Type::Str)
                    .attr("location", Type::Str),
                ClassDef::new("Item")
                    .attr("title", Type::Str)
                    .attr("isbn", Type::Str)
                    .attr("publisher", Type::Ref(ClassName::new("Publisher")))
                    .attr("shopprice", Type::Real)
                    .attr("libprice", Type::Real)
                    .attr("authors", Type::pstring()),
                ClassDef::new("Proceedings")
                    .isa("Item")
                    .attr("ref?", Type::Bool)
                    .attr("rating", Type::Range(1, 10)),
            ],
        )
        .unwrap();
        let ldb = DbName::new("CSLibrary");
        let mut lcat = Catalog::new();
        lcat.add_object(ObjectConstraint::new(
            ConstraintId::new(&ldb, &ClassName::new("Publication"), "oc1"),
            "Publication",
            Formula::Cmp(Expr::attr("ourprice"), CmpOp::Le, Expr::attr("shopprice")),
        ));
        lcat.add_object(ObjectConstraint::new(
            ConstraintId::new(&ldb, &ClassName::new("Publication"), "oc2"),
            "Publication",
            Formula::isin("publisher", [Value::str("ACM"), Value::str("IEEE")]),
        ));
        lcat.add_object(ObjectConstraint::new(
            ConstraintId::new(&ldb, &ClassName::new("RefereedPubl"), "oc1"),
            "RefereedPubl",
            Formula::cmp("rating", CmpOp::Ge, 2i64),
        ));
        lcat.add_class(ClassConstraint::key(
            ConstraintId::new(&ldb, &ClassName::new("Publication"), "cc1"),
            "Publication",
            vec!["isbn"],
        ));
        lcat.add_class(ClassConstraint::new(
            ConstraintId::new(&ldb, &ClassName::new("ScientificPubl"), "cc1"),
            "ScientificPubl",
            ClassConstraintBody::Aggregate {
                op: AggOp::Avg,
                path: Path::parse("rating"),
                cmp: CmpOp::Lt,
                bound: Value::int(4),
            },
        ));
        let rdb = DbName::new("Bookseller");
        let mut rcat = Catalog::new();
        rcat.add_object(ObjectConstraint::new(
            ConstraintId::new(&rdb, &ClassName::new("Proceedings"), "oc2"),
            "Proceedings",
            Formula::cmp("ref?", CmpOp::Eq, true).implies(Formula::cmp("rating", CmpOp::Ge, 7i64)),
        ));
        let mut spec = Spec::new("CSLibrary", "Bookseller");
        spec.add_rule(ComparisonRule::equality(
            "r1",
            "Publication",
            "Item",
            vec![InterCond::eq("isbn", "isbn")],
        ));
        spec.add_rule(ComparisonRule::descriptivity(
            "r2",
            "Publication",
            vec!["publisher"],
            "Publisher",
            vec![InterCond::eq("publisher", "name")],
        ));
        spec.add_rule(ComparisonRule::similarity(
            "r3",
            Side::Remote,
            "Proceedings",
            "RefereedPubl",
            Formula::cmp("ref?", CmpOp::Eq, true),
        ));
        spec.add_propeq(PropEq::named_after_remote(
            "Publication",
            "ourprice",
            "Item",
            "libprice",
            interop_spec::Conversion::Id,
            interop_spec::Conversion::Id,
            Decision::Trust(Side::Local),
        ));
        spec.add_propeq(PropEq::named_after_remote(
            "ScientificPubl",
            "rating",
            "Proceedings",
            "rating",
            interop_spec::Conversion::Multiply(2.0),
            interop_spec::Conversion::Id,
            Decision::Avg,
        ));
        spec.add_propeq(PropEq::named_after_remote(
            "Publication",
            "publisher",
            "Publisher",
            "name",
            interop_spec::Conversion::Id,
            interop_spec::Conversion::Id,
            Decision::Any,
        ));
        let mut local_db = Database::new(local_schema, 1);
        local_db
            .create(
                "RefereedPubl",
                vec![
                    ("isbn", "111".into()),
                    ("publisher", "ACM".into()),
                    ("ourprice", 26.0.into()),
                    ("shopprice", 29.0.into()),
                    ("rating", 3i64.into()),
                ],
            )
            .unwrap();
        let mut remote_db = Database::new(remote_schema, 2);
        let p = remote_db
            .create("Publisher", vec![("name", "ACM".into())])
            .unwrap();
        remote_db
            .create(
                "Proceedings",
                vec![
                    ("isbn", "111".into()),
                    ("publisher", Value::Ref(p)),
                    ("ref?", true.into()),
                    ("rating", 8i64.into()),
                ],
            )
            .unwrap();
        (local_db, lcat, remote_db, rcat, spec)
    }

    #[test]
    fn full_conformation_produces_paper_artifacts() {
        let (ldb, lcat, rdb, rcat, spec) = fixture();
        let conf = conform(&ldb, &lcat, &rdb, &rcat, &spec).unwrap();
        // §4 example 1: oc2 reallocated to VirtPublisher as name in {...}.
        let virt = ClassName::new("VirtPublisher");
        let ocs = conf.local.catalog.object_on(&virt);
        assert_eq!(ocs.len(), 1);
        assert_eq!(ocs[0].formula.to_string(), "name in {'ACM', 'IEEE'}");
        // §4 example 2: RefereedPubl ocl becomes rating >= 4.
        let refereed = ClassName::new("RefereedPubl");
        let rocs = conf.local.catalog.object_on(&refereed);
        assert_eq!(rocs[0].formula.to_string(), "rating >= 4");
        // ourprice → libprice in oc1.
        let pubs = conf.local.catalog.object_on(&ClassName::new("Publication"));
        assert_eq!(pubs[0].formula.to_string(), "libprice <= shopprice");
        // Aggregate bound scaled: avg rating < 8.
        let sci_cc = conf
            .local
            .catalog
            .class_on(&ClassName::new("ScientificPubl"));
        match &sci_cc[0].body {
            ClassConstraintBody::Aggregate { bound, .. } => assert_eq!(bound, &Value::int(8)),
            other => panic!("unexpected {other:?}"),
        }
        // No notes for the paper fixture: everything conforms exactly.
        assert!(conf.notes.is_empty(), "unexpected notes: {:?}", conf.notes);
    }

    #[test]
    fn conformed_values_follow() {
        let (ldb, lcat, rdb, rcat, spec) = fixture();
        let conf = conform(&ldb, &lcat, &rdb, &rcat, &spec).unwrap();
        let id = conf.local.db.extent(&ClassName::new("RefereedPubl"))[0];
        let obj = conf.local.db.object(id).unwrap();
        assert_eq!(obj.get(&AttrName::new("rating")), &Value::int(6));
        assert_eq!(obj.get(&AttrName::new("libprice")), &Value::real(26.0));
    }

    #[test]
    fn descriptivity_becomes_equality_on_virtual_class() {
        let (ldb, lcat, rdb, rcat, spec) = fixture();
        let conf = conform(&ldb, &lcat, &rdb, &rcat, &spec).unwrap();
        let r2 = conf
            .spec
            .rules
            .iter()
            .find(|r| r.id.as_str() == "r2")
            .unwrap();
        assert!(r2.is_equality());
        assert_eq!(
            r2.counterpart_class.as_ref().unwrap(),
            &ClassName::new("VirtPublisher")
        );
        assert_eq!(r2.inter[0].local, Path::parse("name"));
        assert_eq!(r2.inter[0].remote, Path::parse("name"));
    }

    #[test]
    fn conformed_propeqs_are_identity() {
        let (ldb, lcat, rdb, rcat, spec) = fixture();
        let conf = conform(&ldb, &lcat, &rdb, &rcat, &spec).unwrap();
        for pe in &conf.spec.propeqs {
            assert_eq!(pe.cf_local, Conversion::Id);
            assert_eq!(pe.cf_remote, Conversion::Id);
        }
        // The publisher propeq moved to the virtual class.
        let virt_pe = conf
            .spec
            .propeqs
            .iter()
            .find(|p| p.local_class == ClassName::new("VirtPublisher"))
            .unwrap();
        assert_eq!(virt_pe.local_path, Path::parse("name"));
        assert_eq!(virt_pe.df, Decision::Any);
        // The rating propeq now has the same (conformed) name both sides.
        let rating = conf
            .spec
            .propeqs
            .iter()
            .find(|p| p.local_class == ClassName::new("ScientificPubl"))
            .unwrap();
        assert_eq!(rating.local_path, rating.remote_path);
    }

    #[test]
    fn sim_rule_condition_conformed() {
        let (ldb, lcat, rdb, rcat, spec) = fixture();
        let conf = conform(&ldb, &lcat, &rdb, &rcat, &spec).unwrap();
        let r3 = conf
            .spec
            .rules
            .iter()
            .find(|r| r.id.as_str() == "r3")
            .unwrap();
        assert_eq!(r3.intra_subject.to_string(), "ref? = true");
    }

    #[test]
    fn value_view_hides_counterpart_constraints() {
        let (ldb, lcat, rdb, mut rcat, mut spec) = fixture();
        spec.object_view = false;
        // A Publisher constraint involving 'location' (outside the value
        // set {name}) must be hidden.
        rcat.add_object(ObjectConstraint::new(
            ConstraintId::new(
                &DbName::new("Bookseller"),
                &ClassName::new("Publisher"),
                "oc9",
            ),
            "Publisher",
            Formula::cmp("location", CmpOp::Ne, ""),
        ));
        let conf = conform(&ldb, &lcat, &rdb, &rcat, &spec).unwrap();
        assert!(conf
            .notes
            .iter()
            .any(|n| n.context.contains("Publisher.oc9") && n.reason.contains("hidden")));
        assert!(conf
            .remote
            .catalog
            .object_on(&ClassName::new("Publisher"))
            .is_empty());
    }
}
