//! Differential property suite for the interned conform index: on random
//! schema hierarchies and random specs, every [`PlanIndex`] lookup must
//! agree with the naive hierarchy-walking [`SidePlan`] lookups it
//! replaced, and the full conformation built on top of it must be
//! deterministic.

use interop_conform::{conform, PlanIndex, SidePlan};
use interop_constraint::Catalog;
use interop_model::{AttrName, ClassDef, ClassName, Database, Schema, Type, Value};
use interop_spec::{ComparisonRule, Conversion, Decision, InterCond, PropEq, Side, Spec};
use proptest::prelude::*;

const ATTRS: [(&str, &str); 5] = [
    ("a0", "b0"),
    ("a1", "b1"),
    ("a2", "b2"),
    ("a3", "b3"),
    ("a4", "b4"),
];

fn attr_type(j: usize) -> Type {
    match j % 4 {
        0 => Type::Int,
        1 => Type::Str,
        2 => Type::Real,
        _ => Type::Range(1, 5),
    }
}

/// A chain hierarchy `L0 ← L1 ← … ← L{n-1}` where attribute `a_j` is
/// declared on class `L{j % n}` — inherited lookups cross class
/// boundaries for every deeper class.
fn local_schema(n: usize) -> Schema {
    let mut defs = Vec::new();
    for i in 0..n {
        let mut def = ClassDef::new(format!("L{i}"));
        if i > 0 {
            def = def.isa(format!("L{}", i - 1));
        }
        for (j, (a, _)) in ATTRS.iter().enumerate() {
            if j % n == i {
                def = def.attr(*a, attr_type(j));
            }
        }
        defs.push(def);
    }
    Schema::new("PL", defs).expect("chain schema is valid")
}

fn remote_schema() -> Schema {
    let mut item = ClassDef::new("R0");
    for (j, (_, b)) in ATTRS.iter().enumerate() {
        item = item.attr(*b, attr_type(j));
    }
    Schema::new(
        "PR",
        vec![item, ClassDef::new("Aux").attr("name", Type::Str)],
    )
    .expect("remote schema is valid")
}

/// Builds a spec from selector words: for each attribute, whether a
/// propeq exists and which descendant class declares it; optionally a
/// descriptivity rule over a string attribute.
fn build_spec(n: usize, propeq_sel: &[(bool, u8)], descr: Option<u8>) -> Spec {
    let mut spec = Spec::new("PL", "PR");
    let mut objectified: Option<usize> = None;
    if let Some(d) = descr {
        // Pick a string attribute (j % 4 == 1) for objectification.
        let j = [1usize, 1, 1][(d as usize) % 3]; // a1 is the only Str below 4
        let declaring = j % n;
        let class = format!("L{}", declaring + (d as usize) % (n - declaring).max(1));
        spec.add_rule(ComparisonRule::descriptivity(
            "rd",
            class,
            vec![ATTRS[j].0],
            "Aux",
            vec![InterCond::eq(ATTRS[j].0, "name")],
        ));
        objectified = Some(j);
    }
    for (j, (enabled, class_off)) in propeq_sel.iter().enumerate().take(ATTRS.len()) {
        if !enabled {
            continue;
        }
        let declaring = j % n;
        // Any descendant (or the declarer itself) may host the propeq.
        let host = declaring + (*class_off as usize) % (n - declaring).max(1);
        let conv = if matches!(attr_type(j), Type::Range(_, _)) && class_off % 2 == 0 {
            Conversion::Multiply(2.0)
        } else {
            Conversion::Id
        };
        if objectified == Some(j) {
            continue; // the descriptivity rule owns this attribute
        }
        spec.add_propeq(PropEq::named_after_remote(
            format!("L{host}"),
            ATTRS[j].0,
            "R0",
            ATTRS[j].1,
            conv,
            Conversion::Id,
            Decision::Trust(Side::Local),
        ));
    }
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Every interned lookup agrees with the naive hierarchy walk, for
    /// every (class, attribute) pair of the random schema.
    #[test]
    fn plan_index_matches_naive_walk(
        n in 1usize..5,
        propeq_sel in prop::collection::vec((any::<bool>(), 0u8..8), 5..6),
        with_descr in any::<bool>(),
        descr_sel in 0u8..8,
    ) {
        let local = local_schema(n);
        let remote = remote_schema();
        let spec = build_spec(n, &propeq_sel, with_descr.then_some(descr_sel));
        let (lp, rp): (SidePlan, SidePlan) =
            interop_conform::plan::build_plans(&spec, &local, &remote)
                .expect("generated specs are well-typed");
        for (schema, plan) in [(&local, &lp), (&remote, &rp)] {
            let idx = PlanIndex::new(schema, plan);
            for def in schema.classes() {
                for adef in schema.all_attrs(&def.name) {
                    let class = &def.name;
                    let attr = &adef.name;
                    prop_assert_eq!(
                        idx.attr_plan(class, attr),
                        plan.attr_plan(schema, class, attr),
                        "attr_plan diverges on {}.{}", class, attr
                    );
                    prop_assert_eq!(
                        idx.objectify_for(class, attr).map(|o| &o.virt_class),
                        plan.objectify_for(schema, class, attr).map(|o| &o.virt_class),
                        "objectify_for diverges on {}.{}", class, attr
                    );
                }
                for other in schema.classes() {
                    prop_assert_eq!(
                        idx.is_subclass(&def.name, &other.name),
                        schema.is_subclass(&def.name, &other.name),
                        "is_subclass diverges on {} / {}", def.name, other.name
                    );
                }
            }
        }
    }

    /// Conformation over the interned index is deterministic: two runs on
    /// the same random input produce identical schemas, catalogs and
    /// extents (guards the hashed registries against order leaks).
    #[test]
    fn conform_is_deterministic(
        n in 1usize..5,
        propeq_sel in prop::collection::vec((any::<bool>(), 0u8..8), 5..6),
        objs in prop::collection::vec((0u8..4, 0i64..50, 0u8..5), 0..12),
    ) {
        let local = local_schema(n);
        let remote = remote_schema();
        let spec = build_spec(n, &propeq_sel, None);
        let mut ldb = Database::new(local, 1);
        for (class, num, s) in &objs {
            let class = format!("L{}", (*class as usize) % n);
            let mut attrs: Vec<(&str, Value)> = Vec::new();
            for (j, (a, _)) in ATTRS.iter().enumerate() {
                if ldb.schema.resolve_attr(&ClassName::new(&class), &AttrName::new(*a)).is_none() {
                    continue;
                }
                match attr_type(j) {
                    Type::Int => attrs.push((*a, Value::int(*num))),
                    Type::Str => attrs.push((*a, Value::str(format!("s{s}")))),
                    Type::Real => attrs.push((*a, Value::real(*num as f64 / 2.0))),
                    _ => attrs.push((*a, Value::int(1 + (*num % 5)))),
                }
            }
            ldb.create(class, attrs).expect("typed object");
        }
        let rdb = Database::new(remote, 2);
        let run = || {
            conform(&ldb, &Catalog::new(), &rdb, &Catalog::new(), &spec)
                .expect("generated inputs conform")
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.local.db.schema, b.local.db.schema);
        prop_assert_eq!(a.local.db.len(), b.local.db.len());
        for obj in a.local.db.objects() {
            let other = b.local.db.object(obj.id).expect("same ids");
            prop_assert_eq!(obj, other);
        }
        prop_assert_eq!(a.notes.len(), b.notes.len());
    }
}
