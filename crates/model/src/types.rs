//! Attribute types.
//!
//! The type system is the fragment TM (the paper's specification language)
//! actually uses in Figure 1: base scalars, integer ranges (`1..5`),
//! powersets (`Pstring`), and object references.

use std::fmt;

use crate::ident::ClassName;
use crate::value::Value;

/// The type of an attribute.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Type {
    /// `boolean`
    Bool,
    /// `int`
    Int,
    /// `real`
    Real,
    /// `string`
    Str,
    /// Inclusive integer range, e.g. `1..5`. The paper's rating scales.
    Range(i64, i64),
    /// Finite powerset type, e.g. `Pstring` is `SetOf(Str)`.
    SetOf(Box<Type>),
    /// Reference to objects of a class, e.g. `publisher : Publisher`.
    Ref(ClassName),
}

impl Type {
    /// Powerset-of-strings shorthand (TM's `Pstring`).
    pub fn pstring() -> Type {
        Type::SetOf(Box::new(Type::Str))
    }

    /// Is this a numeric type (int, real, or range)?
    pub fn is_numeric(&self) -> bool {
        matches!(self, Type::Int | Type::Real | Type::Range(_, _))
    }

    /// Checks whether `v` is a member of this type.
    ///
    /// `Null` is a member of every type (attributes may be absent).
    /// Numeric coercion applies: an `Int` value inhabits `Real`, and a
    /// whole `Real` inhabits `Int`/`Range` — mirroring the evaluator's
    /// cross-type comparison semantics.
    pub fn admits(&self, v: &Value) -> bool {
        if v.is_null() {
            return true;
        }
        match (self, v) {
            (Type::Bool, Value::Bool(_)) => true,
            (Type::Int, Value::Int(_)) => true,
            (Type::Int, Value::Real(r)) => r.get().fract() == 0.0,
            (Type::Real, Value::Int(_) | Value::Real(_)) => true,
            (Type::Str, Value::Str(_)) => true,
            (Type::Range(lo, hi), _) => match v.as_num() {
                Some(n) => n.get().fract() == 0.0 && *lo as f64 <= n.get() && n.get() <= *hi as f64,
                None => false,
            },
            (Type::SetOf(elem), Value::Set(items)) => items.iter().all(|i| elem.admits(i)),
            (Type::Ref(_), Value::Ref(_)) => true,
            _ => false,
        }
    }

    /// The common supertype of two types, if any. Used when conforming
    /// equivalent properties to a shared domain (paper §2.3).
    pub fn join(&self, other: &Type) -> Option<Type> {
        if self == other {
            return Some(self.clone());
        }
        match (self, other) {
            (Type::Range(a, b), Type::Range(c, d)) => Some(Type::Range((*a).min(*c), (*b).max(*d))),
            (Type::Range(_, _), Type::Int) | (Type::Int, Type::Range(_, _)) => Some(Type::Int),
            (Type::Int, Type::Real)
            | (Type::Real, Type::Int)
            | (Type::Range(_, _), Type::Real)
            | (Type::Real, Type::Range(_, _)) => Some(Type::Real),
            (Type::SetOf(a), Type::SetOf(b)) => Some(Type::SetOf(Box::new(a.join(b)?))),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Bool => write!(f, "boolean"),
            Type::Int => write!(f, "int"),
            Type::Real => write!(f, "real"),
            Type::Str => write!(f, "string"),
            Type::Range(lo, hi) => write!(f, "{lo}..{hi}"),
            Type::SetOf(t) => match **t {
                Type::Str => write!(f, "Pstring"),
                ref other => write!(f, "P({other})"),
            },
            Type::Ref(c) => write!(f, "{c}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_base_scalars() {
        assert!(Type::Bool.admits(&Value::Bool(true)));
        assert!(Type::Int.admits(&Value::int(5)));
        assert!(Type::Real.admits(&Value::real(1.5)));
        assert!(Type::Real.admits(&Value::int(5)));
        assert!(Type::Str.admits(&Value::str("x")));
        assert!(!Type::Str.admits(&Value::int(1)));
    }

    #[test]
    fn null_admitted_everywhere() {
        assert!(Type::Bool.admits(&Value::Null));
        assert!(Type::Range(1, 5).admits(&Value::Null));
    }

    #[test]
    fn range_membership() {
        let r = Type::Range(1, 5);
        assert!(r.admits(&Value::int(1)));
        assert!(r.admits(&Value::int(5)));
        assert!(!r.admits(&Value::int(0)));
        assert!(!r.admits(&Value::int(6)));
        assert!(r.admits(&Value::real(3.0)));
        assert!(!r.admits(&Value::real(3.5)));
    }

    #[test]
    fn int_admits_whole_reals_only() {
        assert!(Type::Int.admits(&Value::real(4.0)));
        assert!(!Type::Int.admits(&Value::real(4.5)));
    }

    #[test]
    fn pstring_membership() {
        let t = Type::pstring();
        assert!(t.admits(&Value::str_set(["a", "b"])));
        assert!(!t.admits(&Value::Set([Value::int(1)].into_iter().collect())));
    }

    #[test]
    fn ref_membership() {
        use crate::object::ObjectId;
        let t = Type::Ref(ClassName::new("Publisher"));
        assert!(t.admits(&Value::Ref(ObjectId::new(0, 1))));
        assert!(!t.admits(&Value::str("ACM")));
    }

    #[test]
    fn join_numeric_tower() {
        assert_eq!(
            Type::Range(1, 5).join(&Type::Range(1, 10)),
            Some(Type::Range(1, 10))
        );
        assert_eq!(Type::Range(1, 5).join(&Type::Real), Some(Type::Real));
        assert_eq!(Type::Int.join(&Type::Real), Some(Type::Real));
        assert_eq!(Type::Str.join(&Type::Int), None);
        assert_eq!(Type::Str.join(&Type::Str), Some(Type::Str));
    }

    #[test]
    fn join_sets() {
        assert_eq!(
            Type::pstring().join(&Type::pstring()),
            Some(Type::pstring())
        );
        let ints = Type::SetOf(Box::new(Type::Int));
        let reals = Type::SetOf(Box::new(Type::Real));
        assert_eq!(ints.join(&reals), Some(Type::SetOf(Box::new(Type::Real))));
    }

    #[test]
    fn display() {
        assert_eq!(Type::Range(1, 5).to_string(), "1..5");
        assert_eq!(Type::pstring().to_string(), "Pstring");
        assert_eq!(
            Type::Ref(ClassName::new("Publisher")).to_string(),
            "Publisher"
        );
    }
}
