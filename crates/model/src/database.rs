//! Databases: a schema plus populated class extents.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::error::ModelError;
use crate::ident::{AttrName, ClassName, DbName};
use crate::object::{Object, ObjectId};
use crate::schema::Schema;
use crate::value::Value;
use crate::Result;

/// The extent of a class: object ids in insertion order.
pub type Extent = Vec<ObjectId>;

/// A populated database: schema + objects + per-class extents.
///
/// Extents are *direct*: `extent(C)` holds only objects whose most-specific
/// class is `C`. Use [`Database::extension`] for the TM semantics where a
/// class's extension includes all subclass instances.
/// Cloning a `Database` is cheap by design: the schema and every
/// object are behind `Arc`s, so a clone shares structure with the
/// original and copies an object only when a mutation touches it
/// (copy-on-write via `Arc::make_mut`). MVCC snapshots and the
/// group-commit mirror clone stores on every commit, so this is a
/// write-path cost, not a convenience.
#[derive(Clone, Debug)]
pub struct Database {
    /// The schema this database instantiates (shared, copy-on-write).
    pub schema: Arc<Schema>,
    space: u32,
    next_serial: u64,
    objects: BTreeMap<ObjectId, Arc<Object>>,
    extents: BTreeMap<ClassName, Extent>,
}

impl Database {
    /// Creates an empty database over `schema`. `space` tags all object ids
    /// created by this database and must be unique among cooperating
    /// databases (the integration layer relies on it).
    pub fn new(schema: Schema, space: u32) -> Self {
        let extents = schema
            .class_names()
            .map(|c| (c.clone(), Vec::new()))
            .collect();
        Database {
            schema: Arc::new(schema),
            space,
            next_serial: 0,
            objects: BTreeMap::new(),
            extents,
        }
    }

    /// The database name (from the schema).
    pub fn name(&self) -> &DbName {
        &self.schema.db
    }

    /// The id-space tag of this database.
    pub fn space(&self) -> u32 {
        self.space
    }

    /// Allocates a fresh object id in this database's space.
    pub fn fresh_id(&mut self) -> ObjectId {
        let id = ObjectId::new(self.space, self.next_serial);
        self.next_serial += 1;
        id
    }

    /// Creates and inserts a new object of `class` with the given
    /// attributes, returning its id. Attributes are type-checked against
    /// the schema.
    pub fn create(
        &mut self,
        class: impl Into<ClassName>,
        attrs: Vec<(&str, Value)>,
    ) -> Result<ObjectId> {
        let class = class.into();
        let id = self.fresh_id();
        let mut obj = Object::new(id, class);
        for (name, v) in attrs {
            obj.set(name, v);
        }
        self.insert(obj)?;
        Ok(id)
    }

    /// Inserts a fully-formed object, type-checking it against the schema.
    pub fn insert(&mut self, obj: Object) -> Result<()> {
        self.typecheck(&obj)?;
        if self.objects.contains_key(&obj.id) {
            return Err(ModelError::DuplicateObject(obj.id));
        }
        self.extents
            .get_mut(&obj.class)
            .expect("validated class has extent")
            .push(obj.id);
        self.next_serial = self.next_serial.max(obj.id.serial() + 1);
        self.objects.insert(obj.id, Arc::new(obj));
        Ok(())
    }

    /// Validates an object against the schema without inserting it.
    pub fn typecheck(&self, obj: &Object) -> Result<()> {
        let class = &obj.class;
        self.schema.class_req(class)?;
        for (attr, value) in &obj.attrs {
            match self.schema.resolve_attr(class, attr) {
                None => {
                    return Err(ModelError::UnknownAttribute {
                        class: class.clone(),
                        attr: attr.clone(),
                    })
                }
                Some((_, def)) => {
                    if !def.ty.admits(value) {
                        return Err(ModelError::TypeMismatch {
                            class: class.clone(),
                            attr: attr.clone(),
                            expected: def.ty.to_string(),
                            got: value.kind().to_string(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Removes an object, returning it.
    pub fn remove(&mut self, id: ObjectId) -> Result<Object> {
        let obj = self
            .objects
            .remove(&id)
            .ok_or(ModelError::UnknownObject(id))?;
        if let Some(ext) = self.extents.get_mut(&obj.class) {
            ext.retain(|&o| o != id);
        }
        Ok(Arc::try_unwrap(obj).unwrap_or_else(|shared| (*shared).clone()))
    }

    /// Updates one attribute of an object, type-checking the new value.
    pub fn update(&mut self, id: ObjectId, attr: impl Into<AttrName>, value: Value) -> Result<()> {
        let attr = attr.into();
        let class = self
            .objects
            .get(&id)
            .ok_or(ModelError::UnknownObject(id))?
            .class
            .clone();
        match self.schema.resolve_attr(&class, &attr) {
            None => Err(ModelError::UnknownAttribute { class, attr }),
            Some((_, def)) => {
                if !def.ty.admits(&value) {
                    return Err(ModelError::TypeMismatch {
                        class,
                        attr,
                        expected: def.ty.to_string(),
                        got: value.kind().to_string(),
                    });
                }
                Arc::make_mut(self.objects.get_mut(&id).expect("checked above")).set(attr, value);
                Ok(())
            }
        }
    }

    /// Looks up an object by id.
    pub fn object(&self, id: ObjectId) -> Option<&Object> {
        self.objects.get(&id).map(|o| &**o)
    }

    /// Looks up an object, erroring if absent.
    pub fn object_req(&self, id: ObjectId) -> Result<&Object> {
        self.objects
            .get(&id)
            .map(|o| &**o)
            .ok_or(ModelError::UnknownObject(id))
    }

    /// All objects, in id order.
    pub fn objects(&self) -> impl Iterator<Item = &Object> {
        self.objects.values().map(|o| &**o)
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// True when no objects exist.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The *direct* extent of a class (most-specific instances only).
    pub fn extent(&self, class: &ClassName) -> &[ObjectId] {
        self.extents.get(class).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// The *extension* of a class: its direct extent plus the extents of
    /// all descendants (TM semantics: `self` in a class constraint ranges
    /// over the extension).
    pub fn extension(&self, class: &ClassName) -> Vec<ObjectId> {
        let mut out = self.extent(class).to_vec();
        for d in self.schema.descendants(class) {
            out.extend_from_slice(self.extent(&d));
        }
        out
    }

    /// Follows an attribute path from an object, dereferencing object
    /// references. E.g. `publisher.name` on a `Proceedings` object reads
    /// the `publisher` ref, then `name` on the referenced `Publisher`.
    ///
    /// Returns `Null` if any step is null; errors on dangling references.
    pub fn navigate(&self, obj: &Object, path: &[AttrName]) -> Result<Value> {
        self.navigate_ref(obj, path).cloned()
    }

    /// Borrowing variant of [`Database::navigate`]: returns a reference
    /// into the object graph instead of cloning the final value. Hot paths
    /// (the merge phase's hash joins) use this to compare and hash values
    /// without allocating.
    pub fn navigate_ref<'a>(&'a self, obj: &'a Object, path: &[AttrName]) -> Result<&'a Value> {
        let mut cur = obj;
        for (i, attr) in path.iter().enumerate() {
            let v = cur.get(attr);
            if i + 1 == path.len() {
                return Ok(v);
            }
            match v {
                Value::Null => return Ok(&Value::Null),
                Value::Ref(id) => {
                    cur = self.object_req(*id)?;
                }
                other => {
                    return Err(ModelError::TypeMismatch {
                        class: cur.class.clone(),
                        attr: attr.clone(),
                        expected: "ref".into(),
                        got: other.kind().into(),
                    })
                }
            }
        }
        Ok(&Value::Null)
    }

    /// Registers a virtual class and migrates nothing — helper used by the
    /// conformation phase.
    pub fn add_virtual_class(&mut self, def: crate::schema::ClassDef) -> Result<()> {
        let name = def.name.clone();
        Arc::make_mut(&mut self.schema).add_class(def)?;
        self.extents.entry(name).or_default();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ClassDef;
    use crate::types::Type;

    fn db() -> Database {
        let schema = Schema::new(
            "Bookseller",
            vec![
                ClassDef::new("Publisher")
                    .attr("name", Type::Str)
                    .attr("location", Type::Str),
                ClassDef::new("Item")
                    .attr("title", Type::Str)
                    .attr("isbn", Type::Str)
                    .attr("publisher", Type::Ref(ClassName::new("Publisher")))
                    .attr("shopprice", Type::Real)
                    .attr("libprice", Type::Real),
                ClassDef::new("Proceedings")
                    .isa("Item")
                    .attr("ref?", Type::Bool)
                    .attr("rating", Type::Range(1, 10)),
                ClassDef::new("Monograph")
                    .isa("Item")
                    .attr("subjects", Type::pstring()),
            ],
        )
        .unwrap();
        Database::new(schema, 2)
    }

    #[test]
    fn create_and_lookup() {
        let mut d = db();
        let p = d
            .create(
                "Publisher",
                vec![("name", "IEEE".into()), ("location", "NY".into())],
            )
            .unwrap();
        let o = d.object(p).unwrap();
        assert_eq!(o.get(&AttrName::new("name")), &Value::str("IEEE"));
        assert_eq!(o.id.space(), 2);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn typecheck_rejects_bad_attr_and_type() {
        let mut d = db();
        let err = d
            .create("Publisher", vec![("bogus", Value::int(1))])
            .unwrap_err();
        assert!(matches!(err, ModelError::UnknownAttribute { .. }));
        let err = d
            .create("Publisher", vec![("name", Value::int(1))])
            .unwrap_err();
        assert!(matches!(err, ModelError::TypeMismatch { .. }));
    }

    #[test]
    fn range_type_enforced() {
        let mut d = db();
        let err = d
            .create("Proceedings", vec![("rating", Value::int(11))])
            .unwrap_err();
        assert!(matches!(err, ModelError::TypeMismatch { .. }));
        assert!(d
            .create("Proceedings", vec![("rating", Value::int(10))])
            .is_ok());
    }

    #[test]
    fn extent_vs_extension() {
        let mut d = db();
        d.create("Item", vec![]).unwrap();
        d.create("Proceedings", vec![]).unwrap();
        d.create("Monograph", vec![]).unwrap();
        assert_eq!(d.extent(&ClassName::new("Item")).len(), 1);
        assert_eq!(d.extension(&ClassName::new("Item")).len(), 3);
        assert_eq!(d.extension(&ClassName::new("Proceedings")).len(), 1);
    }

    #[test]
    fn navigate_ref_path() {
        let mut d = db();
        let p = d.create("Publisher", vec![("name", "ACM".into())]).unwrap();
        let i = d
            .create("Proceedings", vec![("publisher", Value::Ref(p))])
            .unwrap();
        let obj = d.object(i).unwrap().clone();
        let v = d
            .navigate(&obj, &[AttrName::new("publisher"), AttrName::new("name")])
            .unwrap();
        assert_eq!(v, Value::str("ACM"));
    }

    #[test]
    fn navigate_null_short_circuits() {
        let mut d = db();
        let i = d.create("Proceedings", vec![]).unwrap();
        let obj = d.object(i).unwrap().clone();
        let v = d
            .navigate(&obj, &[AttrName::new("publisher"), AttrName::new("name")])
            .unwrap();
        assert_eq!(v, Value::Null);
    }

    #[test]
    fn navigate_non_ref_intermediate_errors() {
        let mut d = db();
        let i = d.create("Item", vec![("title", "X".into())]).unwrap();
        let obj = d.object(i).unwrap().clone();
        let err = d
            .navigate(&obj, &[AttrName::new("title"), AttrName::new("name")])
            .unwrap_err();
        assert!(matches!(err, ModelError::TypeMismatch { .. }));
    }

    #[test]
    fn remove_and_update() {
        let mut d = db();
        let p = d.create("Publisher", vec![("name", "ACM".into())]).unwrap();
        d.update(p, "name", Value::str("IEEE")).unwrap();
        assert_eq!(
            d.object(p).unwrap().get(&AttrName::new("name")),
            &Value::str("IEEE")
        );
        let removed = d.remove(p).unwrap();
        assert_eq!(removed.id, p);
        assert!(d.object(p).is_none());
        assert!(d.extent(&ClassName::new("Publisher")).is_empty());
        assert!(matches!(d.remove(p), Err(ModelError::UnknownObject(_))));
    }

    #[test]
    fn update_rejects_type_mismatch() {
        let mut d = db();
        let p = d.create("Publisher", vec![]).unwrap();
        assert!(matches!(
            d.update(p, "name", Value::int(3)),
            Err(ModelError::TypeMismatch { .. })
        ));
        assert!(matches!(
            d.update(p, "ghost", Value::int(3)),
            Err(ModelError::UnknownAttribute { .. })
        ));
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut d = db();
        let id = d.fresh_id();
        let o = Object::new(id, ClassName::new("Publisher"));
        d.insert(o.clone()).unwrap();
        assert!(matches!(d.insert(o), Err(ModelError::DuplicateObject(_))));
    }

    #[test]
    fn fresh_ids_monotone_after_external_insert() {
        let mut d = db();
        let ext = Object::new(ObjectId::new(2, 10), ClassName::new("Publisher"));
        d.insert(ext).unwrap();
        let next = d.fresh_id();
        assert!(next.serial() > 10);
    }
}
