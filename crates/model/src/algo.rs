//! Small shared algorithms over sorted sequences.

/// Intersection of two ascending slices by a linear merge walk, returned
/// ascending. Shared by the merge phase's hierarchy inference and the
/// storage planner's posting-list intersection.
pub fn intersect_sorted<T: Ord + Copy>(a: &[T], b: &[T]) -> Vec<T> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersects_ascending_slices() {
        assert_eq!(
            intersect_sorted(&[1, 3, 5, 7], &[2, 3, 4, 7, 9]),
            vec![3, 7]
        );
        assert_eq!(intersect_sorted::<i64>(&[], &[1, 2]), Vec::<i64>::new());
        assert_eq!(intersect_sorted(&[1, 2], &[3, 4]), Vec::<i32>::new());
        assert_eq!(intersect_sorted(&[5], &[5]), vec![5]);
    }
}
