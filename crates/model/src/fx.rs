//! A fast, non-cryptographic hasher for hot-path collections.
//!
//! The merge pipeline keys maps on [`crate::ObjectId`], identifier
//! newtypes and [`crate::Value`]; `std`'s default SipHash is a
//! measurable constant-factor cost there. This module provides an
//! FxHash-style multiply-rotate hasher (the algorithm popularised by
//! rustc's `FxHasher`) plus `FxHashMap`/`FxHashSet` aliases.
//!
//! Determinism note: iteration order of these maps is *arbitrary* (not
//! seed-randomised, but insertion- and capacity-dependent). They must
//! only be used for lookups and accumulation; anything user-visible is
//! snapshotted into `BTreeMap`/`BTreeSet` at output boundaries so
//! results stay deterministic. Hashing [`crate::Value`] is sound because
//! `R64` bans NaN at construction and normalises `-0.0` in its `Hash`
//! impl, so `Eq` and `Hash` agree on the whole value space.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the 64-bit variant of FxHash
/// (`0x51_7c_c1_b7_27_22_0a_95`): an odd constant with a good bit mix
/// under wrapping multiplication.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An FxHash-style streaming hasher: for each input word,
/// `state = (state.rotate_left(5) ^ word) * SEED`.
///
/// Not DoS-resistant — fine for in-process maps keyed by trusted data,
/// which is the only way the workspace uses it.
#[derive(Default, Clone)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.mix(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Mix the length in so "ab" + "c" and "a" + "bc" differ.
            self.mix(u64::from_le_bytes(tail) ^ (rest.len() as u64));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.mix(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.mix(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.mix(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ObjectId, Value};
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn distinct_inputs_hash_differently() {
        assert_ne!(hash_of(&ObjectId::new(1, 2)), hash_of(&ObjectId::new(2, 1)));
        assert_ne!(hash_of(&Value::str("ab")), hash_of(&Value::str("ba")));
        assert_ne!(hash_of(&Value::int(1)), hash_of(&Value::int(2)));
    }

    #[test]
    fn chunk_boundaries_matter() {
        // Same bytes split differently must not collide via the tail pad.
        assert_ne!(
            hash_of(&Value::str("abcdefg")),
            hash_of(&Value::str("abcdefg\0"))
        );
    }

    #[test]
    fn hash_agrees_with_eq_for_reals() {
        // R64 normalises -0.0, so Int/Real cross-type equality is the only
        // `sem_eq` nuance — structural Eq is what hashed maps use, and
        // structurally equal values must collide.
        assert_eq!(hash_of(&Value::real(0.0)), hash_of(&Value::real(-0.0)));
        assert_eq!(hash_of(&Value::real(2.5)), hash_of(&Value::real(2.5)));
    }

    #[test]
    fn usable_as_map() {
        let mut m: FxHashMap<Value, u32> = FxHashMap::default();
        m.insert(Value::str("k1"), 1);
        m.insert(Value::int(7), 2);
        assert_eq!(m[&Value::str("k1")], 1);
        assert_eq!(m[&Value::int(7)], 2);
        assert!(!m.contains_key(&Value::str("k2")));
    }
}
