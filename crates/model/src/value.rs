//! Runtime values and the totally-ordered real wrapper [`R64`].
//!
//! All attribute values flowing through the system are [`Value`]s. Values
//! must be usable as `BTreeSet`/`BTreeMap` keys (the constraint solver's
//! finite-domain reasoning depends on it), so reals are wrapped in [`R64`],
//! which bans NaN and therefore admits a total order.
//!
//! # Hashing invariant
//!
//! [`Value`] also derives `Hash` so hot paths (join buckets, id maps,
//! extent accumulation in `interop-merge`) can use hashed maps instead of
//! ordered ones. This is sound only because the `Real` variant is NaN-free
//! by construction: [`R64`] rejects NaN, and its `Hash` impl normalises
//! `-0.0` to `0.0` so that `Hash` agrees with `Eq` everywhere. Any new
//! float-bearing variant must preserve this invariant.

use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;

use crate::object::ObjectId;

/// A 64-bit float with a total order. NaN is rejected at construction.
///
/// The paper's domains (prices, ratings, reimbursement tariffs) never need
/// NaN; banning it lets the whole value space be `Ord`, which the domain
/// algebra in `interop-constraint` relies on.
#[derive(Clone, Copy, PartialEq)]
pub struct R64(f64);

impl PartialOrd for R64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl R64 {
    /// Wraps a finite or infinite (but not NaN) float.
    ///
    /// # Panics
    /// Panics if `v` is NaN. Use [`R64::try_new`] for fallible construction.
    pub fn new(v: f64) -> Self {
        Self::try_new(v).expect("R64 cannot hold NaN")
    }

    /// Fallible constructor: returns `None` for NaN.
    pub fn try_new(v: f64) -> Option<Self> {
        if v.is_nan() {
            None
        } else {
            Some(R64(v))
        }
    }

    /// Returns the wrapped float.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for R64 {}

impl Ord for R64 {
    fn cmp(&self, other: &Self) -> Ordering {
        // Safe: NaN is excluded by construction.
        self.0.partial_cmp(&other.0).expect("R64 is NaN-free")
    }
}

impl std::hash::Hash for R64 {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // A NaN here would make Hash disagree with Eq (NaN != NaN) and
        // silently corrupt every hashed map keyed on Value.
        debug_assert!(!self.0.is_nan(), "R64 is NaN-free by construction");
        // Normalise -0.0 to 0.0 so that Hash agrees with Eq.
        let v = if self.0 == 0.0 { 0.0 } else { self.0 };
        v.to_bits().hash(state);
    }
}

impl fmt::Debug for R64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for R64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<f64> for R64 {
    fn from(v: f64) -> Self {
        R64::new(v)
    }
}

impl From<i64> for R64 {
    fn from(v: i64) -> Self {
        R64::new(v as f64)
    }
}

impl std::ops::Add for R64 {
    type Output = R64;
    fn add(self, rhs: Self) -> R64 {
        R64::new(self.0 + rhs.0)
    }
}

impl std::ops::Sub for R64 {
    type Output = R64;
    fn sub(self, rhs: Self) -> R64 {
        R64::new(self.0 - rhs.0)
    }
}

impl std::ops::Mul for R64 {
    type Output = R64;
    fn mul(self, rhs: Self) -> R64 {
        R64::new(self.0 * rhs.0)
    }
}

impl std::ops::Div for R64 {
    type Output = R64;
    fn div(self, rhs: Self) -> R64 {
        R64::new(self.0 / rhs.0)
    }
}

impl std::ops::Neg for R64 {
    type Output = R64;
    fn neg(self) -> R64 {
        R64::new(-self.0)
    }
}

/// A runtime attribute value.
///
/// `Null` models an absent/undefined attribute (the paper's remote objects
/// need not supply every local attribute, and vice versa).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// Absent / undefined.
    Null,
    /// Boolean, e.g. the bookseller's `ref?`.
    Bool(bool),
    /// Integer, used for range types such as `rating : 1..5`.
    Int(i64),
    /// Real, used for prices and tariffs.
    Real(R64),
    /// String. Refcounted so cloning a value — which the merge pipeline
    /// does for every fused attribute — is a pointer bump, not a copy.
    Str(std::sync::Arc<str>),
    /// Finite set of values, e.g. `editors : Pstring`.
    Set(BTreeSet<Value>),
    /// Reference to another object (e.g. `publisher : Publisher`).
    Ref(ObjectId),
}

impl Value {
    /// Shorthand for a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(std::sync::Arc::from(s.as_ref()))
    }

    /// Shorthand for a real value.
    pub fn real(v: f64) -> Self {
        Value::Real(R64::new(v))
    }

    /// Shorthand for an integer value.
    pub fn int(v: i64) -> Self {
        Value::Int(v)
    }

    /// Shorthand for a set-of-strings value.
    pub fn str_set<I, S>(items: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        Value::Set(items.into_iter().map(Value::str).collect())
    }

    /// Returns true iff this is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view: ints and reals expose an `R64`; everything else `None`.
    pub fn as_num(&self) -> Option<R64> {
        match self {
            Value::Int(i) => Some(R64::from(*i)),
            Value::Real(r) => Some(*r),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(&**s),
            _ => None,
        }
    }

    /// Set view.
    pub fn as_set(&self) -> Option<&BTreeSet<Value>> {
        match self {
            Value::Set(s) => Some(s),
            _ => None,
        }
    }

    /// Reference view.
    pub fn as_ref_id(&self) -> Option<ObjectId> {
        match self {
            Value::Ref(id) => Some(*id),
            _ => None,
        }
    }

    /// Compares two values *numerically where possible* — `Int(3)` equals
    /// `Real(3.0)`. Falls back to the structural `Ord` for same-variant
    /// pairs, and returns `None` for incomparable variants.
    ///
    /// This is the comparison semantics the constraint evaluator uses: the
    /// paper freely mixes integer range types and reals (e.g. conversion
    /// `multiply(2)` maps a `1..5` rating into the bookseller's `1..10`).
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        if let (Some(a), Some(b)) = (self.as_num(), other.as_num()) {
            return Some(a.cmp(&b));
        }
        match (self, other) {
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Set(a), Value::Set(b)) => Some(a.cmp(b)),
            (Value::Ref(a), Value::Ref(b)) => Some(a.cmp(b)),
            (Value::Null, Value::Null) => Some(Ordering::Equal),
            _ => None,
        }
    }

    /// Semantic equality using [`Value::compare`] (so `Int(3) == Real(3.0)`).
    pub fn sem_eq(&self, other: &Value) -> bool {
        self.compare(other) == Some(Ordering::Equal)
    }

    /// Short type tag used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Real(_) => "real",
            Value::Str(_) => "string",
            Value::Set(_) => "set",
            Value::Ref(_) => "ref",
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Real(r) => write!(f, "{r}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Set(items) => {
                write!(f, "{{")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Value::Ref(id) => write!(f, "@{id}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::real(v)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "NaN")]
    fn r64_rejects_nan() {
        let _ = R64::new(f64::NAN);
    }

    #[test]
    fn r64_try_new() {
        assert!(R64::try_new(f64::NAN).is_none());
        assert_eq!(R64::try_new(1.5).unwrap().get(), 1.5);
    }

    #[test]
    fn r64_total_order() {
        let mut v = [R64::new(3.0), R64::new(-1.0), R64::new(f64::INFINITY)];
        v.sort();
        assert_eq!(v[0].get(), -1.0);
        assert_eq!(v[2].get(), f64::INFINITY);
    }

    #[test]
    fn r64_arithmetic() {
        let a = R64::new(10.0);
        let b = R64::new(4.0);
        assert_eq!((a + b).get(), 14.0);
        assert_eq!((a - b).get(), 6.0);
        assert_eq!((a * b).get(), 40.0);
        assert_eq!((a / b).get(), 2.5);
        assert_eq!((-a).get(), -10.0);
    }

    #[test]
    fn numeric_cross_type_compare() {
        assert!(Value::Int(3).sem_eq(&Value::real(3.0)));
        assert_eq!(
            Value::Int(2).compare(&Value::real(2.5)),
            Some(Ordering::Less)
        );
    }

    #[test]
    fn incomparable_variants() {
        assert_eq!(Value::Int(1).compare(&Value::str("x")), None);
        assert!(!Value::Bool(true).sem_eq(&Value::Int(1)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::str("IEEE").to_string(), "'IEEE'");
        assert_eq!(Value::int(7).to_string(), "7");
        assert_eq!(Value::real(2.5).to_string(), "2.5");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::str_set(["a", "b"]).to_string(), "{'a', 'b'}");
    }

    #[test]
    fn set_values_are_ordered_and_deduped() {
        let s = Value::str_set(["b", "a", "b"]);
        assert_eq!(s.to_string(), "{'a', 'b'}");
    }

    #[test]
    fn views() {
        assert_eq!(Value::int(5).as_num().unwrap().get(), 5.0);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert!(Value::Null.is_null());
        assert!(Value::str("x").as_num().is_none());
    }

    #[test]
    fn negative_zero_hash_consistent_with_eq() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |r: R64| {
            let mut s = DefaultHasher::new();
            r.hash(&mut s);
            s.finish()
        };
        assert_eq!(R64::new(0.0), R64::new(-0.0));
        assert_eq!(h(R64::new(0.0)), h(R64::new(-0.0)));
    }
}
