//! Cheap, order-able identifier newtypes for databases, classes and
//! attributes.
//!
//! Identifiers are used pervasively as map keys across the workspace, so
//! they wrap [`std::sync::Arc<str>`] — cloning is a refcount bump, and the
//! derived `Ord` gives deterministic iteration everywhere.

use std::fmt;
use std::sync::Arc;

macro_rules! ident_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(Arc<str>);

        impl $name {
            /// Creates an identifier from anything string-like.
            pub fn new(s: impl AsRef<str>) -> Self {
                Self(Arc::from(s.as_ref()))
            }

            /// Borrows the identifier as a `&str`.
            pub fn as_str(&self) -> &str {
                &self.0
            }

            /// A pointer identifying this identifier's shared allocation,
            /// usable as a cheap cache key on hot paths: clones of one
            /// identifier share it, and equal identifiers from separate
            /// allocations merely miss such a cache (never alias).
            pub fn alloc_ptr(&self) -> usize {
                self.0.as_ptr() as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), &self.0)
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                Self::new(s)
            }
        }

        impl From<String> for $name {
            fn from(s: String) -> Self {
                Self(Arc::from(s))
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                &self.0
            }
        }

        impl Default for $name {
            fn default() -> Self {
                Self(Arc::from(""))
            }
        }
    };
}

ident_newtype!(
    /// The name of a component database (e.g. `CSLibrary`, `Bookseller`).
    DbName
);
ident_newtype!(
    /// The name of a class (e.g. `Publication`, `Proceedings`). Virtual
    /// classes created during integration (e.g. `VirtPublisher`,
    /// `RefereedProceedings`) use the same type.
    ClassName
);
ident_newtype!(
    /// The name of an attribute (e.g. `isbn`, `rating`).
    AttrName
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trip() {
        let c = ClassName::new("Publication");
        assert_eq!(c.to_string(), "Publication");
        assert_eq!(c.as_str(), "Publication");
    }

    #[test]
    fn equality_and_ordering() {
        let a = AttrName::new("isbn");
        let b = AttrName::from("isbn");
        let c = AttrName::from(String::from("rating"));
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(AttrName::new("a") < AttrName::new("b"));
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let d = DbName::new("CSLibrary");
        let d2 = d.clone();
        assert_eq!(d, d2);
    }

    #[test]
    fn debug_includes_type_name() {
        let d = DbName::new("X");
        assert_eq!(format!("{d:?}"), "DbName(X)");
    }

    #[test]
    fn usable_as_map_key() {
        use std::collections::BTreeMap;
        let mut m = BTreeMap::new();
        m.insert(ClassName::new("A"), 1);
        m.insert(ClassName::new("B"), 2);
        assert_eq!(m[&ClassName::new("A")], 1);
        let keys: Vec<_> = m.keys().map(|k| k.as_str().to_owned()).collect();
        assert_eq!(keys, vec!["A", "B"]);
    }
}
