//! Errors raised by the model layer.

use std::fmt;

use crate::ident::{AttrName, ClassName};
use crate::object::ObjectId;

/// Errors from schema and database manipulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ModelError {
    /// A class name was defined twice in one schema.
    DuplicateClass(ClassName),
    /// A class references an unknown parent or attribute class.
    UnknownClass(ClassName),
    /// The `isa` graph contains a cycle through this class.
    CyclicInheritance(ClassName),
    /// An attribute is declared both locally and in an ancestor.
    ShadowedAttribute { class: ClassName, attr: AttrName },
    /// An object carries an attribute its class does not declare.
    UnknownAttribute { class: ClassName, attr: AttrName },
    /// An attribute value does not inhabit the declared type.
    TypeMismatch {
        class: ClassName,
        attr: AttrName,
        expected: String,
        got: String,
    },
    /// An object id was inserted twice.
    DuplicateObject(ObjectId),
    /// An operation referenced an object that does not exist.
    UnknownObject(ObjectId),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::DuplicateClass(c) => write!(f, "class '{c}' defined twice"),
            ModelError::UnknownClass(c) => write!(f, "unknown class '{c}'"),
            ModelError::CyclicInheritance(c) => {
                write!(f, "cyclic isa hierarchy through class '{c}'")
            }
            ModelError::ShadowedAttribute { class, attr } => {
                write!(
                    f,
                    "attribute '{attr}' of class '{class}' shadows an inherited attribute"
                )
            }
            ModelError::UnknownAttribute { class, attr } => {
                write!(f, "class '{class}' has no attribute '{attr}'")
            }
            ModelError::TypeMismatch {
                class,
                attr,
                expected,
                got,
            } => write!(
                f,
                "value for {class}.{attr} has kind {got}, expected type {expected}"
            ),
            ModelError::DuplicateObject(id) => write!(f, "object {id} already exists"),
            ModelError::UnknownObject(id) => write!(f, "object {id} does not exist"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = ModelError::UnknownClass(ClassName::new("Foo"));
        assert_eq!(e.to_string(), "unknown class 'Foo'");
        let e = ModelError::TypeMismatch {
            class: ClassName::new("C"),
            attr: AttrName::new("a"),
            expected: "int".into(),
            got: "string".into(),
        };
        assert!(e.to_string().contains("C.a"));
    }
}
