//! # interop-model
//!
//! Data-model substrate for the instance-based database-interoperation
//! library reproducing Vermeer & Apers, *The Role of Integrity Constraints
//! in Database Interoperation* (VLDB 1996).
//!
//! This crate defines the object-oriented data model the paper assumes:
//! typed attributes, classes arranged in an `isa` hierarchy, objects with
//! attribute valuations, and databases holding class extents. It knows
//! nothing about constraints or integration — those live in the crates
//! layered on top (`interop-constraint`, `interop-spec`, ...).
//!
//! The model mirrors the TM specification language \[BBZ93\] used by the
//! paper closely enough that Figure 1 of the paper can be represented
//! loss-lessly: attribute types include ranges (`1..5`), set types
//! (`Pstring`), and object references (`publisher : Publisher`).

pub mod algo;
pub mod database;
pub mod error;
pub mod fx;
pub mod ident;
pub mod object;
pub mod schema;
pub mod types;
pub mod value;

pub use algo::intersect_sorted;
pub use database::{Database, Extent};
pub use error::ModelError;
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ident::{AttrName, ClassName, DbName};
pub use object::{Object, ObjectId};
pub use schema::{AttrDef, ClassDef, Schema};
pub use types::Type;
pub use value::{Value, R64};

/// Convenient `Result` alias used across the model crate.
pub type Result<T> = std::result::Result<T, ModelError>;
