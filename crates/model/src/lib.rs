//! # interop-model
//!
//! Data-model substrate for the instance-based database-interoperation
//! library reproducing Vermeer & Apers, *The Role of Integrity Constraints
//! in Database Interoperation* (VLDB 1996).
//!
//! This crate defines the object-oriented data model the paper assumes:
//! typed attributes, classes arranged in an `isa` hierarchy, objects with
//! attribute valuations, and databases holding class extents. It knows
//! nothing about constraints or integration — those live in the crates
//! layered on top (`interop-constraint`, `interop-spec`, ...).
//!
//! The model mirrors the TM specification language \[BBZ93\] used by the
//! paper closely enough that Figure 1 of the paper can be represented
//! loss-lessly: attribute types include ranges (`1..5`), set types
//! (`Pstring`), and object references (`publisher : Publisher`).
//!
//! # Invariants
//!
//! Everything above this crate leans on:
//!
//! * **[`R64`] is NaN-free** — construction rejects NaN, so the whole
//!   value space is totally ordered (`Ord`) and hashes consistently with
//!   `Eq` (`-0.0` normalised to `0.0`). The constraint domain algebra,
//!   the storage layer's sorted indexes, and every hashed collection of
//!   [`Value`]s depend on this.
//! * **Strings are refcounted** (`Value::Str(Arc<str>)`): cloning a
//!   value never copies a buffer, which is what makes value fusion and
//!   posting-list construction cheap in `interop-merge`/`-storage`.
//! * **Extents are extension-closed** — [`Database::extension`] reports
//!   subclass instances along with the class's own. Ids come back in
//!   per-class insertion order (parent extent first), **not** sorted:
//!   callers feeding them into ordered set operations such as
//!   [`intersect_sorted`] sort first, as the storage executor does.
//! * **Object ids are space-tagged** ([`ObjectId`]`(space, serial)`):
//!   ids from different databases can never collide, and the merge phase
//!   allocates global objects in its own space.
//! * **Typechecking is schema-driven**: a [`Database`] rejects objects
//!   whose attribute valuations do not fit the declared types, so code
//!   holding a populated database may assume well-typed values.
//!
//! # Example
//!
//! ```
//! use interop_model::{ClassDef, Database, Schema, Type, Value};
//!
//! let schema = Schema::new(
//!     "Shop",
//!     vec![
//!         ClassDef::new("Item").attr("price", Type::Real),
//!         ClassDef::new("Book").isa("Item").attr("isbn", Type::Str),
//!     ],
//! )
//! .unwrap();
//! let mut db = Database::new(schema, 1);
//! let book = db
//!     .create("Book", vec![("price", 12.5.into()), ("isbn", "X".into())])
//!     .unwrap();
//! // Extension closure: the Book is in Item's extension.
//! assert_eq!(db.extension(&"Item".into()), vec![book]);
//! // Int(3) and Real(3.0) compare equal numerically via R64.
//! assert_eq!(Value::int(3).as_num(), Value::real(3.0).as_num());
//! ```

pub mod algo;
pub mod database;
pub mod error;
pub mod fx;
pub mod ident;
pub mod object;
pub mod schema;
pub mod types;
pub mod value;

pub use algo::intersect_sorted;
pub use database::{Database, Extent};
pub use error::ModelError;
pub use fx::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use ident::{AttrName, ClassName, DbName};
pub use object::{Object, ObjectId};
pub use schema::{AttrDef, ClassDef, Schema};
pub use types::Type;
pub use value::{Value, R64};

/// Convenient `Result` alias used across the model crate.
pub type Result<T> = std::result::Result<T, ModelError>;
