//! Schemas: classes, attributes and the `isa` hierarchy.

use std::collections::BTreeMap;

use crate::error::ModelError;
use crate::ident::{AttrName, ClassName, DbName};
use crate::types::Type;
use crate::Result;

/// An attribute declaration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AttrDef {
    /// Attribute name.
    pub name: AttrName,
    /// Declared type.
    pub ty: Type,
}

impl AttrDef {
    /// Creates an attribute declaration.
    pub fn new(name: impl Into<AttrName>, ty: Type) -> Self {
        AttrDef {
            name: name.into(),
            ty,
        }
    }
}

/// A class declaration: name, optional `isa` parent, and local attributes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ClassDef {
    /// Class name.
    pub name: ClassName,
    /// `isa` parent, if any (single inheritance, as in the paper).
    pub parent: Option<ClassName>,
    /// Locally declared attributes (inherited ones are not repeated).
    pub attrs: Vec<AttrDef>,
    /// True for classes synthesised during integration (e.g.
    /// `VirtPublisher`); never set for classes parsed from a schema.
    pub virtual_class: bool,
}

impl ClassDef {
    /// Creates a root class.
    pub fn new(name: impl Into<ClassName>) -> Self {
        ClassDef {
            name: name.into(),
            parent: None,
            attrs: Vec::new(),
            virtual_class: false,
        }
    }

    /// Builder: sets the `isa` parent.
    pub fn isa(mut self, parent: impl Into<ClassName>) -> Self {
        self.parent = Some(parent.into());
        self
    }

    /// Builder: appends an attribute.
    pub fn attr(mut self, name: impl Into<AttrName>, ty: Type) -> Self {
        self.attrs.push(AttrDef::new(name, ty));
        self
    }

    /// Builder: marks the class as virtual.
    pub fn virt(mut self) -> Self {
        self.virtual_class = true;
        self
    }
}

/// A validated schema: a set of classes closed under `isa`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    /// Owning database name (virtual/integrated schemas pick fresh names).
    pub db: DbName,
    classes: BTreeMap<ClassName, ClassDef>,
}

impl Schema {
    /// Builds and validates a schema from class definitions.
    ///
    /// Validation checks: duplicate classes, unknown parents/reference
    /// targets, `isa` cycles, attribute shadowing.
    pub fn new(db: impl Into<DbName>, defs: Vec<ClassDef>) -> Result<Self> {
        let mut classes = BTreeMap::new();
        for def in defs {
            if classes.contains_key(&def.name) {
                return Err(ModelError::DuplicateClass(def.name));
            }
            classes.insert(def.name.clone(), def);
        }
        let schema = Schema {
            db: db.into(),
            classes,
        };
        schema.validate()?;
        Ok(schema)
    }

    fn validate(&self) -> Result<()> {
        for def in self.classes.values() {
            if let Some(p) = &def.parent {
                if !self.classes.contains_key(p) {
                    return Err(ModelError::UnknownClass(p.clone()));
                }
            }
            for a in &def.attrs {
                if let Type::Ref(target) = &a.ty {
                    if !self.classes.contains_key(target) {
                        return Err(ModelError::UnknownClass(target.clone()));
                    }
                }
            }
        }
        // Cycle detection: a parent chain longer than the class count
        // must revisit a class (allocation-free; conformation re-runs
        // this on every rebuilt schema).
        for start in self.classes.keys() {
            let mut steps = 0usize;
            let mut cur = Some(start);
            while let Some(c) = cur {
                steps += 1;
                if steps > self.classes.len() {
                    return Err(ModelError::CyclicInheritance(c.clone()));
                }
                cur = self.classes.get(c).and_then(|d| d.parent.as_ref());
            }
        }
        // Attribute shadowing: each declared attribute must not resolve
        // on the parent chain.
        for def in self.classes.values() {
            if let Some(parent) = &def.parent {
                for a in &def.attrs {
                    if self.resolve_attr(parent, &a.name).is_some() {
                        return Err(ModelError::ShadowedAttribute {
                            class: def.name.clone(),
                            attr: a.name.clone(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Adds a class to an existing schema (used to install virtual classes
    /// during conformation). Re-validates.
    pub fn add_class(&mut self, def: ClassDef) -> Result<()> {
        if self.classes.contains_key(&def.name) {
            return Err(ModelError::DuplicateClass(def.name));
        }
        self.classes.insert(def.name.clone(), def);
        self.validate()
    }

    /// Looks up a class definition.
    pub fn class(&self, name: &ClassName) -> Option<&ClassDef> {
        self.classes.get(name)
    }

    /// Looks up a class, erroring if absent.
    pub fn class_req(&self, name: &ClassName) -> Result<&ClassDef> {
        self.classes
            .get(name)
            .ok_or_else(|| ModelError::UnknownClass(name.clone()))
    }

    /// Iterates over all class definitions in name order.
    pub fn classes(&self) -> impl Iterator<Item = &ClassDef> {
        self.classes.values()
    }

    /// All class names in name order.
    pub fn class_names(&self) -> impl Iterator<Item = &ClassName> {
        self.classes.keys()
    }

    /// Number of classes.
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// True when the schema has no classes.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Proper ancestors of `class`, nearest first. Empty for roots or
    /// unknown classes.
    pub fn ancestors(&self, class: &ClassName) -> Vec<ClassName> {
        let mut out = Vec::new();
        let mut cur = self.classes.get(class).and_then(|d| d.parent.clone());
        while let Some(c) = cur {
            out.push(c.clone());
            cur = self.classes.get(&c).and_then(|d| d.parent.clone());
        }
        out
    }

    /// `class` itself followed by its proper ancestors.
    pub fn self_and_ancestors(&self, class: &ClassName) -> Vec<ClassName> {
        let mut out = vec![class.clone()];
        out.extend(self.ancestors(class));
        out
    }

    /// Direct children of `class`.
    pub fn children(&self, class: &ClassName) -> Vec<ClassName> {
        self.classes
            .values()
            .filter(|d| d.parent.as_ref() == Some(class))
            .map(|d| d.name.clone())
            .collect()
    }

    /// All descendants (transitively), not including `class` itself.
    pub fn descendants(&self, class: &ClassName) -> Vec<ClassName> {
        let mut out = Vec::new();
        let mut stack = self.children(class);
        while let Some(c) = stack.pop() {
            stack.extend(self.children(&c));
            out.push(c);
        }
        out.sort();
        out
    }

    /// True iff `sub` is `sup` or a descendant of `sup`. Walks the parent
    /// chain without allocating (hot in typechecking and query planning).
    pub fn is_subclass(&self, sub: &ClassName, sup: &ClassName) -> bool {
        let mut cur = Some(sub);
        while let Some(c) = cur {
            if c == sup {
                return true;
            }
            cur = self.classes.get(c).and_then(|d| d.parent.as_ref());
        }
        false
    }

    /// Resolves an attribute on `class`, searching the `isa` chain.
    /// Returns the defining class and the declaration. Allocation-free:
    /// this runs for every attribute of every inserted object.
    pub fn resolve_attr(
        &self,
        class: &ClassName,
        attr: &AttrName,
    ) -> Option<(&ClassName, &AttrDef)> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            let (key, def) = self.classes.get_key_value(c)?;
            if let Some(a) = def.attrs.iter().find(|a| &a.name == attr) {
                return Some((key, a));
            }
            cur = def.parent.as_ref();
        }
        None
    }

    /// All attributes visible on `class` (inherited first), in declaration
    /// order along the chain from root to `class`.
    pub fn all_attrs(&self, class: &ClassName) -> Vec<&AttrDef> {
        let mut chain = self.self_and_ancestors(class);
        chain.reverse();
        let mut out = Vec::new();
        for c in chain {
            if let Some(def) = self.classes.get(&c) {
                out.extend(def.attrs.iter());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn library_like() -> Schema {
        Schema::new(
            "CSLibrary",
            vec![
                ClassDef::new("Publication")
                    .attr("title", Type::Str)
                    .attr("isbn", Type::Str)
                    .attr("publisher", Type::Str)
                    .attr("shopprice", Type::Real)
                    .attr("ourprice", Type::Real),
                ClassDef::new("ScientificPubl")
                    .isa("Publication")
                    .attr("editors", Type::pstring())
                    .attr("rating", Type::Range(1, 5)),
                ClassDef::new("RefereedPubl")
                    .isa("ScientificPubl")
                    .attr("avgAccRate", Type::Real),
                ClassDef::new("NonRefereedPubl")
                    .isa("ScientificPubl")
                    .attr("authAffil", Type::Str),
                ClassDef::new("ProfessionalPubl")
                    .isa("Publication")
                    .attr("authors", Type::pstring()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn builds_figure1_library_shape() {
        let s = library_like();
        assert_eq!(s.len(), 5);
        assert!(s.class(&ClassName::new("Publication")).is_some());
    }

    #[test]
    fn rejects_duplicate_class() {
        let err = Schema::new("X", vec![ClassDef::new("A"), ClassDef::new("A")]).unwrap_err();
        assert_eq!(err, ModelError::DuplicateClass(ClassName::new("A")));
    }

    #[test]
    fn rejects_unknown_parent() {
        let err = Schema::new("X", vec![ClassDef::new("A").isa("Ghost")]).unwrap_err();
        assert_eq!(err, ModelError::UnknownClass(ClassName::new("Ghost")));
    }

    #[test]
    fn rejects_unknown_ref_target() {
        let err = Schema::new(
            "X",
            vec![ClassDef::new("A").attr("r", Type::Ref(ClassName::new("Ghost")))],
        )
        .unwrap_err();
        assert_eq!(err, ModelError::UnknownClass(ClassName::new("Ghost")));
    }

    #[test]
    fn rejects_isa_cycle() {
        let err = Schema::new(
            "X",
            vec![ClassDef::new("A").isa("B"), ClassDef::new("B").isa("A")],
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::CyclicInheritance(_)));
    }

    #[test]
    fn rejects_attribute_shadowing() {
        let err = Schema::new(
            "X",
            vec![
                ClassDef::new("A").attr("x", Type::Int),
                ClassDef::new("B").isa("A").attr("x", Type::Real),
            ],
        )
        .unwrap_err();
        assert!(matches!(err, ModelError::ShadowedAttribute { .. }));
    }

    #[test]
    fn ancestors_and_descendants() {
        let s = library_like();
        assert_eq!(
            s.ancestors(&ClassName::new("RefereedPubl")),
            vec![
                ClassName::new("ScientificPubl"),
                ClassName::new("Publication")
            ]
        );
        let desc = s.descendants(&ClassName::new("Publication"));
        assert_eq!(desc.len(), 4);
        assert!(desc.contains(&ClassName::new("RefereedPubl")));
        assert!(s.is_subclass(
            &ClassName::new("RefereedPubl"),
            &ClassName::new("Publication")
        ));
        assert!(!s.is_subclass(
            &ClassName::new("Publication"),
            &ClassName::new("RefereedPubl")
        ));
    }

    #[test]
    fn attribute_resolution_walks_isa() {
        let s = library_like();
        let (owner, def) = s
            .resolve_attr(&ClassName::new("RefereedPubl"), &AttrName::new("isbn"))
            .unwrap();
        assert_eq!(owner, &ClassName::new("Publication"));
        assert_eq!(def.ty, Type::Str);
        assert!(s
            .resolve_attr(&ClassName::new("Publication"), &AttrName::new("rating"))
            .is_none());
    }

    #[test]
    fn all_attrs_inherited_first() {
        let s = library_like();
        let attrs: Vec<_> = s
            .all_attrs(&ClassName::new("RefereedPubl"))
            .iter()
            .map(|a| a.name.as_str().to_owned())
            .collect();
        assert_eq!(attrs[0], "title"); // from Publication
        assert!(attrs.contains(&"rating".to_owned()));
        assert_eq!(attrs.last().unwrap(), "avgAccRate");
    }

    #[test]
    fn add_virtual_class() {
        let mut s = library_like();
        s.add_class(
            ClassDef::new("VirtPublisher")
                .attr("name", Type::Str)
                .virt(),
        )
        .unwrap();
        assert!(
            s.class(&ClassName::new("VirtPublisher"))
                .unwrap()
                .virtual_class
        );
        // Duplicate insertion rejected.
        assert!(s.add_class(ClassDef::new("VirtPublisher")).is_err());
    }
}
