//! Objects: identity plus attribute valuation.

use std::collections::BTreeMap;
use std::fmt;

use crate::ident::{AttrName, ClassName};
use crate::value::Value;

/// A globally unique object identity.
///
/// The high half identifies the *space* the object was created in (one per
/// [`crate::Database`], plus fresh spaces for virtual objects created
/// during conformation and global objects created during merging); the low
/// half is a per-space counter. Packing both into one `Copy` value keeps
/// maps keyed on object identity cheap.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId {
    space: u32,
    serial: u64,
}

impl ObjectId {
    /// Builds an id from a space tag and serial number.
    pub fn new(space: u32, serial: u64) -> Self {
        ObjectId { space, serial }
    }

    /// The space (database) tag.
    pub fn space(self) -> u32 {
        self.space
    }

    /// The per-space serial.
    pub fn serial(self) -> u64 {
        self.serial
    }
}

impl fmt::Display for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.space, self.serial)
    }
}

impl fmt::Debug for ObjectId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ObjectId({self})")
    }
}

/// An object: identity, most-specific class, and attribute values.
///
/// Inherited attributes are stored flat on the object — the schema decides
/// which attribute names are legal for the object's class.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Object {
    /// The object's identity.
    pub id: ObjectId,
    /// The most specific class the object is an instance of.
    pub class: ClassName,
    /// Attribute valuation. Absent attributes read as [`Value::Null`].
    pub attrs: BTreeMap<AttrName, Value>,
}

impl Object {
    /// Creates an object with no attribute values set.
    pub fn new(id: ObjectId, class: ClassName) -> Self {
        Object {
            id,
            class,
            attrs: BTreeMap::new(),
        }
    }

    /// Builder-style attribute setter.
    pub fn with(mut self, attr: impl Into<AttrName>, value: impl Into<Value>) -> Self {
        self.attrs.insert(attr.into(), value.into());
        self
    }

    /// Reads an attribute; missing attributes read as `Null`.
    pub fn get(&self, attr: &AttrName) -> &Value {
        self.attrs.get(attr).unwrap_or(&Value::Null)
    }

    /// Sets an attribute value.
    pub fn set(&mut self, attr: impl Into<AttrName>, value: impl Into<Value>) {
        self.attrs.insert(attr.into(), value.into());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_packing() {
        let id = ObjectId::new(3, 42);
        assert_eq!(id.space(), 3);
        assert_eq!(id.serial(), 42);
        assert_eq!(id.to_string(), "3:42");
    }

    #[test]
    fn id_ordering_by_space_then_serial() {
        assert!(ObjectId::new(0, 99) < ObjectId::new(1, 0));
        assert!(ObjectId::new(1, 1) < ObjectId::new(1, 2));
    }

    #[test]
    fn object_builder_and_access() {
        let o = Object::new(ObjectId::new(0, 1), ClassName::new("Publication"))
            .with("isbn", "90-6196-001")
            .with("shopprice", 29.0);
        assert_eq!(o.get(&AttrName::new("isbn")), &Value::str("90-6196-001"));
        assert_eq!(o.get(&AttrName::new("shopprice")), &Value::real(29.0));
        assert_eq!(o.get(&AttrName::new("missing")), &Value::Null);
    }

    #[test]
    fn set_overwrites() {
        let mut o = Object::new(ObjectId::new(0, 1), ClassName::new("C")).with("a", 1i64);
        o.set("a", 2i64);
        assert_eq!(o.get(&AttrName::new("a")), &Value::int(2));
    }
}
