//! Property-based round-trip tests for the TM front-end: randomly
//! generated schemas and constraints survive print → parse → print as a
//! fixpoint.

use interop_lang::{parse_database, print_database};
use proptest::prelude::*;

/// Generates a small random database source directly as text, from a
/// grammar of valid constructs.
fn arb_source() -> impl Strategy<Value = String> {
    let attr_names = prop::sample::select(vec!["alpha", "beta", "gamma", "delta"]);
    let tys = prop::sample::select(vec!["string", "real", "int", "boolean", "Pstring", "1..9"]);
    let attrs = prop::collection::vec((attr_names, tys), 1..4);
    let n_classes = 1usize..4;
    (attrs, n_classes, any::<bool>()).prop_map(|(attrs, n_classes, with_constraint)| {
        let mut s = String::from("database GenDb\n");
        let attr_block: String = attrs
            .iter()
            .enumerate()
            .map(|(i, (name, ty))| format!("    {name}{i} : {ty}\n"))
            .collect();
        for c in 0..n_classes {
            if c == 0 {
                s.push_str(&format!("class C{c}\n  attributes\n{attr_block}"));
            } else {
                s.push_str(&format!("class C{c} isa C{} \n", c - 1));
                s.push_str("  attributes\n");
                s.push_str(&format!("    extra{c} : real\n"));
            }
            if with_constraint && c == 0 {
                // Constraints reference the numeric/string attrs by kind.
                for (i, (name, ty)) in attrs.iter().enumerate() {
                    match *ty {
                        "real" | "int" | "1..9" => {
                            s.push_str("  object constraints\n");
                            s.push_str(&format!("    oc{i}: {name}{i} >= 1\n"));
                            break;
                        }
                        "string" => {
                            s.push_str("  object constraints\n");
                            s.push_str(&format!("    oc{i}: {name}{i} in {{'a', 'b'}}\n"));
                            break;
                        }
                        _ => {}
                    }
                }
            }
            s.push_str(&format!("end C{c}\n\n"));
        }
        s
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn print_parse_fixpoint(src in arb_source()) {
        let first = match parse_database(&src) {
            Ok(p) => p,
            Err(e) => return Err(TestCaseError::fail(format!("generated source must parse: {e}\n{src}"))),
        };
        let printed = print_database(&first);
        let second = parse_database(&printed)
            .map_err(|e| TestCaseError::fail(format!("printed source must parse: {e}\n{printed}")))?;
        prop_assert_eq!(&first.schema, &second.schema);
        prop_assert_eq!(first.catalog.len(), second.catalog.len());
        prop_assert_eq!(print_database(&first), print_database(&second));
    }
}

#[test]
fn figure1_sources_are_fixpoints() {
    for src in [
        interop_core_fixture_cslibrary(),
        interop_core_fixture_bookseller(),
    ] {
        let first = parse_database(src).unwrap();
        let printed = print_database(&first);
        let second = parse_database(&printed).unwrap();
        assert_eq!(print_database(&first), print_database(&second));
    }
}

// The lang crate cannot depend on interop-core (cycle); inline the
// Figure-1 sources' invariant by re-stating the minimal fragments here.
fn interop_core_fixture_cslibrary() -> &'static str {
    "database CSLibrary\nconst MAX = 10000\nclass Publication\n  attributes\n    isbn : string\n    ourprice : real\n    shopprice : real\n  object constraints\n    oc1: ourprice <= shopprice\n  class constraints\n    cc1: key isbn\n    cc2: (sum (collect x for x in self) over ourprice) < MAX\nend Publication\n"
}

fn interop_core_fixture_bookseller() -> &'static str {
    "database Bookseller\nclass Publisher\n  attributes\n    name : string\nend Publisher\nclass Item\n  attributes\n    isbn : string\n    publisher : Publisher\nend Item\ndatabase constraints\n  dbl: forall p in Publisher exists i in Item | i.publisher = p\n"
}
