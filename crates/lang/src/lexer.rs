//! Lexer for the TM dialect.
//!
//! Token inventory covers Figure 1 of the paper plus the integration-spec
//! syntax: identifiers (which may end in `?`, as in `ref?`), integer and
//! real literals, single-quoted strings, ranges (`1..5`), comparison and
//! arithmetic operators, rule arrows (`<-`), and structural punctuation.
//! `#` starts a line comment.

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keywords are matched by text in the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// Single-quoted string literal.
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `:`
    Colon,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `..`
    DotDot,
    /// `|`
    Pipe,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `<-`
    Arrow,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Int(i) => write!(f, "{i}"),
            Tok::Real(r) => write!(f, "{r}"),
            Tok::Str(s) => write!(f, "'{s}'"),
            Tok::LParen => write!(f, "("),
            Tok::RParen => write!(f, ")"),
            Tok::LBrace => write!(f, "{{"),
            Tok::RBrace => write!(f, "}}"),
            Tok::Colon => write!(f, ":"),
            Tok::Comma => write!(f, ","),
            Tok::Dot => write!(f, "."),
            Tok::DotDot => write!(f, ".."),
            Tok::Pipe => write!(f, "|"),
            Tok::Eq => write!(f, "="),
            Tok::Ne => write!(f, "<>"),
            Tok::Lt => write!(f, "<"),
            Tok::Le => write!(f, "<="),
            Tok::Gt => write!(f, ">"),
            Tok::Ge => write!(f, ">="),
            Tok::Plus => write!(f, "+"),
            Tok::Minus => write!(f, "-"),
            Tok::Star => write!(f, "*"),
            Tok::Slash => write!(f, "/"),
            Tok::Arrow => write!(f, "<-"),
            Tok::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source line (1-based), for error messages.
#[derive(Clone, Debug, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// Lexing errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// Description of the problem.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenises `src`. The resulting vector always ends with [`Tok::Eof`].
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, LexError> {
    let mut out = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let push = |out: &mut Vec<SpannedTok>, tok: Tok, line: u32| {
        out.push(SpannedTok { tok, line });
    };
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            ' ' | '\t' | '\r' => i += 1,
            '#' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                push(&mut out, Tok::LParen, line);
                i += 1;
            }
            ')' => {
                push(&mut out, Tok::RParen, line);
                i += 1;
            }
            '{' => {
                push(&mut out, Tok::LBrace, line);
                i += 1;
            }
            '}' => {
                push(&mut out, Tok::RBrace, line);
                i += 1;
            }
            ':' => {
                push(&mut out, Tok::Colon, line);
                i += 1;
            }
            ',' => {
                push(&mut out, Tok::Comma, line);
                i += 1;
            }
            '|' => {
                push(&mut out, Tok::Pipe, line);
                i += 1;
            }
            '=' => {
                push(&mut out, Tok::Eq, line);
                i += 1;
            }
            '+' => {
                push(&mut out, Tok::Plus, line);
                i += 1;
            }
            '*' => {
                push(&mut out, Tok::Star, line);
                i += 1;
            }
            '/' => {
                push(&mut out, Tok::Slash, line);
                i += 1;
            }
            '-' => {
                push(&mut out, Tok::Minus, line);
                i += 1;
            }
            '.' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'.' {
                    push(&mut out, Tok::DotDot, line);
                    i += 2;
                } else {
                    push(&mut out, Tok::Dot, line);
                    i += 1;
                }
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push(&mut out, Tok::Le, line);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    push(&mut out, Tok::Ne, line);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'-' {
                    push(&mut out, Tok::Arrow, line);
                    i += 2;
                } else {
                    push(&mut out, Tok::Lt, line);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    push(&mut out, Tok::Ge, line);
                    i += 2;
                } else {
                    push(&mut out, Tok::Gt, line);
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    if bytes[j] == b'\n' {
                        return Err(LexError {
                            message: "unterminated string literal".into(),
                            line,
                        });
                    }
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LexError {
                        message: "unterminated string literal".into(),
                        line,
                    });
                }
                push(
                    &mut out,
                    Tok::Str(String::from_utf8_lossy(&bytes[start..j]).into_owned()),
                    line,
                );
                i = j + 1;
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                // A '.' followed by a digit continues a real; '..' is a range.
                let mut is_real = false;
                if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                    is_real = true;
                    i += 1;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
                let text = std::str::from_utf8(&bytes[start..i]).expect("ascii digits");
                if is_real {
                    let v: f64 = text.parse().map_err(|_| LexError {
                        message: format!("invalid real literal '{text}'"),
                        line,
                    })?;
                    push(&mut out, Tok::Real(v), line);
                } else {
                    let v: i64 = text.parse().map_err(|_| LexError {
                        message: format!("invalid integer literal '{text}'"),
                        line,
                    })?;
                    push(&mut out, Tok::Int(v), line);
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                // Trailing '?' is part of the identifier (TM's `ref?`).
                if i < bytes.len() && bytes[i] == b'?' {
                    i += 1;
                }
                let text = String::from_utf8_lossy(&bytes[start..i]).into_owned();
                push(&mut out, Tok::Ident(text), line);
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character '{other}'"),
                    line,
                })
            }
        }
    }
    out.push(SpannedTok {
        tok: Tok::Eof,
        line,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn idents_and_keywords() {
        assert_eq!(
            toks("class Publication isa Item"),
            vec![
                Tok::Ident("class".into()),
                Tok::Ident("Publication".into()),
                Tok::Ident("isa".into()),
                Tok::Ident("Item".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn ref_question_mark_ident() {
        assert_eq!(
            toks("ref? = true"),
            vec![
                Tok::Ident("ref?".into()),
                Tok::Eq,
                Tok::Ident("true".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn range_vs_real() {
        assert_eq!(
            toks("rating : 1..5"),
            vec![
                Tok::Ident("rating".into()),
                Tok::Colon,
                Tok::Int(1),
                Tok::DotDot,
                Tok::Int(5),
                Tok::Eof
            ]
        );
        assert_eq!(toks("2.5"), vec![Tok::Real(2.5), Tok::Eof]);
        assert_eq!(
            toks("2 .. 5"),
            vec![Tok::Int(2), Tok::DotDot, Tok::Int(5), Tok::Eof]
        );
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("<= >= <> < > = <-"),
            vec![
                Tok::Le,
                Tok::Ge,
                Tok::Ne,
                Tok::Lt,
                Tok::Gt,
                Tok::Eq,
                Tok::Arrow,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn strings_and_sets() {
        assert_eq!(
            toks("publisher in {'ACM', 'IEEE'}"),
            vec![
                Tok::Ident("publisher".into()),
                Tok::Ident("in".into()),
                Tok::LBrace,
                Tok::Str("ACM".into()),
                Tok::Comma,
                Tok::Str("IEEE".into()),
                Tok::RBrace,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_and_lines() {
        let ts = lex("a # comment\nb").unwrap();
        assert_eq!(ts[0].tok, Tok::Ident("a".into()));
        assert_eq!(ts[0].line, 1);
        assert_eq!(ts[1].tok, Tok::Ident("b".into()));
        assert_eq!(ts[1].line, 2);
    }

    #[test]
    fn dotted_paths() {
        assert_eq!(
            toks("publisher.name"),
            vec![
                Tok::Ident("publisher".into()),
                Tok::Dot,
                Tok::Ident("name".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("'oops").is_err());
        assert!(lex("'oops\n'").is_err());
    }

    #[test]
    fn unexpected_char_errors() {
        let err = lex("a @ b").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn negative_numbers_are_minus_then_literal() {
        assert_eq!(toks("-3"), vec![Tok::Minus, Tok::Int(3), Tok::Eof]);
    }
}
