//! Recursive-descent parser for TM-dialect database specifications.
//!
//! The dialect covers everything Figure 1 of the paper uses:
//!
//! ```text
//! database CSLibrary
//!
//! const KNOWNPUBLISHERS = {'ACM', 'IEEE', 'Springer'}
//! const MAX = 10000
//!
//! class Publication
//!   attributes
//!     title : string
//!     isbn : string
//!     publisher : string
//!     shopprice : real
//!     ourprice : real
//!   object constraints
//!     oc1: ourprice <= shopprice
//!     oc2: publisher in KNOWNPUBLISHERS
//!   class constraints
//!     cc1: key isbn
//!     cc2: (sum (collect x for x in self) over ourprice) < MAX
//! end Publication
//!
//! class ScientificPubl isa Publication
//!   ...
//! end ScientificPubl
//!
//! database constraints
//!   dbl: forall p in Publisher exists i in Item | i.publisher = p
//! ```
//!
//! One deliberate deviation from TM: symbolic constants (`MAX`,
//! `KNOWNPUBLISHERS`) must be declared with `const`, since the paper
//! leaves their values open but the executable system needs them.

use std::collections::{BTreeMap, BTreeSet};

use interop_constraint::{
    AggOp, Catalog, ClassConstraint, ClassConstraintBody, CmpOp, ConstraintId, DbConstraint, Expr,
    Formula, ObjectConstraint, PairAtom, Path, Quantifier, Status,
};
use interop_model::{AttrName, ClassDef, ClassName, DbName, Schema, Type, Value};

use crate::error::ParseError;
use crate::lexer::{lex, SpannedTok, Tok};

/// A declared symbolic constant.
#[derive(Clone, Debug, PartialEq)]
pub enum ConstVal {
    /// A scalar constant (`MAX = 10000`).
    Scalar(Value),
    /// A set constant (`KNOWNPUBLISHERS = {'ACM', ...}`).
    Set(BTreeSet<Value>),
}

/// The result of parsing one database specification.
#[derive(Clone, Debug)]
pub struct ParsedDatabase {
    /// The validated schema.
    pub schema: Schema,
    /// The constraint catalog.
    pub catalog: Catalog,
    /// Declared constants (kept for printing).
    pub consts: BTreeMap<String, ConstVal>,
}

/// Parses a database specification from source text.
pub fn parse_database(src: &str) -> Result<ParsedDatabase, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser::new(&toks);
    p.database()
}

pub(crate) struct Parser<'a> {
    toks: &'a [SpannedTok],
    pub(crate) pos: usize,
}

impl<'a> Parser<'a> {
    pub(crate) fn new(toks: &'a [SpannedTok]) -> Self {
        Parser { toks, pos: 0 }
    }

    pub(crate) fn peek(&self) -> &Tok {
        &self.toks[self.pos.min(self.toks.len() - 1)].tok
    }

    pub(crate) fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    pub(crate) fn line(&self) -> u32 {
        self.toks[self.pos.min(self.toks.len() - 1)].line
    }

    pub(crate) fn next(&mut self) -> Tok {
        let t = self.peek().clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    pub(crate) fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError::new(msg, self.line()))
    }

    pub(crate) fn expect(&mut self, t: &Tok) -> Result<(), ParseError> {
        if self.peek() == t {
            self.next();
            Ok(())
        } else {
            self.err(format!("expected '{t}', found '{}'", self.peek()))
        }
    }

    /// Consumes an identifier token (any text).
    pub(crate) fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.next();
                Ok(s)
            }
            other => self.err(format!("expected identifier, found '{other}'")),
        }
    }

    /// Consumes a specific keyword (identifier with exact text).
    pub(crate) fn keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Ident(s) if s == kw => {
                self.next();
                Ok(())
            }
            other => self.err(format!("expected '{kw}', found '{other}'")),
        }
    }

    /// Consumes the keyword if present; returns whether it was.
    pub(crate) fn accept_kw(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.next();
            true
        } else {
            false
        }
    }

    pub(crate) fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    // ---------------------------------------------------------------
    // Database specification
    // ---------------------------------------------------------------

    fn database(&mut self) -> Result<ParsedDatabase, ParseError> {
        self.keyword("database")?;
        let db_name = DbName::new(self.ident()?);
        let mut consts: BTreeMap<String, ConstVal> = BTreeMap::new();
        let mut classes: Vec<ClassDef> = Vec::new();
        // Constraints are collected raw and installed after the schema
        // validates (ids need the db name; formulas need const resolution
        // which happens inline).
        let mut catalog = Catalog::new();
        loop {
            if self.accept_kw("const") {
                let name = self.ident()?;
                self.expect(&Tok::Eq)?;
                let val = self.const_val()?;
                consts.insert(name, val);
            } else if self.at_kw("class") && matches!(self.peek2(), Tok::Ident(_)) {
                let (def, ocs, ccs) = self.class_decl(&db_name, &consts)?;
                classes.push(def);
                for c in ocs {
                    catalog.add_object(c);
                }
                for c in ccs {
                    catalog.add_class(c);
                }
            } else if self.at_kw("database") {
                // `database constraints` section.
                self.next();
                self.keyword("constraints")?;
                while matches!(self.peek(), Tok::Ident(_)) && matches!(self.peek2(), Tok::Colon) {
                    let dc = self.db_constraint(&db_name)?;
                    catalog.add_database(dc);
                }
            } else if matches!(self.peek(), Tok::Eof) {
                break;
            } else {
                return self.err(format!(
                    "expected 'const', 'class', or 'database constraints', found '{}'",
                    self.peek()
                ));
            }
        }
        let schema = Schema::new(db_name, classes)
            .map_err(|e| ParseError::new(format!("schema error: {e}"), 0))?;
        Ok(ParsedDatabase {
            schema,
            catalog,
            consts,
        })
    }

    fn const_val(&mut self) -> Result<ConstVal, ParseError> {
        if matches!(self.peek(), Tok::LBrace) {
            let set = self.value_set()?;
            Ok(ConstVal::Set(set))
        } else {
            Ok(ConstVal::Scalar(self.literal()?))
        }
    }

    pub(crate) fn literal(&mut self) -> Result<Value, ParseError> {
        match self.peek().clone() {
            Tok::Int(i) => {
                self.next();
                Ok(Value::Int(i))
            }
            Tok::Real(r) => {
                self.next();
                Ok(Value::real(r))
            }
            Tok::Str(s) => {
                self.next();
                Ok(Value::Str(s.into()))
            }
            Tok::Minus => {
                self.next();
                match self.literal()? {
                    Value::Int(i) => Ok(Value::Int(-i)),
                    Value::Real(r) => Ok(Value::Real(-r)),
                    other => self.err(format!("cannot negate {other}")),
                }
            }
            Tok::Ident(s) if s == "true" => {
                self.next();
                Ok(Value::Bool(true))
            }
            Tok::Ident(s) if s == "false" => {
                self.next();
                Ok(Value::Bool(false))
            }
            other => self.err(format!("expected literal value, found '{other}'")),
        }
    }

    fn value_set(&mut self) -> Result<BTreeSet<Value>, ParseError> {
        self.expect(&Tok::LBrace)?;
        let mut set = BTreeSet::new();
        if !matches!(self.peek(), Tok::RBrace) {
            loop {
                set.insert(self.literal()?);
                if matches!(self.peek(), Tok::Comma) {
                    self.next();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RBrace)?;
        Ok(set)
    }

    fn class_decl(
        &mut self,
        db: &DbName,
        consts: &BTreeMap<String, ConstVal>,
    ) -> Result<(ClassDef, Vec<ObjectConstraint>, Vec<ClassConstraint>), ParseError> {
        self.keyword("class")?;
        let name = ClassName::new(self.ident()?);
        let mut def = ClassDef::new(name.clone());
        if self.accept_kw("isa") {
            def = def.isa(self.ident()?);
        }
        let mut ocs = Vec::new();
        let mut ccs = Vec::new();
        loop {
            if self.accept_kw("attributes") {
                while matches!(self.peek(), Tok::Ident(_))
                    && matches!(self.peek2(), Tok::Colon)
                    && !self.at_section_start()
                {
                    let attr = self.ident()?;
                    self.expect(&Tok::Colon)?;
                    let ty = self.type_expr()?;
                    def = def.attr(attr, ty);
                }
            } else if self.at_kw("object") {
                self.next();
                self.keyword("constraints")?;
                while self.at_label() {
                    let label = self.ident()?;
                    self.expect(&Tok::Colon)?;
                    let f = self.formula(consts)?;
                    ocs.push(ObjectConstraint::new(
                        ConstraintId::new(db, &name, &label),
                        name.clone(),
                        f,
                    ));
                }
            } else if self.at_kw("class")
                && matches!(self.peek2(), Tok::Ident(s) if s == "constraints")
            {
                self.next();
                self.keyword("constraints")?;
                while self.at_label() {
                    let label = self.ident()?;
                    self.expect(&Tok::Colon)?;
                    let body = self.class_constraint_body(consts)?;
                    ccs.push(ClassConstraint::new(
                        ConstraintId::new(db, &name, &label),
                        name.clone(),
                        body,
                    ));
                }
            } else if self.accept_kw("end") {
                let closing = self.ident()?;
                if closing != name.as_str() {
                    return self.err(format!("'end {closing}' does not match 'class {name}'"));
                }
                break;
            } else {
                return self.err(format!(
                    "expected 'attributes', 'object constraints', 'class constraints' or 'end', found '{}'",
                    self.peek()
                ));
            }
        }
        Ok((def, ocs, ccs))
    }

    /// Is the cursor at a `label:` line (and not at a section keyword)?
    fn at_label(&self) -> bool {
        matches!(self.peek(), Tok::Ident(_))
            && matches!(self.peek2(), Tok::Colon)
            && !self.at_section_start()
    }

    fn at_section_start(&self) -> bool {
        self.at_kw("attributes")
            || self.at_kw("object")
            || self.at_kw("end")
            || (self.at_kw("class") && matches!(self.peek2(), Tok::Ident(s) if s == "constraints"))
            || (self.at_kw("database")
                && matches!(self.peek2(), Tok::Ident(s) if s == "constraints"))
    }

    fn type_expr(&mut self) -> Result<Type, ParseError> {
        match self.peek().clone() {
            Tok::Int(lo) => {
                self.next();
                self.expect(&Tok::DotDot)?;
                match self.next() {
                    Tok::Int(hi) => Ok(Type::Range(lo, hi)),
                    other => self.err(format!("expected range upper bound, found '{other}'")),
                }
            }
            Tok::Ident(s) => {
                self.next();
                Ok(match s.as_str() {
                    "string" => Type::Str,
                    "real" => Type::Real,
                    "int" => Type::Int,
                    "boolean" | "bool" => Type::Bool,
                    "Pstring" => Type::pstring(),
                    other => Type::Ref(ClassName::new(other)),
                })
            }
            other => self.err(format!("expected type, found '{other}'")),
        }
    }

    fn class_constraint_body(
        &mut self,
        consts: &BTreeMap<String, ConstVal>,
    ) -> Result<ClassConstraintBody, ParseError> {
        if self.accept_kw("key") {
            let mut attrs = vec![AttrName::new(self.ident()?)];
            while matches!(self.peek(), Tok::Comma) {
                self.next();
                attrs.push(AttrName::new(self.ident()?));
            }
            return Ok(ClassConstraintBody::Key(attrs));
        }
        // `(agg (collect x for x in self) over path) cmp bound`
        self.expect(&Tok::LParen)?;
        let op = match self.ident()?.as_str() {
            "sum" => AggOp::Sum,
            "avg" => AggOp::Avg,
            "count" => AggOp::Count,
            "min" => AggOp::Min,
            "max" => AggOp::Max,
            other => return self.err(format!("unknown aggregate '{other}'")),
        };
        self.expect(&Tok::LParen)?;
        self.keyword("collect")?;
        let v1 = self.ident()?;
        self.keyword("for")?;
        let v2 = self.ident()?;
        if v1 != v2 {
            return self.err(format!("collect variable '{v1}' does not match '{v2}'"));
        }
        self.keyword("in")?;
        self.keyword("self")?;
        self.expect(&Tok::RParen)?;
        self.keyword("over")?;
        let path = self.path()?;
        self.expect(&Tok::RParen)?;
        let cmp = self.cmp_op()?;
        let bound = match self.peek().clone() {
            Tok::Ident(s) if consts.contains_key(&s) => {
                self.next();
                match &consts[&s] {
                    ConstVal::Scalar(v) => v.clone(),
                    ConstVal::Set(_) => {
                        return self.err(format!("set constant '{s}' cannot bound an aggregate"))
                    }
                }
            }
            _ => self.literal()?,
        };
        Ok(ClassConstraintBody::Aggregate {
            op,
            path,
            cmp,
            bound,
        })
    }

    pub(crate) fn path(&mut self) -> Result<Path, ParseError> {
        let mut segs = vec![AttrName::new(self.ident()?)];
        while matches!(self.peek(), Tok::Dot) {
            self.next();
            segs.push(AttrName::new(self.ident()?));
        }
        Ok(Path(segs))
    }

    pub(crate) fn cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        let op = match self.peek() {
            Tok::Eq => CmpOp::Eq,
            Tok::Ne => CmpOp::Ne,
            Tok::Lt => CmpOp::Lt,
            Tok::Le => CmpOp::Le,
            Tok::Gt => CmpOp::Gt,
            Tok::Ge => CmpOp::Ge,
            other => return self.err(format!("expected comparison operator, found '{other}'")),
        };
        self.next();
        Ok(op)
    }

    fn db_constraint(&mut self, db: &DbName) -> Result<DbConstraint, ParseError> {
        let label = self.ident()?;
        self.expect(&Tok::Colon)?;
        self.keyword("forall")?;
        let outer_var = self.ident()?;
        self.keyword("in")?;
        let outer_class = ClassName::new(self.ident()?);
        let quant = if self.accept_kw("exists") {
            Quantifier::Exists
        } else {
            self.keyword("forall")?;
            Quantifier::Forall
        };
        let inner_var = self.ident()?;
        self.keyword("in")?;
        let inner_class = ClassName::new(self.ident()?);
        self.expect(&Tok::Pipe)?;
        let mut atoms = Vec::new();
        loop {
            atoms.push(self.pair_atom(&outer_var, &inner_var)?);
            if !self.accept_kw("and") {
                break;
            }
        }
        Ok(DbConstraint {
            id: ConstraintId::db_level(db, &label),
            outer_class,
            quant,
            inner_class,
            atoms,
            status: Status::Unclassified,
        })
    }

    /// One side of a database-constraint atom: a variable, optionally with
    /// a path (`i.publisher` or bare `p`).
    fn var_path(&mut self, outer: &str, inner: &str) -> Result<(bool, Path), ParseError> {
        let head = self.ident()?;
        let is_outer = if head == outer {
            true
        } else if head == inner {
            false
        } else {
            return self.err(format!(
                "unknown variable '{head}' (expected '{outer}' or '{inner}')"
            ));
        };
        let mut segs = Vec::new();
        while matches!(self.peek(), Tok::Dot) {
            self.next();
            segs.push(AttrName::new(self.ident()?));
        }
        Ok((is_outer, Path(segs)))
    }

    fn pair_atom(&mut self, outer: &str, inner: &str) -> Result<PairAtom, ParseError> {
        let (lhs_outer, lhs) = self.var_path(outer, inner)?;
        let op = self.cmp_op()?;
        let (rhs_outer, rhs) = self.var_path(outer, inner)?;
        match (lhs_outer, rhs_outer) {
            (false, true) => Ok(PairAtom {
                inner: lhs,
                op,
                outer: rhs,
            }),
            (true, false) => Ok(PairAtom {
                inner: rhs,
                op: op.flip(),
                outer: lhs,
            }),
            _ => self.err("database-constraint atom must relate both variables"),
        }
    }

    // ---------------------------------------------------------------
    // Formulas and expressions (shared with the spec parser)
    // ---------------------------------------------------------------

    pub(crate) fn formula(
        &mut self,
        consts: &BTreeMap<String, ConstVal>,
    ) -> Result<Formula, ParseError> {
        let lhs = self.or_formula(consts)?;
        if self.accept_kw("implies") {
            let rhs = self.formula(consts)?;
            Ok(lhs.implies(rhs))
        } else {
            Ok(lhs)
        }
    }

    fn or_formula(&mut self, consts: &BTreeMap<String, ConstVal>) -> Result<Formula, ParseError> {
        let mut acc = self.and_formula(consts)?;
        while self.accept_kw("or") {
            let rhs = self.and_formula(consts)?;
            acc = acc.or(rhs);
        }
        Ok(acc)
    }

    fn and_formula(&mut self, consts: &BTreeMap<String, ConstVal>) -> Result<Formula, ParseError> {
        let mut acc = self.not_formula(consts)?;
        while self.accept_kw("and") {
            let rhs = self.not_formula(consts)?;
            acc = acc.and(rhs);
        }
        Ok(acc)
    }

    fn not_formula(&mut self, consts: &BTreeMap<String, ConstVal>) -> Result<Formula, ParseError> {
        if self.accept_kw("not") {
            let inner = self.not_formula(consts)?;
            return Ok(Formula::Not(Box::new(inner)));
        }
        self.atom_formula(consts)
    }

    fn atom_formula(&mut self, consts: &BTreeMap<String, ConstVal>) -> Result<Formula, ParseError> {
        // contains(path, 'lit')
        if self.at_kw("contains") && matches!(self.peek2(), Tok::LParen) {
            self.next();
            self.expect(&Tok::LParen)?;
            let e = self.expr(consts)?;
            self.expect(&Tok::Comma)?;
            let lit = match self.next() {
                Tok::Str(s) => s,
                other => return self.err(format!("expected string literal, found '{other}'")),
            };
            self.expect(&Tok::RParen)?;
            return Ok(Formula::Contains(e, lit));
        }
        // Parenthesised formula — with backtracking to parenthesised expr.
        if matches!(self.peek(), Tok::LParen) {
            let save = self.pos;
            self.next();
            if let Ok(f) = self.formula(consts) {
                if matches!(self.peek(), Tok::RParen) {
                    self.next();
                    // If a comparison or arithmetic operator follows, this
                    // was really a parenthesised *expression*.
                    if !matches!(
                        self.peek(),
                        Tok::Eq
                            | Tok::Ne
                            | Tok::Lt
                            | Tok::Le
                            | Tok::Gt
                            | Tok::Ge
                            | Tok::Plus
                            | Tok::Minus
                            | Tok::Star
                            | Tok::Slash
                    ) && !self.at_kw("in")
                    {
                        return Ok(f);
                    }
                }
            }
            self.pos = save; // fall through to expression route
        }
        // true / false as bare formulas (unless used as comparison operand).
        if (self.at_kw("true") || self.at_kw("false"))
            && !matches!(
                self.peek2(),
                Tok::Eq | Tok::Ne | Tok::Lt | Tok::Le | Tok::Gt | Tok::Ge
            )
        {
            let b = self.accept_kw("true");
            if !b {
                self.keyword("false")?;
            }
            return Ok(if b { Formula::True } else { Formula::False });
        }
        // expr (cmp expr | in set)
        let lhs = self.expr(consts)?;
        if self.accept_kw("in") {
            let set = match self.peek().clone() {
                Tok::Ident(s) if consts.contains_key(&s) => {
                    self.next();
                    match &consts[&s] {
                        ConstVal::Set(set) => set.clone(),
                        ConstVal::Scalar(v) => [v.clone()].into_iter().collect(),
                    }
                }
                _ => self.value_set()?,
            };
            return Ok(Formula::In(lhs, set));
        }
        let op = self.cmp_op()?;
        let rhs = self.expr(consts)?;
        Ok(Formula::Cmp(lhs, op, rhs))
    }

    pub(crate) fn expr(&mut self, consts: &BTreeMap<String, ConstVal>) -> Result<Expr, ParseError> {
        let mut acc = self.term(consts)?;
        loop {
            let op = match self.peek() {
                Tok::Plus => interop_constraint::ArithOp::Add,
                Tok::Minus => interop_constraint::ArithOp::Sub,
                _ => break,
            };
            self.next();
            let rhs = self.term(consts)?;
            acc = Expr::Bin(Box::new(acc), op, Box::new(rhs));
        }
        Ok(acc)
    }

    fn term(&mut self, consts: &BTreeMap<String, ConstVal>) -> Result<Expr, ParseError> {
        let mut acc = self.factor(consts)?;
        loop {
            let op = match self.peek() {
                Tok::Star => interop_constraint::ArithOp::Mul,
                Tok::Slash => interop_constraint::ArithOp::Div,
                _ => break,
            };
            self.next();
            let rhs = self.factor(consts)?;
            acc = Expr::Bin(Box::new(acc), op, Box::new(rhs));
        }
        Ok(acc)
    }

    fn factor(&mut self, consts: &BTreeMap<String, ConstVal>) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Int(_) | Tok::Real(_) | Tok::Str(_) => Ok(Expr::Const(self.literal()?)),
            Tok::Minus => {
                self.next();
                let inner = self.factor(consts)?;
                Ok(Expr::Neg(Box::new(inner)))
            }
            Tok::LParen => {
                self.next();
                let e = self.expr(consts)?;
                self.expect(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(s) if s == "true" => {
                self.next();
                Ok(Expr::Const(Value::Bool(true)))
            }
            Tok::Ident(s) if s == "false" => {
                self.next();
                Ok(Expr::Const(Value::Bool(false)))
            }
            Tok::Ident(s) => {
                if let Some(c) = consts.get(&s) {
                    self.next();
                    return match c {
                        ConstVal::Scalar(v) => Ok(Expr::Const(v.clone())),
                        ConstVal::Set(_) => {
                            self.err(format!("set constant '{s}' used as a scalar"))
                        }
                    };
                }
                Ok(Expr::Attr(self.path()?))
            }
            other => self.err(format!("expected expression, found '{other}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL_DB: &str = "
database Bookseller

class Publisher
  attributes
    name : string
    location : string
end Publisher

class Item
  attributes
    title : string
    isbn : string
    publisher : Publisher
    shopprice : real
    libprice : real
  object constraints
    oc1: libprice <= shopprice
  class constraints
    cc1: key isbn
end Item

class Proceedings isa Item
  attributes
    ref? : boolean
    rating : 1..10
  object constraints
    oc1: publisher.name = 'IEEE' implies ref? = true
    oc2: ref? = true implies rating >= 7
    oc3: publisher.name = 'ACM' implies rating >= 6
end Proceedings

class Monograph isa Item
  attributes
    subjects : Pstring
end Monograph

database constraints
  dbl: forall p in Publisher exists i in Item | i.publisher = p
";

    #[test]
    fn parses_bookseller_figure1() {
        let parsed = parse_database(SMALL_DB).unwrap();
        assert_eq!(parsed.schema.db.as_str(), "Bookseller");
        assert_eq!(parsed.schema.len(), 4);
        let proc_class = ClassName::new("Proceedings");
        assert_eq!(parsed.catalog.object_on(&proc_class).len(), 3);
        assert_eq!(
            parsed.catalog.object_on(&proc_class)[1].formula.to_string(),
            "ref? = true implies rating >= 7"
        );
        assert_eq!(parsed.catalog.database_constraints().len(), 1);
        assert_eq!(
            parsed.catalog.database_constraints()[0].to_string(),
            "[Bookseller.dbl] forall p in Publisher exists i in Item | i.publisher = p"
        );
    }

    #[test]
    fn range_and_ref_types() {
        let parsed = parse_database(SMALL_DB).unwrap();
        let (_, rating) = parsed
            .schema
            .resolve_attr(&ClassName::new("Proceedings"), &AttrName::new("rating"))
            .unwrap();
        assert_eq!(rating.ty, Type::Range(1, 10));
        let (_, publ) = parsed
            .schema
            .resolve_attr(&ClassName::new("Item"), &AttrName::new("publisher"))
            .unwrap();
        assert_eq!(publ.ty, Type::Ref(ClassName::new("Publisher")));
    }

    #[test]
    fn consts_resolve_in_constraints() {
        let src = "
database L
const MAX = 100
const NAMES = {'ACM', 'IEEE'}
class C
  attributes
    price : real
    publisher : string
  object constraints
    oc1: publisher in NAMES
  class constraints
    cc1: (sum (collect x for x in self) over price) < MAX
end C
";
        let parsed = parse_database(src).unwrap();
        let c = ClassName::new("C");
        assert_eq!(
            parsed.catalog.object_on(&c)[0].formula.to_string(),
            "publisher in {'ACM', 'IEEE'}"
        );
        match &parsed.catalog.class_on(&c)[0].body {
            ClassConstraintBody::Aggregate { op, bound, .. } => {
                assert_eq!(*op, AggOp::Sum);
                assert_eq!(bound, &Value::Int(100));
            }
            other => panic!("expected aggregate, got {other:?}"),
        }
        assert_eq!(parsed.catalog.class_on(&c).len(), 1);
    }

    #[test]
    fn key_constraint_parses() {
        let parsed = parse_database(SMALL_DB).unwrap();
        let item = ClassName::new("Item");
        assert!(parsed.catalog.class_on(&item)[0].is_key());
    }

    #[test]
    fn undefined_const_is_attr_path() {
        // An undeclared uppercase name is treated as an attribute path —
        // schema validation will catch it if it doesn't exist; here we
        // check the parse shape only.
        let src = "
database L
class C
  attributes
    x : real
  object constraints
    oc1: x < BOGUS
end C
";
        let parsed = parse_database(src).unwrap();
        assert_eq!(
            parsed.catalog.object_on(&ClassName::new("C"))[0]
                .formula
                .to_string(),
            "x < BOGUS"
        );
    }

    #[test]
    fn mismatched_end_errors() {
        let src = "
database L
class C
  attributes
    x : real
end D
";
        let err = parse_database(src).unwrap_err();
        assert!(err.to_string().contains("does not match"));
    }

    #[test]
    fn arithmetic_and_parens() {
        let src = "
database L
class C
  attributes
    a : real
    b : real
  object constraints
    oc1: (a + b) / 2 < 10
    oc2: not (a > 5 and b > 5)
    oc3: a > 1 or b > 1
end C
";
        let parsed = parse_database(src).unwrap();
        let ocs = parsed.catalog.object_on(&ClassName::new("C"));
        assert_eq!(ocs[0].formula.to_string(), "((a + b) / 2) < 10");
        assert_eq!(ocs[1].formula.to_string(), "not (a > 5 and b > 5)");
        assert_eq!(ocs[2].formula.to_string(), "a > 1 or b > 1");
    }

    #[test]
    fn boolean_literals_in_comparisons() {
        let src = "
database L
class C
  attributes
    flag : boolean
  object constraints
    oc1: flag = true
end C
";
        let parsed = parse_database(src).unwrap();
        assert_eq!(
            parsed.catalog.object_on(&ClassName::new("C"))[0]
                .formula
                .to_string(),
            "flag = true"
        );
    }

    #[test]
    fn forall_forall_db_constraint() {
        let src = "
database L
class A
  attributes
    x : real
end A
class B
  attributes
    y : real
end B
database constraints
  d1: forall a in A forall b in B | b.y >= a.x
";
        let parsed = parse_database(src).unwrap();
        let dc = &parsed.catalog.database_constraints()[0];
        assert_eq!(dc.quant, Quantifier::Forall);
        assert_eq!(dc.atoms.len(), 1);
    }

    #[test]
    fn db_constraint_flips_sides_when_outer_first() {
        let src = "
database L
class A
  attributes
    x : real
end A
class B
  attributes
    y : real
end B
database constraints
  d1: forall a in A exists b in B | a.x = b.y
";
        let parsed = parse_database(src).unwrap();
        let atom = &parsed.catalog.database_constraints()[0].atoms[0];
        assert_eq!(atom.outer, Path::parse("x"));
        assert_eq!(atom.inner, Path::parse("y"));
        assert_eq!(atom.op, CmpOp::Eq);
    }

    #[test]
    fn schema_errors_surface() {
        let src = "
database L
class C isa Ghost
  attributes
    x : real
end C
";
        let err = parse_database(src).unwrap_err();
        assert!(err.to_string().contains("schema error"));
    }
}
