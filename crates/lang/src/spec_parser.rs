//! Parser for integration specifications (§2.2 syntax).
//!
//! ```text
//! integration CSLibrary with Bookseller
//!
//! rule r1: Eq(o : Publication, r : Item) <- o.isbn = r.isbn
//! rule r2: Eq(o : Publication.{publisher}, r : Publisher) <- o.publisher = r.name
//! rule r3: Sim(r : Proceedings, RefereedPubl) <- r.ref? = true
//! rule r4: Sim(r : Monograph, ScientificPubl, SciOrMono) <- true
//!
//! propeq(Publication.ourprice, Item.libprice, id, id, trust(CSLibrary))
//! propeq(ScientificPubl.rating, Proceedings.rating, multiply(2), id, avg)
//!
//! declare subjective CSLibrary.Publication.cc2
//! ```
//!
//! One deviation from the paper's notation: rule variables are named
//! (`o`, `r`) instead of `O`/`O'`, because the prime collides with the
//! string-literal quote. Which side a variable belongs to is inferred
//! from its declared class.

use std::collections::BTreeMap;

use interop_constraint::{ConstraintId, Expr, Formula, Path, Status};
use interop_model::{ClassName, Schema};
use interop_spec::{
    ComparisonRule, Conversion, Decision, InterCond, PropEq, Relationship, Side, Spec,
};

use crate::error::ParseError;
use crate::lexer::{lex, Tok};
use crate::parser::Parser;

/// Parses an integration specification. `local`/`remote` are the schemas
/// of the two component databases (used to resolve class sides).
pub fn parse_spec(src: &str, local: &Schema, remote: &Schema) -> Result<Spec, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser::new(&toks);
    let mut sp = SpecParser {
        p: &mut p,
        local,
        remote,
    };
    sp.spec()
}

struct SpecParser<'a, 'b> {
    p: &'a mut Parser<'b>,
    local: &'a Schema,
    remote: &'a Schema,
}

impl SpecParser<'_, '_> {
    fn side_of(&self, class: &ClassName) -> Option<Side> {
        if self.local.class(class).is_some() {
            Some(Side::Local)
        } else if self.remote.class(class).is_some() {
            Some(Side::Remote)
        } else {
            None
        }
    }

    fn spec(&mut self) -> Result<Spec, ParseError> {
        self.p.keyword("integration")?;
        let local_db = self.p.ident()?;
        self.p.keyword("with")?;
        let remote_db = self.p.ident()?;
        if local_db != self.local.db.as_str() {
            return self
                .p
                .err(format!("local database '{local_db}' does not match schema"));
        }
        if remote_db != self.remote.db.as_str() {
            return self.p.err(format!(
                "remote database '{remote_db}' does not match schema"
            ));
        }
        let mut spec = Spec::new(local_db, remote_db);
        loop {
            // Line of the item keyword, recorded into `spec.locations` so
            // the static analyzer can point diagnostics at source lines.
            let line = self.p.line();
            if self.p.accept_kw("rule") {
                let r = self.rule()?;
                spec.locations.rules.insert(r.id.clone(), line);
                spec.add_rule(r);
            } else if self.p.at_kw("propeq") {
                let pe = self.propeq()?;
                spec.locations.propeqs.insert(spec.propeqs.len(), line);
                spec.add_propeq(pe);
            } else if self.p.accept_kw("declare") {
                let status = if self.p.accept_kw("subjective") {
                    Status::Subjective
                } else {
                    self.p.keyword("objective")?;
                    Status::Objective
                };
                let id = self.dotted_id()?;
                let cid = ConstraintId::derived(&id);
                spec.locations.declares.insert(cid.clone(), line);
                spec.declare_status(cid, status);
            } else if self.p.accept_kw("value_view") {
                spec.object_view = false;
            } else if matches!(self.p.peek(), Tok::Eof) {
                break;
            } else {
                return self.p.err(format!(
                    "expected 'rule', 'propeq', 'declare' or end of file, found '{}'",
                    self.p.peek()
                ));
            }
        }
        Ok(spec)
    }

    fn dotted_id(&mut self) -> Result<String, ParseError> {
        let mut s = self.p.ident()?;
        while matches!(self.p.peek(), Tok::Dot) {
            self.p.next();
            s.push('.');
            s.push_str(&self.p.ident()?);
        }
        Ok(s)
    }

    fn rule(&mut self) -> Result<ComparisonRule, ParseError> {
        let id = self.p.ident()?;
        self.p.expect(&Tok::Colon)?;
        let head = self.p.ident()?; // Eq | Sim
        self.p.expect(&Tok::LParen)?;
        let rule = match head.as_str() {
            "Eq" => self.eq_rule(&id)?,
            "Sim" => self.sim_rule(&id)?,
            other => return self.p.err(format!("unknown relationship '{other}'")),
        };
        Ok(rule)
    }

    /// `Eq(o : Class, r : Class') <- cond` or descriptivity
    /// `Eq(o : Class.{attrs}, r : Class') <- cond`.
    fn eq_rule(&mut self, id: &str) -> Result<ComparisonRule, ParseError> {
        let var1 = self.p.ident()?;
        self.p.expect(&Tok::Colon)?;
        let class1 = ClassName::new(self.p.ident()?);
        // Optional `.{a, b}` descriptivity value set.
        let mut value_attrs: Option<Vec<Path>> = None;
        if matches!(self.p.peek(), Tok::Dot) && matches!(self.p.peek2(), Tok::LBrace) {
            self.p.next();
            self.p.next();
            let mut attrs = vec![Path::attr(self.p.ident()?)];
            while matches!(self.p.peek(), Tok::Comma) {
                self.p.next();
                attrs.push(Path::attr(self.p.ident()?));
            }
            self.p.expect(&Tok::RBrace)?;
            value_attrs = Some(attrs);
        }
        self.p.expect(&Tok::Comma)?;
        let var2 = self.p.ident()?;
        self.p.expect(&Tok::Colon)?;
        let class2 = ClassName::new(self.p.ident()?);
        self.p.expect(&Tok::RParen)?;
        self.p.expect(&Tok::Arrow)?;
        // Resolve sides: exactly one class must be local, one remote.
        let side1 = self
            .side_of(&class1)
            .ok_or_else(|| ParseError::new(format!("unknown class '{class1}'"), self.p.line()))?;
        let side2 = self
            .side_of(&class2)
            .ok_or_else(|| ParseError::new(format!("unknown class '{class2}'"), self.p.line()))?;
        if side1 == side2 {
            return self
                .p
                .err("equality rule must relate a local and a remote class");
        }
        let (local_var, local_class, remote_var, remote_class) = if side1 == Side::Local {
            (var1, class1, var2, class2)
        } else {
            (var2, class2, var1, class1)
        };
        let cond = self.condition(&local_var, &remote_var)?;
        let mut rule = match value_attrs {
            None => ComparisonRule::equality(id, local_class, remote_class, Vec::new()),
            Some(attrs) => {
                let mut r = ComparisonRule::descriptivity(
                    id,
                    local_class,
                    Vec::new(),
                    remote_class,
                    Vec::new(),
                );
                r.relationship = Relationship::Descriptivity {
                    class: match &r.relationship {
                        Relationship::Descriptivity { class, .. } => class.clone(),
                        _ => unreachable!("constructed as descriptivity"),
                    },
                    value_attrs: attrs,
                };
                r
            }
        };
        rule.inter = cond.inter;
        rule.intra_subject = cond.intra_remote;
        rule.intra_counterpart = cond.intra_local;
        Ok(rule)
    }

    /// `Sim(v : SubjectClass, Target)` or
    /// `Sim(v : SubjectClass, Target, Virtual)`.
    fn sim_rule(&mut self, id: &str) -> Result<ComparisonRule, ParseError> {
        let var = self.p.ident()?;
        self.p.expect(&Tok::Colon)?;
        let subject_class = ClassName::new(self.p.ident()?);
        self.p.expect(&Tok::Comma)?;
        let target_class = ClassName::new(self.p.ident()?);
        let mut virtual_class = None;
        if matches!(self.p.peek(), Tok::Comma) {
            self.p.next();
            virtual_class = Some(ClassName::new(self.p.ident()?));
        }
        self.p.expect(&Tok::RParen)?;
        self.p.expect(&Tok::Arrow)?;
        let subject_side = self.side_of(&subject_class).ok_or_else(|| {
            ParseError::new(format!("unknown class '{subject_class}'"), self.p.line())
        })?;
        let target_side = self.side_of(&target_class);
        if target_side == Some(subject_side) {
            return self
                .p
                .err("similarity rule must target a class on the other side");
        }
        // Condition: only the subject variable may occur.
        let cond = self.condition_single(&var)?;
        Ok(match virtual_class {
            None => ComparisonRule::similarity(id, subject_side, subject_class, target_class, cond),
            Some(v) => ComparisonRule::approx_similarity(
                id,
                subject_side,
                subject_class,
                target_class,
                v,
                cond,
            ),
        })
    }

    /// Parses a condition over one variable; paths must start with `var`.
    fn condition_single(&mut self, var: &str) -> Result<Formula, ParseError> {
        let raw = self.p.formula(&BTreeMap::new())?;
        strip_var(&raw, var).map_err(|m| ParseError::new(m, self.p.line()))
    }

    /// Parses a two-variable condition and splits it into interobject and
    /// intraobject parts (§3).
    fn condition(&mut self, local_var: &str, remote_var: &str) -> Result<SplitCond, ParseError> {
        let raw = self.p.formula(&BTreeMap::new())?;
        split_condition(&raw, local_var, remote_var).map_err(|m| ParseError::new(m, self.p.line()))
    }

    /// `propeq(C.p, C'.p', cf, cf', df) [as name]`
    fn propeq(&mut self) -> Result<PropEq, ParseError> {
        self.p.keyword("propeq")?;
        self.p.expect(&Tok::LParen)?;
        let (lclass, lpath) = self.class_path()?;
        self.p.expect(&Tok::Comma)?;
        let (rclass, rpath) = self.class_path()?;
        self.p.expect(&Tok::Comma)?;
        let cf_local = self.conversion()?;
        self.p.expect(&Tok::Comma)?;
        let cf_remote = self.conversion()?;
        self.p.expect(&Tok::Comma)?;
        let df = self.decision()?;
        self.p.expect(&Tok::RParen)?;
        if self.side_of(&lclass) != Some(Side::Local) {
            return self
                .p
                .err(format!("'{lclass}' is not a class of the local database"));
        }
        if self.side_of(&rclass) != Some(Side::Remote) {
            return self
                .p
                .err(format!("'{rclass}' is not a class of the remote database"));
        }
        let conformed = if self.p.accept_kw("as") {
            Path::attr(self.p.ident()?)
        } else {
            rpath.clone()
        };
        Ok(PropEq {
            local_class: lclass,
            local_path: lpath,
            remote_class: rclass,
            remote_path: rpath,
            cf_local,
            cf_remote,
            df,
            conformed_name: conformed,
        })
    }

    fn class_path(&mut self) -> Result<(ClassName, Path), ParseError> {
        let class = ClassName::new(self.p.ident()?);
        self.p.expect(&Tok::Dot)?;
        let path = self.p.path()?;
        Ok((class, path))
    }

    fn conversion(&mut self) -> Result<Conversion, ParseError> {
        let name = self.p.ident()?;
        match name.as_str() {
            "id" => Ok(Conversion::Id),
            "multiply" => {
                self.p.expect(&Tok::LParen)?;
                let k = self.num()?;
                self.p.expect(&Tok::RParen)?;
                Ok(Conversion::Multiply(k))
            }
            "linear" => {
                self.p.expect(&Tok::LParen)?;
                let a = self.num()?;
                self.p.expect(&Tok::Comma)?;
                let b = self.num()?;
                self.p.expect(&Tok::RParen)?;
                Ok(Conversion::Linear { a, b })
            }
            other => self.p.err(format!("unknown conversion function '{other}'")),
        }
    }

    fn num(&mut self) -> Result<f64, ParseError> {
        match self.p.next() {
            Tok::Int(i) => Ok(i as f64),
            Tok::Real(r) => Ok(r),
            Tok::Minus => Ok(-self.num()?),
            other => self.p.err(format!("expected number, found '{other}'")),
        }
    }

    fn decision(&mut self) -> Result<Decision, ParseError> {
        let name = self.p.ident()?;
        match name.as_str() {
            "any" => Ok(Decision::Any),
            "max" => Ok(Decision::Max),
            "min" => Ok(Decision::Min),
            "avg" => Ok(Decision::Avg),
            "union" => Ok(Decision::Union),
            "trust" => {
                self.p.expect(&Tok::LParen)?;
                let db = self.p.ident()?;
                self.p.expect(&Tok::RParen)?;
                if db == self.local.db.as_str() {
                    Ok(Decision::Trust(Side::Local))
                } else if db == self.remote.db.as_str() {
                    Ok(Decision::Trust(Side::Remote))
                } else {
                    self.p.err(format!("unknown database '{db}' in trust()"))
                }
            }
            other => self.p.err(format!("unknown decision function '{other}'")),
        }
    }
}

struct SplitCond {
    inter: Vec<InterCond>,
    intra_local: Formula,
    intra_remote: Formula,
}

/// Strips the variable prefix from every path in `f`; errors if a path
/// references a different variable.
fn strip_var(f: &Formula, var: &str) -> Result<Formula, String> {
    for p in f.paths() {
        match p.head() {
            Some(h) if h.as_str() == var => {}
            Some(h) => return Err(format!("unknown variable '{h}' (expected '{var}')")),
            None => {}
        }
    }
    Ok(f.map_exprs(&|e| match e {
        Expr::Attr(p) if p.head().is_some_and(|h| h.as_str() == var) => {
            Expr::Attr(Path(p.0[1..].to_vec()))
        }
        other => other.clone(),
    }))
}

/// Splits a two-variable rule condition into interobject atoms and
/// per-variable intraobject formulas.
fn split_condition(f: &Formula, local_var: &str, remote_var: &str) -> Result<SplitCond, String> {
    let mut inter = Vec::new();
    let mut intra_local = Formula::True;
    let mut intra_remote = Formula::True;
    for conj in interop_constraint::normalize::split_conjuncts(f) {
        let heads: std::collections::BTreeSet<String> = conj
            .paths()
            .iter()
            .filter_map(|p| p.head().map(|h| h.as_str().to_owned()))
            .collect();
        let has_local = heads.contains(local_var);
        let has_remote = heads.contains(remote_var);
        for h in &heads {
            if h != local_var && h != remote_var {
                return Err(format!("unknown variable '{h}'"));
            }
        }
        match (has_local, has_remote) {
            (true, false) => {
                intra_local = intra_local.and(strip_var(&conj, local_var)?);
            }
            (false, true) => {
                intra_remote = intra_remote.and(strip_var(&conj, remote_var)?);
            }
            (false, false) => {} // constant conjunct (true)
            (true, true) => match &conj {
                Formula::Cmp(Expr::Attr(p), op, Expr::Attr(q)) => {
                    let (lp, op, rp) = if p.head().is_some_and(|h| h.as_str() == local_var) {
                        (p, *op, q)
                    } else {
                        (q, op.flip(), p)
                    };
                    inter.push(InterCond {
                        local: Path(lp.0[1..].to_vec()),
                        op,
                        remote: Path(rp.0[1..].to_vec()),
                    });
                }
                other => {
                    return Err(format!(
                        "interobject condition must be a comparison of two paths, got '{other}'"
                    ))
                }
            },
        }
    }
    Ok(SplitCond {
        inter,
        intra_local,
        intra_remote,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_database;
    use interop_spec::{Relationship, RuleId};

    fn schemas() -> (Schema, Schema) {
        let local = parse_database(
            "
database CSLibrary
class Publication
  attributes
    title : string
    isbn : string
    publisher : string
    shopprice : real
    ourprice : real
end Publication
class ScientificPubl isa Publication
  attributes
    editors : Pstring
    rating : 1..5
end ScientificPubl
class RefereedPubl isa ScientificPubl
  attributes
    avgAccRate : real
end RefereedPubl
",
        )
        .unwrap()
        .schema;
        let remote = parse_database(
            "
database Bookseller
class Publisher
  attributes
    name : string
    location : string
end Publisher
class Item
  attributes
    title : string
    isbn : string
    publisher : Publisher
    shopprice : real
    libprice : real
    authors : Pstring
end Item
class Proceedings isa Item
  attributes
    ref? : boolean
    rating : 1..10
end Proceedings
class Monograph isa Item
  attributes
    subjects : Pstring
end Monograph
",
        )
        .unwrap()
        .schema;
        (local, remote)
    }

    const SPEC: &str = "
integration CSLibrary with Bookseller

rule r1: Eq(o : Publication, r : Item) <- o.isbn = r.isbn
rule r2: Eq(o : Publication.{publisher}, r : Publisher) <- o.publisher = r.name
rule r3: Sim(r : Proceedings, RefereedPubl) <- r.ref? = true
rule r4: Sim(r : Proceedings, NonRefereedPubl) <- r.ref? = false
rule r5: Sim(o : ScientificPubl, Proceedings) <- contains(o.title, 'Proceed')
rule r6: Sim(r : Monograph, ScientificPubl, SciOrMono) <- true

propeq(Publication.ourprice, Item.libprice, id, id, trust(CSLibrary))
propeq(Publication.shopprice, Item.shopprice, id, id, trust(Bookseller))
propeq(Publication.publisher, Publisher.name, id, id, any)
propeq(ScientificPubl.rating, Proceedings.rating, multiply(2), id, avg)
propeq(ScientificPubl.editors, Item.authors, id, id, union)

declare subjective CSLibrary.Publication.cc2
declare objective Bookseller.Proceedings.oc1
";

    #[test]
    fn parses_full_paper_spec() {
        let (local, remote) = schemas();
        // NonRefereedPubl is referenced by r4 — add it to the local schema.
        let mut local = local;
        local
            .add_class(interop_model::ClassDef::new("NonRefereedPubl").isa("ScientificPubl"))
            .unwrap();
        let spec = parse_spec(SPEC, &local, &remote).unwrap();
        assert_eq!(spec.rules.len(), 6);
        assert_eq!(spec.propeqs.len(), 5);
        assert_eq!(spec.status_overrides.len(), 2);
    }

    #[test]
    fn spec_locations_recorded() {
        let (mut local, remote) = schemas();
        local
            .add_class(interop_model::ClassDef::new("NonRefereedPubl").isa("ScientificPubl"))
            .unwrap();
        let spec = parse_spec(SPEC, &local, &remote).unwrap();
        // SPEC opens with a blank line: `integration` is line 2, the six
        // rules sit on lines 4-9, the five propeqs on 11-15, the two
        // declares on 17-18.
        assert_eq!(spec.locations.rules.get(&RuleId::new("r1")), Some(&4));
        assert_eq!(spec.locations.rules.get(&RuleId::new("r6")), Some(&9));
        assert_eq!(spec.locations.propeqs.get(&0), Some(&11));
        assert_eq!(spec.locations.propeqs.get(&4), Some(&15));
        assert_eq!(spec.locations.declares.len(), 2);
        assert!(spec
            .locations
            .declares
            .values()
            .all(|l| *l == 17 || *l == 18));
    }

    #[test]
    fn eq_rule_sides_resolved() {
        let (mut local, remote) = schemas();
        local
            .add_class(interop_model::ClassDef::new("NonRefereedPubl").isa("ScientificPubl"))
            .unwrap();
        let spec = parse_spec(SPEC, &local, &remote).unwrap();
        let r1 = spec.rule(&RuleId::new("r1")).unwrap();
        assert!(r1.is_equality());
        assert_eq!(r1.subject_class.as_str(), "Item");
        assert_eq!(
            r1.counterpart_class.as_ref().unwrap().as_str(),
            "Publication"
        );
        assert_eq!(r1.inter.len(), 1);
        assert_eq!(r1.inter[0].local, Path::parse("isbn"));
        assert_eq!(r1.inter[0].remote, Path::parse("isbn"));
    }

    #[test]
    fn descriptivity_rule_parsed() {
        let (mut local, remote) = schemas();
        local
            .add_class(interop_model::ClassDef::new("NonRefereedPubl").isa("ScientificPubl"))
            .unwrap();
        let spec = parse_spec(SPEC, &local, &remote).unwrap();
        let r2 = spec.rule(&RuleId::new("r2")).unwrap();
        assert!(r2.is_descriptivity());
        match &r2.relationship {
            Relationship::Descriptivity { class, value_attrs } => {
                assert_eq!(class.as_str(), "Publication");
                assert_eq!(value_attrs, &[Path::parse("publisher")]);
            }
            other => panic!("expected descriptivity, got {other}"),
        }
        assert_eq!(r2.inter[0].local, Path::parse("publisher"));
        assert_eq!(r2.inter[0].remote, Path::parse("name"));
    }

    #[test]
    fn sim_rule_conditions_stripped() {
        let (mut local, remote) = schemas();
        local
            .add_class(interop_model::ClassDef::new("NonRefereedPubl").isa("ScientificPubl"))
            .unwrap();
        let spec = parse_spec(SPEC, &local, &remote).unwrap();
        let r3 = spec.rule(&RuleId::new("r3")).unwrap();
        assert_eq!(r3.intra_subject.to_string(), "ref? = true");
        assert_eq!(r3.subject_side, Side::Remote);
        let r5 = spec.rule(&RuleId::new("r5")).unwrap();
        assert_eq!(r5.subject_side, Side::Local);
        assert_eq!(r5.intra_subject.to_string(), "contains(title, 'Proceed')");
    }

    #[test]
    fn approx_rule_has_virtual_class() {
        let (mut local, remote) = schemas();
        local
            .add_class(interop_model::ClassDef::new("NonRefereedPubl").isa("ScientificPubl"))
            .unwrap();
        let spec = parse_spec(SPEC, &local, &remote).unwrap();
        let r6 = spec.rule(&RuleId::new("r6")).unwrap();
        match &r6.relationship {
            Relationship::ApproxSimilarity {
                class,
                virtual_class,
            } => {
                assert_eq!(class.as_str(), "ScientificPubl");
                assert_eq!(virtual_class.as_str(), "SciOrMono");
            }
            other => panic!("expected approx similarity, got {other}"),
        }
    }

    #[test]
    fn propeq_trust_sides_and_conversions() {
        let (mut local, remote) = schemas();
        local
            .add_class(interop_model::ClassDef::new("NonRefereedPubl").isa("ScientificPubl"))
            .unwrap();
        let spec = parse_spec(SPEC, &local, &remote).unwrap();
        let pe = &spec.propeqs[0];
        assert_eq!(pe.df, Decision::Trust(Side::Local));
        assert_eq!(pe.conformed_name, Path::parse("libprice"));
        let rating = &spec.propeqs[3];
        assert_eq!(rating.cf_local, Conversion::Multiply(2.0));
        assert_eq!(rating.df, Decision::Avg);
    }

    #[test]
    fn declares_recorded() {
        let (mut local, remote) = schemas();
        local
            .add_class(interop_model::ClassDef::new("NonRefereedPubl").isa("ScientificPubl"))
            .unwrap();
        let spec = parse_spec(SPEC, &local, &remote).unwrap();
        assert_eq!(
            spec.status_overrides
                .get(&ConstraintId::derived("CSLibrary.Publication.cc2")),
            Some(&Status::Subjective)
        );
        assert_eq!(
            spec.status_overrides
                .get(&ConstraintId::derived("Bookseller.Proceedings.oc1")),
            Some(&Status::Objective)
        );
    }

    #[test]
    fn unknown_class_in_rule_errors() {
        let (local, remote) = schemas();
        let err = parse_spec(
            "integration CSLibrary with Bookseller\nrule r: Sim(x : Ghost, Publication) <- true\n",
            &local,
            &remote,
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown class"));
    }

    #[test]
    fn same_side_equality_errors() {
        let (local, remote) = schemas();
        let err = parse_spec(
            "integration CSLibrary with Bookseller\nrule r: Eq(a : Publication, b : ScientificPubl) <- a.isbn = b.isbn\n",
            &local,
            &remote,
        )
        .unwrap_err();
        assert!(err.to_string().contains("local and a remote"));
    }

    #[test]
    fn mixed_variable_condition_splits() {
        let (local, remote) = schemas();
        let spec = parse_spec(
            "integration CSLibrary with Bookseller\n\
             rule r: Eq(o : Publication, r : Item) <- o.isbn = r.isbn and r.libprice >= 1 and o.ourprice >= 2\n",
            &local,
            &remote,
        )
        .unwrap();
        let rule = &spec.rules[0];
        assert_eq!(rule.inter.len(), 1);
        assert_eq!(rule.intra_subject.to_string(), "libprice >= 1");
        assert_eq!(rule.intra_counterpart.to_string(), "ourprice >= 2");
    }

    #[test]
    fn unknown_trust_db_errors() {
        let (local, remote) = schemas();
        let err = parse_spec(
            "integration CSLibrary with Bookseller\n\
             propeq(Publication.ourprice, Item.libprice, id, id, trust(Nowhere))\n",
            &local,
            &remote,
        )
        .unwrap_err();
        assert!(err.to_string().contains("unknown database"));
    }
}
