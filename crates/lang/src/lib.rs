//! # interop-lang
//!
//! Front-end for the TM-style specification language used throughout the
//! paper (Figure 1 and the §2.2 integration-specification examples).
//!
//! The paper writes database schemas and constraints in TM \[BBZ93\]; this
//! crate provides a lexer, a recursive-descent parser producing validated
//! [`interop_model::Schema`]s plus [`interop_constraint::Catalog`]s, a
//! parser for integration specifications (comparison rules, `propeq`
//! assertions, objectivity declarations), and a pretty-printer whose
//! output re-parses to the same structures (the Figure-1 round-trip
//! property).
//!
//! Dialect deviations from TM, all documented in `DESIGN.md`:
//! * symbolic constants must be declared (`const MAX = 10000`);
//! * rule variables are plain identifiers (`o`, `r`) instead of `O`/`O'`
//!   (the prime collides with string quotes);
//! * supporting sugar such as `linear(a, b)` conversions.
//!
//! # Invariants
//!
//! * **Round-trip stability**: [`print_database`] output re-parses to
//!   the same `Schema` + `Catalog` (pinned by a property suite and by
//!   the Figure-1 fixtures under `assets/`, kept byte-identical to the
//!   embedded copies).
//! * **Parsing validates**: a successful [`parse_database`] has already
//!   resolved every class reference, typed every attribute, and
//!   classified every constraint — downstream code never sees a
//!   dangling name.
//! * **Errors carry positions** ([`ParseError`] spans), so fixture
//!   regressions point at the offending TM line rather than a panic.

pub mod error;
pub mod lexer;
pub mod parser;
pub mod print;
pub mod spec_parser;

pub use error::ParseError;
pub use parser::{parse_database, ConstVal, ParsedDatabase};
pub use print::print_database;
pub use spec_parser::parse_spec;
