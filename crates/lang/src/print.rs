//! Pretty-printer: renders schemas, catalogs and specs back into the TM
//! dialect. `parse(print(x)) == x` is the Figure-1 round-trip property
//! tested by the F1 experiment.

use std::fmt::Write as _;

use interop_constraint::{Catalog, ClassConstraintBody, Quantifier};
use interop_model::Schema;

use crate::parser::{ConstVal, ParsedDatabase};

/// Renders a parsed database back into source form.
pub fn print_database(db: &ParsedDatabase) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "database {}", db.schema.db);
    for (name, val) in &db.consts {
        match val {
            ConstVal::Scalar(v) => {
                let _ = writeln!(out, "const {name} = {v}");
            }
            ConstVal::Set(set) => {
                let items: Vec<String> = set.iter().map(|v| v.to_string()).collect();
                let _ = writeln!(out, "const {name} = {{{}}}", items.join(", "));
            }
        }
    }
    let _ = writeln!(out);
    for class in classes_in_topo_order(&db.schema) {
        let def = db.schema.class(&class).expect("class listed");
        match &def.parent {
            Some(p) => {
                let _ = writeln!(out, "class {} isa {}", def.name, p);
            }
            None => {
                let _ = writeln!(out, "class {}", def.name);
            }
        }
        if !def.attrs.is_empty() {
            let _ = writeln!(out, "  attributes");
            for a in &def.attrs {
                let _ = writeln!(out, "    {} : {}", a.name, a.ty);
            }
        }
        let ocs = db.catalog.object_on(&def.name);
        if !ocs.is_empty() {
            let _ = writeln!(out, "  object constraints");
            for c in ocs {
                let label = c.id.as_str().rsplit('.').next().expect("dotted id");
                let _ = writeln!(out, "    {label}: {}", c.formula);
            }
        }
        let ccs = db.catalog.class_on(&def.name);
        if !ccs.is_empty() {
            let _ = writeln!(out, "  class constraints");
            for c in ccs {
                let label = c.id.as_str().rsplit('.').next().expect("dotted id");
                match &c.body {
                    ClassConstraintBody::Key(attrs) => {
                        let names: Vec<&str> = attrs.iter().map(|a| a.as_str()).collect();
                        let _ = writeln!(out, "    {label}: key {}", names.join(", "));
                    }
                    ClassConstraintBody::Aggregate {
                        op,
                        path,
                        cmp,
                        bound,
                    } => {
                        let _ = writeln!(
                            out,
                            "    {label}: ({op} (collect x for x in self) over {path}) {cmp} {bound}"
                        );
                    }
                }
            }
        }
        let _ = writeln!(out, "end {}", def.name);
        let _ = writeln!(out);
    }
    print_db_constraints(&mut out, &db.catalog);
    out
}

fn print_db_constraints(out: &mut String, catalog: &Catalog) {
    let dbs = catalog.database_constraints();
    if dbs.is_empty() {
        return;
    }
    let _ = writeln!(out, "database constraints");
    for c in dbs {
        let label = c.id.as_str().rsplit('.').next().expect("dotted id");
        let q = match c.quant {
            Quantifier::Exists => "exists",
            Quantifier::Forall => "forall",
        };
        let mut atoms = Vec::new();
        for a in &c.atoms {
            let inner = if a.inner.is_this() {
                "i".to_owned()
            } else {
                format!("i.{}", a.inner)
            };
            let outer = if a.outer.is_this() {
                "p".to_owned()
            } else {
                format!("p.{}", a.outer)
            };
            atoms.push(format!("{inner} {} {outer}", a.op));
        }
        let _ = writeln!(
            out,
            "  {label}: forall p in {} {q} i in {} | {}",
            c.outer_class,
            c.inner_class,
            atoms.join(" and ")
        );
    }
}

/// Classes ordered parents-before-children (the parser requires parents to
/// be defined first only at schema level, but printing in topological
/// order keeps round-trips stable).
fn classes_in_topo_order(schema: &Schema) -> Vec<interop_model::ClassName> {
    let mut out = Vec::new();
    let mut emitted = std::collections::BTreeSet::new();
    // Roots first, then repeatedly emit classes whose parent is emitted.
    loop {
        let mut progress = false;
        for def in schema.classes() {
            if emitted.contains(&def.name) {
                continue;
            }
            let ready = match &def.parent {
                None => true,
                Some(p) => emitted.contains(p),
            };
            if ready {
                emitted.insert(def.name.clone());
                out.push(def.name.clone());
                progress = true;
            }
        }
        if !progress {
            break;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_database;

    const SRC: &str = "
database Bookseller
const LIMIT = 50

class Publisher
  attributes
    name : string
    location : string
end Publisher

class Item
  attributes
    isbn : string
    publisher : Publisher
    shopprice : real
    libprice : real
  object constraints
    oc1: libprice <= shopprice
  class constraints
    cc1: key isbn
    cc2: (count (collect x for x in self) over isbn) < LIMIT
end Item

class Proceedings isa Item
  attributes
    ref? : boolean
    rating : 1..10
  object constraints
    oc2: ref? = true implies rating >= 7
end Proceedings

database constraints
  dbl: forall p in Publisher exists i in Item | i.publisher = p
";

    #[test]
    fn round_trip_is_stable() {
        let first = parse_database(SRC).unwrap();
        let printed = print_database(&first);
        let second = parse_database(&printed).unwrap();
        assert_eq!(first.schema, second.schema);
        assert_eq!(
            print_database(&first),
            print_database(&second),
            "printing must be a fixpoint"
        );
        // Constraint counts survive.
        assert_eq!(first.catalog.len(), second.catalog.len());
    }

    #[test]
    fn printed_form_contains_key_lines() {
        let parsed = parse_database(SRC).unwrap();
        let printed = print_database(&parsed);
        assert!(printed.contains("class Proceedings isa Item"));
        assert!(printed.contains("oc2: ref? = true implies rating >= 7"));
        assert!(printed.contains("cc1: key isbn"));
        assert!(printed.contains("rating : 1..10"));
        assert!(printed.contains("dbl: forall p in Publisher exists i in Item | i.publisher = p"));
        assert!(printed.contains("const LIMIT = 50"));
    }
}
