//! Parse errors.

use std::fmt;

use crate::lexer::LexError;

/// A parse (or lex) error with a source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Description of the problem.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl ParseError {
    /// Creates a parse error.
    pub fn new(message: impl Into<String>, line: u32) -> Self {
        ParseError {
            message: message.into(),
            line,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            line: e.line,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_from_lex() {
        let e = ParseError::new("expected ':'", 3);
        assert_eq!(e.to_string(), "parse error at line 3: expected ':'");
        let le = LexError {
            message: "bad".into(),
            line: 7,
        };
        let pe: ParseError = le.into();
        assert_eq!(pe.line, 7);
    }
}
