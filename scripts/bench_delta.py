#!/usr/bin/env python3
"""Compare a CRITERION_JSON benchmark recording against a baseline.

Both files are JSON-lines as written by the vendored criterion shim:

    {"bench": "fig2_pipeline/synthetic_merge/10000", "median_ns": ..., "samples": ...}

Usage:

    python3 scripts/bench_delta.py BENCH_baseline.json new.json \
        [--threshold 1.25] [--groups solver fig2_pipeline]

Exit status is non-zero when any benchmark in the selected groups
regressed beyond the threshold (new_median > threshold * old_median),
or when a selected baseline benchmark is missing from the new recording.
Benchmarks only present in the new file are reported but never fail the
check (new benches are allowed to appear).
"""

import argparse
import json
import sys


def load(path):
    out = {}
    with open(path, encoding="utf-8") as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            out[row["bench"]] = float(row["median_ns"])
    return out


def in_groups(name, groups):
    return any(name == g or name.startswith(g + "/") for g in groups)


def fmt_ns(ns):
    if ns >= 1e6:
        return f"{ns / 1e6:.2f} ms"
    if ns >= 1e3:
        return f"{ns / 1e3:.2f} µs"
    return f"{ns:.0f} ns"


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        help="fail when new > threshold * baseline (default 1.25)",
    )
    ap.add_argument(
        "--groups",
        nargs="+",
        default=["solver", "fig2_pipeline"],
        help="benchmark groups to gate on (default: solver fig2_pipeline)",
    )
    ap.add_argument(
        "--normalize-via",
        metavar="GROUP",
        default=None,
        help="divide every ratio by this control group's median new/old "
        "ratio, compensating for the recording machine being uniformly "
        "faster/slower than the baseline machine (a wholesale regression "
        "of the control group itself is masked — pick a group the change "
        "under test does not touch)",
    )
    ap.add_argument(
        "--min-speedup",
        nargs=3,
        metavar=("SLOW_PREFIX", "FAST_PREFIX", "FACTOR"),
        action="append",
        default=[],
        help="assert, within the NEW recording, that every benchmark under "
        "SLOW_PREFIX is at least FACTOR× slower than its FAST_PREFIX "
        "counterpart (matched by the suffix after the prefix; an exact "
        "bench name also matches, pairing with the exact FAST name). "
        "Used to gate e.g. query_optimization/full_scan vs .../planned "
        "at 2x, or a single parameterized size at a steeper factor.",
    )
    ap.add_argument(
        "--expect",
        metavar="PREFIX",
        action="append",
        default=[],
        help="fail unless the NEW recording contains at least one benchmark "
        "under PREFIX. Benchmarks absent from the baseline never fail the "
        "delta check, so a renamed or silently dropped group would "
        "otherwise pass; --expect pins the groups that must exist.",
    )
    args = ap.parse_args()

    base = load(args.baseline)
    new = load(args.new)
    failures = []

    for prefix in args.expect:
        if not any(in_groups(name, [prefix]) for name in new):
            failures.append(f"--expect {prefix}: no benchmark recorded under this prefix")

    speed = 1.0
    if args.normalize_via:
        ratios = sorted(
            new[name] / base[name]
            for name in base
            if in_groups(name, [args.normalize_via]) and name in new and base[name] > 0
        )
        if ratios:
            speed = ratios[len(ratios) // 2]
            print(f"machine-speed factor via {args.normalize_via}: {speed:.3f}x\n")

    for name in sorted(base):
        if not in_groups(name, args.groups):
            continue
        old_ns = base[name]
        if name not in new:
            failures.append(f"{name}: missing from new recording")
            print(f"MISSING {name:<55} baseline {fmt_ns(old_ns)}")
            continue
        new_ns = new[name]
        ratio = new_ns / old_ns / speed if old_ns > 0 else float("inf")
        status = "OK"
        if ratio > args.threshold:
            status = "REGRESSED"
            failures.append(f"{name}: {fmt_ns(old_ns)} -> {fmt_ns(new_ns)} ({ratio:.2f}x)")
        print(
            f"{status:<9} {name:<55} {fmt_ns(old_ns):>10} -> {fmt_ns(new_ns):>10}"
            f"  ({ratio:.2f}x)"
        )

    for name in sorted(set(new) - set(base)):
        if in_groups(name, args.groups):
            print(f"NEW       {name:<55} {'':>10} -> {fmt_ns(new[name]):>10}")

    for slow_prefix, fast_prefix, factor in args.min_speedup:
        factor = float(factor)
        pairs = 0
        for name in sorted(new):
            if name != slow_prefix and not name.startswith(slow_prefix + "/"):
                continue
            suffix = name[len(slow_prefix):]
            fast = fast_prefix + suffix
            if fast not in new:
                failures.append(f"{fast}: missing counterpart for {name}")
                continue
            pairs += 1
            ratio = new[name] / new[fast] if new[fast] > 0 else float("inf")
            ok = ratio >= factor
            status = "SPEEDUP" if ok else "TOO SLOW"
            print(
                f"{status:<9} {fast:<55} {fmt_ns(new[name]):>10} -> "
                f"{fmt_ns(new[fast]):>10}  ({ratio:.2f}x, need {factor:.2f}x)"
            )
            if not ok:
                failures.append(
                    f"{fast}: only {ratio:.2f}x faster than {name} (need {factor:.2f}x)"
                )
        if pairs == 0:
            failures.append(f"--min-speedup {slow_prefix}: no benchmarks matched")

    if failures:
        print(f"\n{len(failures)} bench gate failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nAll gated benchmarks within {args.threshold:.2f}x of baseline.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
