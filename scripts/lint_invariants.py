#!/usr/bin/env python3
"""Source-invariant lint over the workspace's library code.

AST-free, line-based checks that keep the crate invariants the rustdoc
promises actually visible in the source:

1. **no-panic** — `.unwrap()` / `.expect(` are forbidden in non-test
   library code under `crates/*/src`. Library crates surface failures as
   `Result`s; a panic path needs an allowlist entry with a rationale.
   Test modules (`#[cfg(test)] mod ...`) are exempt.
2. **no-std-hash** — `std::collections::HashMap`/`HashSet` are forbidden
   in the deterministic-output crates (`merge`, `conform`): iteration
   order would leak into user-visible results. The sanctioned types are
   the `Fx` maps from `interop_model::fx` (lookups and accumulation
   only, snapshotted into `BTreeMap`/`BTreeSet` at output boundaries)
   and the `BTree` collections themselves.
3. **crate-docs** — every `crates/*/src/lib.rs` must open with crate
   docs (`//!` on line 1) and contain an `# Invariants` section: the
   contract each layer guarantees to the ones above.

Allowlist: `scripts/lint_allowlist.txt`. Each non-comment line is either

    <path>
    <path>	<substring>

(tab-separated). A bare path exempts the whole file from rule 1; a
path + substring exempts only flagged lines containing that substring.
Paths are repo-relative with forward slashes.

Exit status: 0 clean, 1 violations, 2 configuration problems.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
CRATES = ROOT / "crates"
ALLOWLIST = ROOT / "scripts" / "lint_allowlist.txt"

# Crates whose outputs must be byte-deterministic: hash-map iteration
# order must never reach a result, so std hash collections are banned
# outright (Fx maps + sorted drains are the sanctioned pattern).
DETERMINISTIC_CRATES = {"merge", "conform"}

# `.expect("` (string-literal message) is the Option/Result panic idiom;
# a bare `.expect(` also appears as Result-returning parser methods
# (`self.p.expect(&Tok::...)`) which are not panic paths.
PANIC_RE = re.compile(r"\.unwrap\(\)|\.expect\(\"")
STD_HASH_RE = re.compile(r"std::collections::(HashMap|HashSet)|(?<!Fx)\bHash(Map|Set)\s*<")


def load_allowlist() -> tuple[set[str], list[tuple[str, str]]]:
    """Returns (whole-file exemptions, (path, substring) exemptions)."""
    files: set[str] = set()
    lines: list[tuple[str, str]] = []
    if not ALLOWLIST.exists():
        return files, lines
    for raw in ALLOWLIST.read_text().splitlines():
        entry = raw.strip()
        if not entry or entry.startswith("#"):
            continue
        if "\t" in entry:
            path, substring = entry.split("\t", 1)
            lines.append((path.strip(), substring.strip()))
        else:
            files.add(entry)
    return files, lines


def strip_comment(line: str) -> str:
    """Drops a trailing `//` comment (string-blind — good enough for a
    text lint; flagged lines are human-reviewed via the allowlist)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def iter_non_test_lines(path: Path):
    """Yields (lineno, line) for lines outside `#[cfg(test)]` items.

    Tracks brace depth from the `{` that opens the cfg(test)-annotated
    item (mod or fn) until it closes.
    """
    pending = False  # saw #[cfg(test)], waiting for the item's `{`
    depth = 0  # >0 while inside the test item
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        code = strip_comment(line)
        if depth > 0:
            depth += code.count("{") - code.count("}")
            continue
        if pending:
            if "{" in code:
                depth = max(code.count("{") - code.count("}"), 0)
                pending = False
                continue
            if code.strip().endswith(";"):  # e.g. `mod tests;`
                pending = False
                continue
            # attribute stack (#[cfg(test)] #[derive(..)] ...): keep waiting
            continue
        if "#[cfg(test)]" in code:
            pending = True
            continue
        yield lineno, line, code


def check_panics(violations: list[str]) -> None:
    allowed_files, allowed_lines = load_allowlist()
    for path in sorted(CRATES.glob("*/src/**/*.rs")):
        rel = path.relative_to(ROOT).as_posix()
        if rel in allowed_files:
            continue
        for lineno, line, code in iter_non_test_lines(path):
            if not PANIC_RE.search(code):
                continue
            if any(p == rel and s in line for p, s in allowed_lines):
                continue
            violations.append(
                f"{rel}:{lineno}: panic path in library code "
                f"(`.unwrap()`/`.expect(`): {line.strip()}"
            )


def check_std_hash(violations: list[str]) -> None:
    for crate in sorted(DETERMINISTIC_CRATES):
        for path in sorted((CRATES / crate / "src").glob("**/*.rs")):
            rel = path.relative_to(ROOT).as_posix()
            for lineno, line, code in iter_non_test_lines(path):
                if STD_HASH_RE.search(code):
                    violations.append(
                        f"{rel}:{lineno}: std hash collection in deterministic-output "
                        f"crate (use Fx maps + sorted drains): {line.strip()}"
                    )


def check_crate_docs(violations: list[str]) -> None:
    for path in sorted(CRATES.glob("*/src/lib.rs")):
        rel = path.relative_to(ROOT).as_posix()
        text = path.read_text()
        first = text.splitlines()[0] if text else ""
        if not first.startswith("//!"):
            violations.append(f"{rel}:1: crate must open with `//!` crate docs")
        if "//! # Invariants" not in text:
            violations.append(f"{rel}: crate docs must contain an `# Invariants` section")


def main() -> int:
    if not CRATES.is_dir():
        print(f"lint_invariants: no crates/ directory under {ROOT}", file=sys.stderr)
        return 2
    violations: list[str] = []
    check_panics(violations)
    check_std_hash(violations)
    check_crate_docs(violations)
    if violations:
        for v in violations:
            print(v)
        print(f"\nlint_invariants: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print("lint_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
