#!/usr/bin/env python3
"""Check the repository's markdown cross-links.

Scans the tracked *.md files for inline links `[text](target)` and fails
when:

* a relative file target does not exist;
* an anchor (`file.md#heading` or `#heading`) does not match any heading
  in the target file, using GitHub's slugification (lowercase, strip
  punctuation, spaces to hyphens).

External (http/https/mailto) targets are skipped — the CI environment is
offline and their liveness is not this script's job. Reference-style
links and autolinks are out of scope; the repo uses inline links.

Usage: python3 scripts/check_doc_links.py [root]
"""

import os
import re
import sys

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
CODE_FENCE_RE = re.compile(r"^(```|~~~)")


def slugify(heading):
    """GitHub's anchor slug: lowercase, drop punctuation, spaces→hyphens.

    Underscores are kept (GitHub keeps them: `# conf_vldb_VermeerA96`
    anchors as `#conf_vldb_vermeera96`); backticks and asterisks are
    emphasis markers and are stripped.
    """
    heading = heading.strip().lower()
    heading = re.sub(r"[`*]", "", heading)
    out = []
    for ch in heading:
        if ch.isalnum() or ch == "_":
            out.append(ch)
        elif ch in (" ", "-"):
            out.append("-")
    return "".join(out)


def headings_of(path):
    slugs = set()
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if m:
                slugs.add(slugify(m.group(1)))
    return slugs


def links_of(path):
    links = []
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, 1):
            if CODE_FENCE_RE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for m in LINK_RE.finditer(line):
                links.append((lineno, m.group(1)))
    return links


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames if d not in ("target", ".git", "node_modules")
        ]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def main():
    root = sys.argv[1] if len(sys.argv) > 1 else "."
    failures = []
    checked = 0
    for path in sorted(md_files(root)):
        for lineno, target in links_of(path):
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            checked += 1
            if target.startswith("#"):
                dest, anchor = path, target[1:]
            else:
                rel, _, anchor = target.partition("#")
                dest = os.path.normpath(os.path.join(os.path.dirname(path), rel))
            where = f"{path}:{lineno}"
            if not os.path.exists(dest):
                failures.append(f"{where}: broken link target {target!r}")
                continue
            if anchor and dest.endswith(".md"):
                if anchor.lower() not in headings_of(dest):
                    failures.append(
                        f"{where}: no heading for anchor {anchor!r} in {dest}"
                    )
    if failures:
        print(f"{len(failures)} broken doc link(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"doc links OK ({checked} relative links checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
