//! Property suite for the static spec analyzer.
//!
//! Two halves:
//!
//! * **Soundness of silence** — randomly generated well-formed specs
//!   over a fixed schema pair are parsed through the real front-end and
//!   analyzed; whenever the analyzer reports no *error*-severity
//!   diagnostic, the full conform → merge pipeline must run without a
//!   `Conform`/`Merge` error. (Warnings and hints — dead rules,
//!   planner lints — are allowed and must not block.)
//! * **Non-vacuity** — every seeded defect-corpus fixture is caught by
//!   exactly its own diagnostic code, and the paper fixture stays
//!   diagnostic-free; silence is only meaningful because the defects it
//!   rules out are demonstrably detectable.

use db_interop::analyze::{analyze, corpus, has_errors, render, AnalysisInput, Code};
use db_interop::core::{Integrator, PreflightMode};
use db_interop::lang::{parse_database, parse_spec};
use db_interop::model::Database;
use proptest::prelude::*;

const LOCAL_TM: &str = "database LocalDB\n\n\
    class Person\n  attributes\n    name : string\n    age : 0..120\n    score : 1..5\n\
    end Person\n\n\
    class Student isa Person\n  attributes\n    unit : string\nend Student\n";

const REMOTE_TM: &str = "database RemoteDB\n\n\
    class Member\n  attributes\n    name : string\n    age : 0..120\n    \
    grade : 1..10\n    level : 1..4\n    active : boolean\nend Member\n";

/// One random premise atom over `Member`'s integer attributes. Constants
/// are drawn from a window *wider* than the declared domains, so some
/// generated rules are dead (A004) — those must surface as warnings,
/// never as pipeline failures.
#[derive(Clone, Debug)]
struct Atom {
    attr: &'static str,
    op: &'static str,
    val: i64,
}

impl Atom {
    fn render(&self) -> String {
        format!("m.{} {} {}", self.attr, self.op, self.val)
    }
}

fn arb_atom() -> impl Strategy<Value = Atom> {
    (0usize..3, 0usize..3, -5i64..130).prop_map(|(a, o, val)| Atom {
        attr: ["age", "grade", "level"][a],
        op: ["=", ">=", "<="][o],
        val,
    })
}

/// A random similarity rule: 1–2 premise atoms conjoined.
fn arb_rule() -> impl Strategy<Value = Vec<Atom>> {
    prop::collection::vec(arb_atom(), 1..3)
}

/// A random well-formed spec source: the anchoring equality rule, a
/// random batch of similarity rules, and a random subset of valid
/// property equivalences (distinct declared attributes, so A006 cannot
/// fire by construction).
fn arb_spec_src() -> impl Strategy<Value = String> {
    (
        prop::collection::vec(arb_rule(), 0..4),
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(|(rules, pe_age, pe_score)| {
            let mut src = String::from(
                "integration LocalDB with RemoteDB\n\n\
                 rule r1: Eq(p : Person, m : Member) <- p.name = m.name\n",
            );
            for (i, atoms) in rules.iter().enumerate() {
                let premise: Vec<String> = atoms.iter().map(Atom::render).collect();
                src.push_str(&format!(
                    "rule s{}: Sim(m : Member, Student) <- {}\n",
                    i + 2,
                    premise.join(" and ")
                ));
            }
            if pe_age {
                src.push_str("propeq(Person.age, Member.age, id, id, avg)\n");
            }
            if pe_score {
                src.push_str("propeq(Person.score, Member.grade, id, id, any)\n");
            }
            src
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Analyzer-clean specs integrate: no error diagnostics ⇒ the full
    /// conform → merge pipeline succeeds on the (empty-extent) databases.
    #[test]
    fn clean_specs_integrate(spec_src in arb_spec_src()) {
        let local = parse_database(LOCAL_TM).unwrap();
        let remote = parse_database(REMOTE_TM).unwrap();
        let spec = parse_spec(&spec_src, &local.schema, &remote.schema)
            .unwrap_or_else(|e| panic!("generated spec must parse: {e}\n{spec_src}"));
        let diags = analyze(&AnalysisInput {
            local: &local.schema,
            local_catalog: &local.catalog,
            remote: &remote.schema,
            remote_catalog: &remote.catalog,
            spec: &spec,
        });
        // The generator only produces structurally valid specs, so the
        // analyzer must never find an error-severity defect in them...
        prop_assert!(
            !has_errors(&diags),
            "generated spec flagged with errors:\n{}\n{spec_src}",
            render(&diags)
        );
        // ...and analyzer silence must be honoured by the pipeline.
        let integrator = Integrator::new(
            Database::new(local.schema, 1),
            local.catalog,
            Database::new(remote.schema, 2),
            remote.catalog,
            spec,
        );
        prop_assert!(integrator.preflight_gate(PreflightMode::Strict).is_ok());
        let outcome = integrator.run_checked();
        prop_assert!(
            outcome.is_ok(),
            "analyzer-clean spec failed to integrate: {:?}\n{spec_src}",
            outcome.err()
        );
    }
}

#[test]
fn corpus_is_nonvacuous_and_exact() {
    for f in corpus::defect_corpus() {
        let diags = corpus::analyze_fixture(&f).unwrap();
        let fired: std::collections::BTreeSet<Code> = diags.iter().map(|d| d.code).collect();
        assert_eq!(
            fired,
            std::iter::once(f.code).collect(),
            "fixture {} must trigger exactly {:?}, got:\n{}",
            f.name,
            f.code,
            render(&diags)
        );
    }
}

#[test]
fn paper_fixture_is_clean() {
    let root = env!("CARGO_MANIFEST_DIR");
    let read = |p: &str| std::fs::read_to_string(format!("{root}/{p}")).unwrap();
    let local = parse_database(&read("assets/cslibrary.tm")).unwrap();
    let remote = parse_database(&read("assets/bookseller.tm")).unwrap();
    let spec = parse_spec(
        &read("assets/paper_spec.tmspec"),
        &local.schema,
        &remote.schema,
    )
    .unwrap();
    let diags = analyze(&AnalysisInput {
        local: &local.schema,
        local_catalog: &local.catalog,
        remote: &remote.schema,
        remote_catalog: &remote.catalog,
        spec: &spec,
    });
    assert!(
        diags.is_empty(),
        "paper fixture must be clean:\n{}",
        render(&diags)
    );
}
