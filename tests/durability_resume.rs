//! Durability × incremental pipeline: a reopened store resumes the
//! incremental merge from the persisted touched-id log instead of
//! forcing a scratch re-merge — the pipeline consumes exactly the ids
//! mutated since its last drain, across a process "crash".

use db_interop::conform::conform;
use db_interop::core::IncrementalPipeline;
use db_interop::merge::{merge, MergeOptions};
use db_interop::model::{Database, Value};
use db_interop::storage::{DurabilityMode, Store};
use interop_bench::{synthetic_fixture, SyntheticConfig};

fn scratch_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("interop-resume-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn reopened_store_resumes_incremental_merge() {
    let fx = synthetic_fixture(SyntheticConfig {
        local_n: 12,
        remote_n: 12,
        match_ratio: 0.5,
        constraints_per_side: 2,
        seed: 7,
    });
    let opts = MergeOptions::default();
    let scratch_view = |local: &Database, remote: &Database| -> String {
        let conf = conform(
            local,
            &fx.local_catalog,
            remote,
            &fx.remote_catalog,
            &fx.spec,
        )
        .expect("conforms");
        format!("{:?}", merge(&conf, &opts).expect("merges"))
    };

    let dir = scratch_dir("pipeline");
    let mut lstore = Store::open(
        fx.local_db.clone(),
        fx.local_catalog.clone(),
        &dir,
        DurabilityMode::Wal,
    )
    .expect("open durable local store");
    lstore.track_touched(true);
    let mut rstore = Store::new(fx.remote_db.clone(), fx.remote_catalog.clone());
    rstore.track_touched(true);

    let mut pipe = IncrementalPipeline::new(
        lstore.db(),
        &fx.local_catalog,
        rstore.db(),
        &fx.remote_catalog,
        &fx.spec,
        opts.clone(),
    )
    .expect("pipeline seeds");

    // Session 1: mutate, sync (draining the log — the drain marker is
    // WAL-persisted), mutate some more, then "crash" without draining.
    let ids: Vec<_> = lstore.db().objects().map(|o| o.id).collect();
    lstore
        .update(ids[0], "price", Value::real(42.0))
        .expect("in-range update");
    pipe.sync_local(&mut lstore).expect("sync applies");
    assert_eq!(
        format!("{:?}", pipe.view()),
        scratch_view(lstore.db(), rstore.db()),
        "synced view matches a scratch rebuild"
    );
    lstore
        .update(ids[1], "price", Value::real(43.0))
        .expect("in-range update");
    let fresh = lstore
        .create(
            "LProd",
            vec![
                ("key", Value::str("fresh-after-drain")),
                ("price", Value::real(5.0)),
                ("score", Value::int(4)),
                ("grade", Value::int(7)),
            ],
        )
        .expect("in-range insert");
    let expected_db = lstore.db().clone();
    drop(lstore); // crash: two mutations are committed but undrained

    // Session 2: recovery hands back exactly the post-drain ids, and
    // one incremental sync catches the (still-live) pipeline up.
    let mut lstore = Store::open(
        fx.local_db.clone(),
        fx.local_catalog.clone(),
        &dir,
        DurabilityMode::Wal,
    )
    .expect("reopen");
    assert_eq!(lstore.db().len(), expected_db.len(), "replay recovered all");
    let touched = {
        // Peek without draining: copy the recovered store (explicitly
        // detached — the copy shares no WAL) and drain the copy.
        let mut peek = lstore.detached_clone();
        peek.take_touched()
    };
    assert_eq!(
        touched,
        {
            let mut t = vec![ids[1], fresh];
            t.sort_unstable();
            t
        },
        "resume set is the post-drain mutations, not the whole database"
    );
    assert!(
        touched.len() < lstore.db().len(),
        "resume is incremental, not a full re-merge"
    );
    pipe.sync_local(&mut lstore).expect("resume sync applies");
    assert_eq!(
        format!("{:?}", pipe.view()),
        scratch_view(lstore.db(), rstore.db()),
        "resumed view matches a scratch rebuild of the recovered sources"
    );
    assert_eq!(
        lstore.take_touched(),
        Vec::new(),
        "the resume drain emptied the log"
    );
}
