//! Snapshot regression suite for the static spec analyzer: the rendered
//! diagnostic stream is pinned byte-for-byte for the paper fixture
//! (which must stay diagnostic-free) and for every seeded defect-corpus
//! fixture (each of which must keep reporting exactly its planted
//! defect). The pre-flight gate's strict/warn behaviour is checked on
//! the same inputs.
//!
//! To regenerate after an *intended* output change, run with
//! `UPDATE_SNAPSHOTS=1` and review the diff.

use db_interop::analyze::{analyze, corpus, has_errors, render, AnalysisInput, Severity};
use db_interop::core::{IntegrateError, Integrator, PreflightMode};
use db_interop::lang::{parse_database, parse_spec, ParsedDatabase};
use db_interop::model::Database;
use db_interop::spec::Spec;

fn check(name: &str, rendered: &str) {
    let path = format!("{}/tests/snapshots/{name}.txt", env!("CARGO_MANIFEST_DIR"));
    if std::env::var("UPDATE_SNAPSHOTS").is_ok() {
        std::fs::create_dir_all(format!("{}/tests/snapshots", env!("CARGO_MANIFEST_DIR"))).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing snapshot {path}: {e}; run with UPDATE_SNAPSHOTS=1"));
    assert!(
        expected == rendered,
        "analyzer output diverged from pinned snapshot {path}.\n\
         --- expected ---\n{expected}\n--- actual ---\n{rendered}\n\
         If the change is intended, regenerate with UPDATE_SNAPSHOTS=1 and review."
    );
}

/// Parses the bundled Figure-1 assets (through the real front-end, so
/// spec line locations are populated).
fn paper_sources() -> (ParsedDatabase, ParsedDatabase, Spec) {
    let root = env!("CARGO_MANIFEST_DIR");
    let read = |p: &str| std::fs::read_to_string(format!("{root}/{p}")).unwrap();
    let local = parse_database(&read("assets/cslibrary.tm")).unwrap();
    let remote = parse_database(&read("assets/bookseller.tm")).unwrap();
    let spec = parse_spec(
        &read("assets/paper_spec.tmspec"),
        &local.schema,
        &remote.schema,
    )
    .unwrap();
    (local, remote, spec)
}

#[test]
fn paper_fixture_is_diagnostic_free_pinned() {
    let (local, remote, spec) = paper_sources();
    let diags = analyze(&AnalysisInput {
        local: &local.schema,
        local_catalog: &local.catalog,
        remote: &remote.schema,
        remote_catalog: &remote.catalog,
        spec: &spec,
    });
    assert!(
        diags.is_empty(),
        "paper fixture must be clean:\n{}",
        render(&diags)
    );
    check("analyze_paper", &render(&diags));
}

#[test]
fn defect_corpus_diagnostics_pinned() {
    for f in corpus::defect_corpus() {
        let diags = corpus::analyze_fixture(&f).unwrap();
        check(&format!("analyze_{}", f.name), &render(&diags));
    }
}

/// Builds an [`Integrator`] over a corpus fixture's sources (empty
/// extents — pre-flight never needs data anyway).
fn integrator_for(f: &corpus::Fixture) -> Integrator {
    let local = parse_database(&f.local_tm).unwrap();
    let remote = parse_database(&f.remote_tm).unwrap();
    let spec = parse_spec(&f.spec, &local.schema, &remote.schema).unwrap();
    Integrator::new(
        Database::new(local.schema, 1),
        local.catalog,
        Database::new(remote.schema, 2),
        remote.catalog,
        spec,
    )
}

#[test]
fn strict_preflight_refuses_error_fixtures_warn_does_not() {
    for f in corpus::defect_corpus() {
        let integrator = integrator_for(&f);
        let diags = integrator.preflight();
        // Warn mode reports the same stream but never blocks.
        let warned = integrator.preflight_gate(PreflightMode::Warn).unwrap();
        assert_eq!(
            warned, diags,
            "{}: warn mode must not alter the stream",
            f.name
        );
        let strict = integrator.preflight_gate(PreflightMode::Strict);
        if f.code.severity() == Severity::Error {
            match strict {
                Err(IntegrateError::Preflight(d)) => {
                    assert_eq!(d, diags, "{}: refusal must carry the full stream", f.name)
                }
                other => panic!(
                    "{}: strict pre-flight must refuse an error-seeded fixture, got {other:?}",
                    f.name
                ),
            }
            // And the refusal happens in run_checked too, before any work.
            assert!(
                matches!(integrator.run_checked(), Err(IntegrateError::Preflight(_))),
                "{}: run_checked must refuse",
                f.name
            );
        } else {
            assert!(
                strict.is_ok(),
                "{}: warnings and hints must not refuse the spec",
                f.name
            );
        }
    }
}

#[test]
fn paper_fixture_passes_strict_preflight_end_to_end() {
    let (local, remote, spec) = paper_sources();
    let integrator = Integrator::new(
        Database::new(local.schema, 1),
        local.catalog,
        Database::new(remote.schema, 2),
        remote.catalog,
        spec,
    );
    let diags = integrator.preflight_gate(PreflightMode::Strict).unwrap();
    assert!(diags.is_empty());
    assert!(!has_errors(&diags));
    integrator
        .run_checked()
        .expect("paper fixture integrates through the gate");
}
