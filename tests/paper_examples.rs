//! Experiments S1–S5f: every worked example in the paper's text,
//! regenerated and asserted. Section references follow the paper.

use db_interop::constraint::{ConstraintId, Status};
use db_interop::core::conflict::ConflictKind;
use db_interop::core::derive::{DerivationOrigin, Scope};
use db_interop::core::fixtures;
use db_interop::core::{Integrator, IntegratorOptions};
use db_interop::model::ClassName;
use db_interop::spec::{Decision, RuleId, Side};

fn paper_outcome() -> db_interop::core::IntegrationOutcome {
    let fx = fixtures::paper_fixture();
    Integrator::new(
        fx.local_db,
        fx.local_catalog,
        fx.remote_db,
        fx.remote_catalog,
        fx.spec,
    )
    .with_options(IntegratorOptions {
        merge: fixtures::merge_options(),
        ..Default::default()
    })
    .run()
    .unwrap()
}

/// S1 — §1 intro: `trav_reimb ∈ {10,20}` and `{14,24}` fused by `avg`
/// derive the global `trav_reimb ∈ {12,17,22}`; `salary < 1500` is a
/// subjective business rule valid only for single-department employees.
#[test]
fn s1_intro_personnel_example() {
    let fx = fixtures::personnel_fixture();
    let outcome = Integrator::new(
        fx.local_db,
        fx.local_catalog,
        fx.remote_db,
        fx.remote_catalog,
        fx.spec,
    )
    .run()
    .unwrap();
    let avg = outcome
        .global
        .object
        .iter()
        .find(|d| matches!(d.origin, DerivationOrigin::DfCombination(Decision::Avg)))
        .expect("avg combination derived");
    assert_eq!(avg.formula.to_string(), "trav_reimb in {12, 17, 22}");
    assert!(matches!(&avg.scope, Scope::Merged(a, b)
        if a.as_str() == "Employee" && b.as_str() == "Staff"));
    // salary < 1500: subjective, single-source scope only.
    assert_eq!(
        outcome.statuses[&ConstraintId::derived("DB1.Employee.c2")],
        Status::Subjective
    );
    assert!(outcome.global.object.iter().any(|d| {
        matches!(&d.scope, Scope::LocalOnly(c) if c.as_str() == "Employee")
            && d.formula.to_string() == "salary < 1500"
    }));
}

/// S3 — §3: from r3's intraobject condition `ref? = true` and oc2, the
/// implied object constraint `rating >= 7` on admitted objects.
#[test]
fn s3_implied_constraint_example() {
    let outcome = paper_outcome();
    let implied = outcome
        .implied
        .iter()
        .find(|i| i.rule == RuleId::new("r3") && i.formula.to_string() == "rating >= 7")
        .expect("the §3 implied constraint");
    assert_eq!(implied.target_class, ClassName::new("RefereedPubl"));
    assert!(implied
        .sources
        .iter()
        .any(|s| s.as_str() == "Bookseller.Proceedings.oc2"));
}

/// S4 — §4 conformation examples: `oc2` reallocated to `VirtPublisher`
/// as `name in KNOWNPUBLISHERS`; RefereedPubl's `rating >= 2` conformed
/// through `multiply(2)` to `rating >= 4`.
#[test]
fn s4_conformation_examples() {
    let outcome = paper_outcome();
    let virt = outcome
        .conformed
        .local
        .catalog
        .object_on(&ClassName::new("VirtPublisher"));
    assert_eq!(virt.len(), 1);
    assert!(virt[0]
        .formula
        .to_string()
        .starts_with("name in {'ACM', 'IEEE'"));
    let refereed = outcome
        .conformed
        .local
        .catalog
        .object_on(&ClassName::new("RefereedPubl"));
    assert_eq!(refereed[0].formula.to_string(), "rating >= 4");
}

/// S5a — §5.1.2: the decision-function kinds map to property
/// subjectivity exactly as the paper's prose states.
#[test]
fn s5a_subjectivity_table() {
    let outcome = paper_outcome();
    let subj = &outcome.subjectivity;
    let table: Vec<((Side, &str, &str), bool)> = vec![
        // trust(CSLibrary) on ourprice/libprice.
        ((Side::Local, "Publication", "libprice"), false),
        ((Side::Remote, "Item", "libprice"), true),
        // trust(Bookseller) on shopprice.
        ((Side::Local, "Publication", "shopprice"), true),
        ((Side::Remote, "Item", "shopprice"), false),
        // any on publisher/name.
        ((Side::Local, "VirtPublisher", "name"), false),
        ((Side::Remote, "Publisher", "name"), false),
        // avg on rating.
        ((Side::Local, "ScientificPubl", "rating"), true),
        ((Side::Remote, "Proceedings", "rating"), true),
        // union on editors/authors.
        ((Side::Local, "ScientificPubl", "authors"), true), // editors conformed to 'authors'
        ((Side::Remote, "Item", "authors"), true),
    ];
    for ((side, class, attr), expect_subjective) in table {
        let schema = match side {
            Side::Local => &outcome.conformed.local.db.schema,
            Side::Remote => &outcome.conformed.remote.db.schema,
        };
        assert_eq!(
            subj.is_subjective(
                schema,
                side,
                &ClassName::new(class),
                &db_interop::model::AttrName::new(attr)
            ),
            expect_subjective,
            "{side} {class}.{attr}"
        );
    }
}

/// S5b — §5.2.1 equality: the ACM derivation; the trust-blocked
/// libprice constraint pair (condition (1)).
#[test]
fn s5b_equality_derivation() {
    let outcome = paper_outcome();
    assert!(outcome
        .global
        .object
        .iter()
        .any(|d| d.formula.to_string() == "publisher.name = 'ACM' implies rating >= 5"));
    // oc1 of Publication and Item cannot combine (condition (1)).
    assert!(outcome
        .global
        .skipped
        .iter()
        .any(|s| { s.source.as_str().ends_with(".oc1") && s.reason.contains("condition (1)") }));
    // No merged-scope constraint mentions libprice.
    assert!(!outcome.global.object.iter().any(|d| {
        matches!(d.scope, Scope::Merged(_, _)) && d.formula.to_string().contains("libprice")
    }));
}

/// S5c — §5.2.1 strict similarity: `rating >= 7 ⊨ rating >= 4` admits
/// r3 cleanly; the weakened-oc2 variant creates the admission conflict
/// and the paper's repair (strengthen the rule) resolves it.
#[test]
fn s5c_strict_similarity_and_repair() {
    // Clean case.
    let outcome = paper_outcome();
    assert!(!outcome
        .global
        .admission_failures
        .iter()
        .any(|f| f.rule == RuleId::new("r3")));
    // Weakened variant.
    let fx = fixtures::paper_fixture();
    let mut rcat = db_interop::constraint::Catalog::new();
    for oc in fx.remote_catalog.all_object() {
        if oc.id.as_str() == "Bookseller.Proceedings.oc2" {
            let mut weak = oc.clone();
            weak.formula = db_interop::constraint::Formula::cmp(
                "ref?",
                db_interop::constraint::CmpOp::Eq,
                true,
            )
            .implies(db_interop::constraint::Formula::cmp(
                "rating",
                db_interop::constraint::CmpOp::Ge,
                3i64,
            ));
            rcat.add_object(weak);
        } else {
            rcat.add_object(oc.clone());
        }
    }
    for cc in fx.remote_catalog.all_class() {
        rcat.add_class(cc.clone());
    }
    for dc in fx.remote_catalog.database_constraints() {
        rcat.add_database(dc.clone());
    }
    let mut integ = Integrator::new(fx.local_db, fx.local_catalog, fx.remote_db, rcat, fx.spec)
        .with_options(IntegratorOptions {
            merge: fixtures::merge_options(),
            ..Default::default()
        });
    let first = integ.run().unwrap();
    let failure = first
        .global
        .admission_failures
        .iter()
        .find(|f| f.rule == RuleId::new("r3"))
        .expect("the paper's admission conflict");
    assert_eq!(failure.violated.as_str(), "CSLibrary.RefereedPubl.oc1");
    assert_eq!(failure.needed.to_string(), "rating >= 4");
    // The paper's repair: r3 gains `rating >= 4`.
    let outcomes = integ.run_with_repairs(5).unwrap();
    assert!(!outcomes
        .last()
        .unwrap()
        .global
        .admission_failures
        .iter()
        .any(|f| f.rule == RuleId::new("r3")));
    let r3 = integ
        .spec()
        .rules
        .iter()
        .find(|r| r.id == RuleId::new("r3"))
        .unwrap();
    assert!(r3.intra_subject.to_string().contains("rating >= 4"));
}

/// S5d — §5.2.1 approximate similarity: the virtual superclass carries
/// `Ω ∨ Ω'`, and horizontal fragments are detected when `Ω ⊨ ¬φ'`.
#[test]
fn s5d_approx_similarity_disjunction_and_fragments() {
    // Synthetic two-class scenario: local Cheap (price <= 10) and remote
    // Expensive (price >= 20) under a common virtual class AnyItem.
    use db_interop::constraint::{CmpOp, Formula, ObjectConstraint};
    use db_interop::model::{ClassDef, Database, DbName, Schema, Type};
    let local_schema =
        Schema::new("L", vec![ClassDef::new("Cheap").attr("price", Type::Real)]).unwrap();
    let remote_schema = Schema::new(
        "R",
        vec![ClassDef::new("Expensive").attr("price", Type::Real)],
    )
    .unwrap();
    let mut lcat = db_interop::constraint::Catalog::new();
    lcat.add_object(ObjectConstraint::new(
        ConstraintId::new(&DbName::new("L"), &ClassName::new("Cheap"), "oc1"),
        "Cheap",
        Formula::cmp("price", CmpOp::Le, 10.0),
    ));
    let mut rcat = db_interop::constraint::Catalog::new();
    rcat.add_object(ObjectConstraint::new(
        ConstraintId::new(&DbName::new("R"), &ClassName::new("Expensive"), "oc1"),
        "Expensive",
        Formula::cmp("price", CmpOp::Ge, 20.0),
    ));
    let mut spec = db_interop::spec::Spec::new("L", "R");
    spec.add_rule(db_interop::spec::ComparisonRule::approx_similarity(
        "r_appr",
        Side::Remote,
        "Expensive",
        "Cheap",
        "AnyItem",
        Formula::True,
    ));
    let mut ldb = Database::new(local_schema, 1);
    ldb.create("Cheap", vec![("price", 5.0.into())]).unwrap();
    let mut rdb = Database::new(remote_schema, 2);
    rdb.create("Expensive", vec![("price", 25.0.into())])
        .unwrap();
    let outcome = Integrator::new(ldb, lcat, rdb, rcat, spec).run().unwrap();
    // The disjunction on the virtual superclass.
    let disj = outcome
        .global
        .object
        .iter()
        .find(|d| matches!(&d.scope, Scope::All(c) if c.as_str() == "AnyItem"))
        .expect("virtual superclass constraint");
    assert_eq!(disj.formula.to_string(), "price <= 10 or price >= 20");
    assert_eq!(disj.origin, DerivationOrigin::ApproxDisjunction);
    // Horizontal fragmentation: Ω(Cheap) ⊨ ¬(price >= 20).
    assert!(
        outcome
            .global
            .fragments
            .iter()
            .any(|f| f.virtual_class.as_str() == "AnyItem"
                && f.condition.to_string() == "price >= 20")
    );
    // Both classes sit under the virtual superclass in the hierarchy.
    assert!(outcome
        .view
        .hierarchy
        .is_direct_subclass(&ClassName::new("Cheap"), &ClassName::new("AnyItem")));
    assert!(outcome
        .view
        .hierarchy
        .is_direct_subclass(&ClassName::new("Expensive"), &ClassName::new("AnyItem")));
}

/// S5e — §5.2.2 class constraints: aggregates stay subjective; keys
/// propagate per the criterion; objective extension when untouched.
#[test]
fn s5e_class_constraints() {
    let outcome = paper_outcome();
    // Both isbn keys propagate (r1 joins key-to-key; sim subjects covered).
    let keys: Vec<_> = outcome
        .global
        .class_constraints
        .iter()
        .filter(|(c, o)| c.is_key() && *o == DerivationOrigin::KeyPropagation)
        .collect();
    assert_eq!(keys.len(), 2);
    // cc2 (sum < MAX) and the avg-rating constraint stay subjective.
    for id in ["CSLibrary.Publication.cc2", "CSLibrary.ScientificPubl.cc1"] {
        assert!(outcome
            .global
            .skipped
            .iter()
            .any(|s| s.source.as_str() == id));
    }
}

/// S5f — §5.2.1/§5.2.3: the implicit conflict from the `any` decision
/// function, and database constraints never propagating.
#[test]
fn s5f_implicit_conflict_and_db_constraints() {
    let outcome = paper_outcome();
    assert!(outcome.conflicts.iter().any(|c| {
        matches!(&c.kind, ConflictKind::Implicit { constraint, .. }
            if constraint.as_str() == "CSLibrary.Publication.oc2")
    }));
    assert_eq!(
        outcome.statuses[&ConstraintId::derived("Bookseller.dbl")],
        Status::Subjective
    );
    assert!(outcome
        .global
        .skipped
        .iter()
        .any(|s| s.source.as_str() == "Bookseller.dbl"));
}

/// §5.1.3 — the consistency rule: declaring objective a constraint on a
/// subjective property is rejected as a specification inconsistency.
#[test]
fn s5_value_subjectivity_rule_enforced() {
    let fx = fixtures::paper_fixture();
    let mut spec = fx.spec.clone();
    spec.declare_status(
        ConstraintId::derived("Bookseller.Proceedings.oc2"),
        Status::Objective,
    );
    let outcome = Integrator::new(
        fx.local_db,
        fx.local_catalog,
        fx.remote_db,
        fx.remote_catalog,
        spec,
    )
    .with_options(IntegratorOptions {
        merge: fixtures::merge_options(),
        ..Default::default()
    })
    .run()
    .unwrap();
    assert!(outcome
        .spec_issues
        .iter()
        .any(|i| i.context.contains("Proceedings.oc2")));
    assert_eq!(
        outcome.statuses[&ConstraintId::derived("Bookseller.Proceedings.oc2")],
        Status::Subjective,
        "forced subjective despite the declaration"
    );
}
