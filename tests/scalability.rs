//! Scale smoke test: the full methodology on a few thousand objects —
//! correctness invariants at a size where quadratic accidents would
//! show, small enough for the default test run.
//!
//! The 5k-object smoke test runs in the default `cargo test` tier (it
//! finishes in well under a second). The 60k-object stress test is the
//! gated slow tier: `cargo test --test scalability -- --ignored`.

use db_interop::constraint::{CmpOp, Formula};
use db_interop::core::{IntegrationOutcome, Integrator, IntegratorOptions};
use db_interop::model::{ClassName, Value};
use db_interop::storage::{CompositePolicy, OptimizeOutcome, Optimizer, Query};

/// Runs the full methodology on a synthetic fixture of the given size and
/// checks the size-independent invariants: exact merge count, total view
/// size, total id map, and soundness of the derivation on the instances.
fn integrate_and_check(local_n: usize, remote_n: usize, seed: u64) -> IntegrationOutcome {
    let fx = interop_bench::synthetic_fixture(interop_bench::SyntheticConfig {
        local_n,
        remote_n,
        match_ratio: 0.4,
        constraints_per_side: 4,
        seed,
    });
    let local_n = fx.local_db.len();
    let remote_n = fx.remote_db.len();
    let outcome = Integrator::new(
        fx.local_db,
        fx.local_catalog,
        fx.remote_db,
        fx.remote_catalog,
        fx.spec,
    )
    .with_options(IntegratorOptions::default())
    .run()
    .expect("integrates at scale");
    let merged = outcome
        .view
        .objects
        .values()
        .filter(|g| g.local.is_some() && g.remote.is_some())
        .count();
    // 40% of the remote objects share keys with distinct locals.
    assert_eq!(merged, (remote_n as f64 * 0.4) as usize);
    assert_eq!(outcome.view.objects.len(), local_n + remote_n - merged);
    // The id map is total.
    assert_eq!(outcome.view.id_map.len(), local_n + remote_n);
    // No instance-level violations: derivation is sound on this data.
    assert!(!outcome.conflicts.iter().any(|c| matches!(
        c.kind,
        db_interop::core::conflict::ConflictKind::InstanceViolation { .. }
    )));
    outcome
}

#[test]
fn five_thousand_objects_integrate_correctly() {
    let outcome = integrate_and_check(2_500, 2_500, 11);
    // Derivation produced the avg combinations and key propagation.
    assert!(outcome.global.object.iter().any(|d| matches!(
        d.origin,
        db_interop::core::derive::DerivationOrigin::DfCombination(_)
    )));
    assert!(outcome.global.class_constraints.iter().any(
        |(c, o)| c.is_key() && *o == db_interop::core::derive::DerivationOrigin::KeyPropagation
    ));
}

/// Mid-size storage tier: a 20k-object store runs a mixed read/write
/// workload with composite indexes enabled — recurring hot-pair queries
/// drive admission, then interleaved rating/shelf updates exercise the
/// incremental composite deltas — and a sampled query set is
/// cross-checked against the naive scan oracle at checkpoints. Promoted
/// into the default `cargo test` tier (runs in well under a second in
/// release, a few seconds in debug); the 60k integration stress test
/// below stays `--ignored`.
#[test]
fn twenty_thousand_object_mixed_workload_with_composites() {
    let mut store = interop_bench::synthetic_store(20_000, 17);
    store.set_composite_policy(CompositePolicy {
        admit_after: 2,
        min_gain: 2.0,
        evict_after: u32::MAX,
    });
    let opt = Optimizer::new(
        &store,
        "Item",
        vec![Formula::cmp("rating", CmpOp::Ge, 5i64)],
    );
    let hot_pair =
        Formula::cmp("rating", CmpOp::Eq, 7i64).and(Formula::cmp("shelf", CmpOp::Eq, 13i64));
    // Recurring sightings cross the admission threshold.
    for _ in 0..3 {
        let (_, outcome) = opt.execute(&store, &hot_pair).expect("hot pair executes");
        assert_eq!(outcome, OptimizeOutcome::IndexScan);
    }
    assert!(
        opt.costed_plan(&store, &hot_pair)
            .composite_probe()
            .is_some(),
        "hot pair admitted after recurrences"
    );
    let class = ClassName::new("Item");
    let ids = store.db().extension(&class);
    let sampled = [
        hot_pair.clone(),
        Formula::cmp("rating", CmpOp::Eq, 9i64).and(Formula::cmp("shelf", CmpOp::Eq, 38i64)),
        Formula::cmp("shelf", CmpOp::Eq, 13i64).and(Formula::cmp("price", CmpOp::Le, 20.0)),
        Formula::cmp("rating", CmpOp::Ge, 10i64),
        Formula::cmp("isbn", CmpOp::Eq, "isbn-10000"),
    ];
    let check_against_oracle = |store: &db_interop::storage::Store| {
        for pred in &sampled {
            let (mut hits, _) = opt.execute(store, pred).expect("planned query");
            hits.sort_unstable();
            let mut expected = Query::new("Item", pred.clone())
                .scan(store)
                .expect("oracle scan");
            expected.sort_unstable();
            assert_eq!(hits, expected, "planner diverged from oracle on {pred}");
        }
    };
    check_against_oracle(&store);
    // Mixed read/write: each iteration flips one rating and one shelf
    // (both components of the admitted pair), then re-answers the hot
    // pair through the composite.
    for i in 0..200usize {
        let id = ids[(i * 37) % ids.len()];
        store
            .update(id, "rating", Value::Int(5 + (i as i64 % 6)))
            .expect("rating stays in bounds");
        let id2 = ids[(i * 53 + 11) % ids.len()];
        store
            .update(id2, "shelf", Value::Int((i as i64 * 13) % 50))
            .expect("shelf is unconstrained");
        let (_, outcome) = opt.execute(&store, &hot_pair).expect("hot pair executes");
        assert_eq!(outcome, OptimizeOutcome::IndexScan);
        if i % 50 == 49 {
            check_against_oracle(&store);
        }
    }
    check_against_oracle(&store);
    assert!(
        !store.admitted_composites().is_empty(),
        "admission survives the whole workload"
    );
}

/// Slow tier: an order of magnitude beyond the smoke test, where an
/// accidentally quadratic merge or derivation pass becomes minutes, not
/// milliseconds. CI runs this in a separate job via `-- --ignored`.
#[test]
#[ignore = "slow tier: run with `cargo test --test scalability -- --ignored`"]
fn sixty_thousand_objects_integrate_correctly() {
    integrate_and_check(30_000, 30_000, 13);
}

/// Slow-tier MVCC stress: 8 threads × 1 000 transactions against one
/// shared store under the default serializable validation — updates,
/// inserts, planned queries and deliberate rollbacks, heavy conflict
/// rates included. The full recorded history must pass the black-box
/// serializability oracle, and replaying the recovered serial order
/// through a fresh single-threaded store must land on the concurrent
/// run's final state.
#[test]
#[ignore = "slow tier: run with `cargo test --test scalability -- --ignored`"]
fn mvcc_stress_eight_threads_thousand_txns_serializable() {
    use db_interop::model::ObjectId;
    use db_interop::storage::{check, replay, MvccStore, Verdict};

    const THREADS: u64 = 8;
    const TXNS_PER_THREAD: u64 = 1_000;

    let store = MvccStore::new(interop_bench::synthetic_store(500, 23));
    store.record_history(true);
    let ids: Vec<ObjectId> = store.read_view().db().objects().map(|o| o.id).collect();

    std::thread::scope(|s| {
        for th in 0..THREADS {
            let store = store.clone();
            let ids = ids.clone();
            s.spawn(move || {
                // xorshift64* per thread: deterministic op choice,
                // nondeterministic interleaving.
                let mut x = 0x9E3779B97F4A7C15u64 ^ ((th + 1) << 32);
                let mut rng = move || {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x.wrapping_mul(2685821657736338717)
                };
                for n in 0..TXNS_PER_THREAD {
                    let mut t = store.begin();
                    match rng() % 10 {
                        0..=4 => {
                            let id = ids[(rng() % ids.len() as u64) as usize];
                            // rating must satisfy both the schema range
                            // and the derived `rating >= 5` constraint.
                            let _ = t.update(id, "rating", Value::Int(5 + (rng() % 6) as i64));
                        }
                        5 | 6 => {
                            let id = ids[(rng() % ids.len() as u64) as usize];
                            let _ = t.update(id, "shelf", Value::Int((rng() % 50) as i64));
                        }
                        7 => {
                            let _ = t.create(
                                "Item",
                                vec![
                                    ("isbn", Value::str(format!("mt-{th}-{n}"))),
                                    ("price", Value::real(10.0)),
                                    ("rating", Value::Int(7)),
                                    ("shelf", Value::Int((rng() % 50) as i64)),
                                ],
                            );
                        }
                        _ => {
                            let _ = t.query(
                                "Item",
                                &Formula::cmp("rating", CmpOp::Eq, 5 + (rng() % 6) as i64),
                            );
                        }
                    }
                    if rng() % 16 == 0 {
                        t.rollback();
                    } else {
                        let _ = t.commit(); // conflicts abort; that's the workload
                    }
                }
            });
        }
    });

    let history = store.take_history();
    assert!(
        history.len() > TXNS_PER_THREAD as usize,
        "a meaningful share of the {} attempts committed (got {})",
        THREADS * TXNS_PER_THREAD,
        history.len()
    );
    let order = match check(&history) {
        Verdict::Serializable { order, .. } => order,
        Verdict::Cyclic { cycle, .. } => {
            panic!("non-serializable history admitted under stress: cycle {cycle:?}")
        }
    };
    // Replay through the identical deterministic base fixture.
    let mut base = interop_bench::synthetic_store(500, 23);
    replay(&history, &order, &mut base).expect("stress replay");
    let view = store.read_view();
    let dump = |s: &db_interop::storage::Store| {
        let mut out: Vec<_> = s.db().objects().map(|o| (o.id, o.attrs.clone())).collect();
        out.sort_by_key(|(id, _)| *id);
        out
    };
    assert_eq!(
        dump(&base),
        dump(&view),
        "serial replay lands on the concurrent final state"
    );
}
