//! Scale smoke test: the full methodology on a few thousand objects —
//! correctness invariants at a size where quadratic accidents would
//! show, small enough for the default test run.

use db_interop::core::{Integrator, IntegratorOptions};

#[test]
fn five_thousand_objects_integrate_correctly() {
    let fx = interop_bench::synthetic_fixture(interop_bench::SyntheticConfig {
        local_n: 2_500,
        remote_n: 2_500,
        match_ratio: 0.4,
        constraints_per_side: 4,
        seed: 11,
    });
    let local_n = fx.local_db.len();
    let remote_n = fx.remote_db.len();
    let outcome = Integrator::new(
        fx.local_db,
        fx.local_catalog,
        fx.remote_db,
        fx.remote_catalog,
        fx.spec,
    )
    .with_options(IntegratorOptions::default())
    .run()
    .expect("integrates at scale");
    let merged = outcome
        .view
        .objects
        .values()
        .filter(|g| g.local.is_some() && g.remote.is_some())
        .count();
    // 40% of 2500 remote objects share keys with distinct locals.
    assert_eq!(merged, 1_000);
    assert_eq!(outcome.view.objects.len(), local_n + remote_n - merged);
    // The id map is total.
    assert_eq!(outcome.view.id_map.len(), local_n + remote_n);
    // Derivation produced the avg combinations and key propagation.
    assert!(outcome.global.object.iter().any(|d| matches!(
        d.origin,
        db_interop::core::derive::DerivationOrigin::DfCombination(_)
    )));
    assert!(outcome.global.class_constraints.iter().any(
        |(c, o)| c.is_key() && *o == db_interop::core::derive::DerivationOrigin::KeyPropagation
    ));
    // No instance-level violations: derivation is sound on this data.
    assert!(!outcome.conflicts.iter().any(|c| matches!(
        c.kind,
        db_interop::core::conflict::ConflictKind::InstanceViolation { .. }
    )));
}
