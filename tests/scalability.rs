//! Scale smoke test: the full methodology on a few thousand objects —
//! correctness invariants at a size where quadratic accidents would
//! show, small enough for the default test run.
//!
//! The 5k-object smoke test runs in the default `cargo test` tier (it
//! finishes in well under a second). The 60k-object stress test is the
//! gated slow tier: `cargo test --test scalability -- --ignored`.

use db_interop::core::{IntegrationOutcome, Integrator, IntegratorOptions};

/// Runs the full methodology on a synthetic fixture of the given size and
/// checks the size-independent invariants: exact merge count, total view
/// size, total id map, and soundness of the derivation on the instances.
fn integrate_and_check(local_n: usize, remote_n: usize, seed: u64) -> IntegrationOutcome {
    let fx = interop_bench::synthetic_fixture(interop_bench::SyntheticConfig {
        local_n,
        remote_n,
        match_ratio: 0.4,
        constraints_per_side: 4,
        seed,
    });
    let local_n = fx.local_db.len();
    let remote_n = fx.remote_db.len();
    let outcome = Integrator::new(
        fx.local_db,
        fx.local_catalog,
        fx.remote_db,
        fx.remote_catalog,
        fx.spec,
    )
    .with_options(IntegratorOptions::default())
    .run()
    .expect("integrates at scale");
    let merged = outcome
        .view
        .objects
        .values()
        .filter(|g| g.local.is_some() && g.remote.is_some())
        .count();
    // 40% of the remote objects share keys with distinct locals.
    assert_eq!(merged, (remote_n as f64 * 0.4) as usize);
    assert_eq!(outcome.view.objects.len(), local_n + remote_n - merged);
    // The id map is total.
    assert_eq!(outcome.view.id_map.len(), local_n + remote_n);
    // No instance-level violations: derivation is sound on this data.
    assert!(!outcome.conflicts.iter().any(|c| matches!(
        c.kind,
        db_interop::core::conflict::ConflictKind::InstanceViolation { .. }
    )));
    outcome
}

#[test]
fn five_thousand_objects_integrate_correctly() {
    let outcome = integrate_and_check(2_500, 2_500, 11);
    // Derivation produced the avg combinations and key propagation.
    assert!(outcome.global.object.iter().any(|d| matches!(
        d.origin,
        db_interop::core::derive::DerivationOrigin::DfCombination(_)
    )));
    assert!(outcome.global.class_constraints.iter().any(
        |(c, o)| c.is_key() && *o == db_interop::core::derive::DerivationOrigin::KeyPropagation
    ));
}

/// Slow tier: an order of magnitude beyond the smoke test, where an
/// accidentally quadratic merge or derivation pass becomes minutes, not
/// milliseconds. CI runs this in a separate job via `-- --ignored`.
#[test]
#[ignore = "slow tier: run with `cargo test --test scalability -- --ignored`"]
fn sixty_thousand_objects_integrate_correctly() {
    integrate_and_check(30_000, 30_000, 13);
}
