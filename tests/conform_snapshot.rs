//! Snapshot regression test: the conformation phase's output on the
//! Figure-1/2 paper fixtures is pinned byte-for-byte. The conform-phase
//! performance work (interned schema index, hash-map hot paths) must not
//! change a single visible byte — schemas, rewritten constraints,
//! objectified extents, conformed spec, and notes are all rendered here.
//!
//! To regenerate after an *intended* output change, run with
//! `UPDATE_SNAPSHOTS=1` and review the diff.

use db_interop::conform::{conform, Conformed};
use db_interop::core::fixtures;
use db_interop::model::Database;
use std::fmt::Write as _;

/// Renders every user-visible part of a conformation result into a
/// deterministic text form.
fn render(conf: &Conformed) -> String {
    let mut out = String::new();
    for (tag, side) in [("local", &conf.local), ("remote", &conf.remote)] {
        writeln!(out, "== {tag} schema ==").unwrap();
        render_db(&mut out, &side.db);
        writeln!(out, "== {tag} catalog ==").unwrap();
        for c in side.catalog.all_object() {
            writeln!(out, "object {c}").unwrap();
        }
        for c in side.catalog.all_class() {
            writeln!(out, "class {c}").unwrap();
        }
        for c in side.catalog.database_constraints() {
            writeln!(out, "database {c}").unwrap();
        }
    }
    writeln!(out, "== conformed spec ==").unwrap();
    for r in &conf.spec.rules {
        writeln!(out, "rule {r}").unwrap();
    }
    for p in &conf.spec.propeqs {
        writeln!(out, "propeq {p}").unwrap();
    }
    writeln!(out, "== notes ==").unwrap();
    for n in &conf.notes {
        writeln!(out, "{}: {}", n.context, n.reason).unwrap();
    }
    out
}

fn render_db(out: &mut String, db: &Database) {
    for def in db.schema.classes() {
        let parent = def
            .parent
            .as_ref()
            .map(|p| format!(" isa {p}"))
            .unwrap_or_default();
        let virt = if def.virtual_class { " (virtual)" } else { "" };
        writeln!(out, "class {}{parent}{virt}", def.name).unwrap();
        for a in &def.attrs {
            writeln!(out, "  {} : {}", a.name, a.ty).unwrap();
        }
    }
    for obj in db.objects() {
        write!(out, "object {} : {} {{", obj.id, obj.class).unwrap();
        for (i, (attr, v)) in obj.attrs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            write!(out, "{attr} = {v}").unwrap();
        }
        writeln!(out, "}}").unwrap();
    }
}

fn check(name: &str, rendered: &str) {
    let path = format!("{}/tests/snapshots/{name}.txt", env!("CARGO_MANIFEST_DIR"));
    if std::env::var("UPDATE_SNAPSHOTS").is_ok() {
        std::fs::create_dir_all(format!("{}/tests/snapshots", env!("CARGO_MANIFEST_DIR"))).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing snapshot {path}: {e}; run with UPDATE_SNAPSHOTS=1"));
    assert!(
        expected == rendered,
        "conform output diverged from pinned snapshot {path}.\n\
         --- expected ---\n{expected}\n--- actual ---\n{rendered}\n\
         If the change is intended, regenerate with UPDATE_SNAPSHOTS=1 and review."
    );
}

#[test]
fn paper_fixture_conform_output_pinned() {
    let fx = fixtures::paper_fixture();
    let conf = conform(
        &fx.local_db,
        &fx.local_catalog,
        &fx.remote_db,
        &fx.remote_catalog,
        &fx.spec,
    )
    .expect("paper fixture conforms");
    check("conform_paper", &render(&conf));
}

#[test]
fn empty_extents_conform_output_pinned() {
    // Figure-1 schemas with no objects: pins the schema/catalog/spec
    // rewriting independently of any data.
    let fx = fixtures::paper_fixture_empty();
    let conf = conform(
        &fx.local_db,
        &fx.local_catalog,
        &fx.remote_db,
        &fx.remote_catalog,
        &fx.spec,
    )
    .expect("empty paper fixture conforms");
    check("conform_paper_empty", &render(&conf));
}

#[test]
fn value_view_conform_output_pinned() {
    // The §4 value-view variant (no objectification; descriptivity handled
    // by hiding) exercises the other half of the conform phase.
    let fx = fixtures::paper_fixture();
    let mut spec = fx.spec.clone();
    spec.object_view = false;
    let conf = conform(
        &fx.local_db,
        &fx.local_catalog,
        &fx.remote_db,
        &fx.remote_catalog,
        &spec,
    )
    .expect("value view conforms");
    check("conform_paper_value_view", &render(&conf));
}
