//! Concurrency × incremental pipeline: worker threads commit through a
//! shared [`MvccStore`] while the main thread repeatedly folds the
//! store's touched-id log into a live [`IncrementalPipeline`] via
//! `sync_shared_local` — each drain is atomic with the snapshot it is
//! consistent with, so syncing *during* commits must never tear. After
//! the workers join, one final sync must land the view exactly on a
//! from-scratch conform → merge rebuild of the final databases.

use db_interop::conform::conform;
use db_interop::core::IncrementalPipeline;
use db_interop::merge::{merge, MergeOptions};
use db_interop::model::{Database, Value};
use db_interop::storage::{MvccStore, Store};
use interop_bench::{synthetic_fixture, SyntheticConfig};

#[test]
fn concurrent_commits_sync_into_the_incremental_pipeline() {
    let fx = synthetic_fixture(SyntheticConfig {
        local_n: 12,
        remote_n: 12,
        match_ratio: 0.5,
        constraints_per_side: 2,
        seed: 7,
    });
    let opts = MergeOptions::default();
    let scratch_view = |local: &Database, remote: &Database| -> String {
        let conf = conform(
            local,
            &fx.local_catalog,
            remote,
            &fx.remote_catalog,
            &fx.spec,
        )
        .expect("conforms");
        format!("{:?}", merge(&conf, &opts).expect("merges"))
    };

    let local = MvccStore::new(Store::new(fx.local_db.clone(), fx.local_catalog.clone()));
    local.track_touched(true);
    let remote = MvccStore::new(Store::new(fx.remote_db.clone(), fx.remote_catalog.clone()));
    remote.track_touched(true);

    let mut pipe = IncrementalPipeline::new(
        &fx.local_db,
        &fx.local_catalog,
        &fx.remote_db,
        &fx.remote_catalog,
        &fx.spec,
        opts.clone(),
    )
    .expect("pipeline seeds");

    let local_ids: Vec<_> = fx.local_db.objects().map(|o| o.id).collect();
    let remote_ids: Vec<_> = fx.remote_db.objects().map(|o| o.id).collect();

    std::thread::scope(|s| {
        for th in 0..3usize {
            let local = local.clone();
            let local_ids = local_ids.clone();
            s.spawn(move || {
                for n in 0..4usize {
                    let mut t = local.begin();
                    let id = local_ids[(th * 5 + n * 3) % local_ids.len()];
                    // In-range mutations; refused commits (conflicts)
                    // are fine — the pipeline only sees committed ids.
                    let _ = t.update(id, "price", Value::real((th * 10 + n) as f64 + 1.0));
                    let _ = t.update(id, "score", Value::int((n as i64 % 5) + 1));
                    if n == 2 {
                        let _ = t.create(
                            "LProd",
                            vec![
                                ("key", Value::str(format!("conc-{th}-{n}"))),
                                ("price", Value::real(9.0)),
                                ("score", Value::int(3)),
                                ("grade", Value::int(1)),
                            ],
                        );
                    }
                    let _ = t.commit();
                }
            });
        }
        // Race the drains against the commits: every mid-run sync sees
        // an atomic (snapshot, touched) pair, so the patched view must
        // keep its internal invariants at every point.
        for _ in 0..5 {
            pipe.sync_shared_local(&local).expect("mid-run sync");
            pipe.check_invariants()
                .expect("patched view stays consistent");
            std::thread::yield_now();
        }
    });

    // One remote-side commit exercises the other entry point.
    let mut rt = remote.begin();
    rt.update(remote_ids[0], "price", Value::real(55.0))
        .expect("in-range remote update");
    rt.commit().expect("uncontended remote commit");
    pipe.sync_shared_remote(&remote).expect("remote sync");

    // Final catch-up: the maintained view equals a scratch rebuild of
    // the final published databases.
    pipe.sync_shared_local(&local).expect("final sync");
    pipe.check_invariants().expect("final view consistent");
    let lview = local.read_view();
    let rview = remote.read_view();
    assert_eq!(
        format!("{:?}", pipe.view()),
        scratch_view(lview.db(), rview.db()),
        "incrementally synced view ≡ scratch conform → merge rebuild"
    );

    // And a second drain is empty: nothing committed since.
    let (_, touched) = local.drain_touched();
    assert_eq!(touched, Vec::new(), "log fully drained");
}
