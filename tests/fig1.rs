//! Experiment F1 — Figure 1: the two schemas and all 13 constraints.
//!
//! Parses the paper's CSLibrary and Bookseller specifications from the TM
//! dialect, verifies every constraint is present and classified into the
//! paper's object/class/database categories, and round-trips through the
//! pretty-printer.

use db_interop::constraint::classify::{classify_db, ConstraintKind};
use db_interop::core::fixtures::{BOOKSELLER_TM, CSLIBRARY_TM, PAPER_SPEC};
use db_interop::lang::{parse_database, parse_spec, print_database};
use db_interop::model::ClassName;

#[test]
fn cslibrary_parses_with_expected_shape() {
    let db = parse_database(CSLIBRARY_TM).expect("CSLibrary parses");
    assert_eq!(db.schema.db.as_str(), "CSLibrary");
    assert_eq!(db.schema.len(), 5);
    // Figure 1 constraint inventory, left column.
    let publication = ClassName::new("Publication");
    assert_eq!(db.catalog.object_on(&publication).len(), 2);
    assert_eq!(db.catalog.class_on(&publication).len(), 2);
    assert!(db.catalog.class_on(&publication)[0].is_key());
    assert_eq!(
        db.catalog.object_on(&ClassName::new("RefereedPubl"))[0]
            .formula
            .to_string(),
        "rating >= 2"
    );
    assert_eq!(
        db.catalog.object_on(&ClassName::new("NonRefereedPubl"))[0]
            .formula
            .to_string(),
        "rating <= 3"
    );
    assert_eq!(db.catalog.len(), 7);
}

#[test]
fn bookseller_parses_with_expected_shape() {
    let db = parse_database(BOOKSELLER_TM).expect("Bookseller parses");
    assert_eq!(db.schema.len(), 4);
    let proceedings = ClassName::new("Proceedings");
    let ocs = db.catalog.object_on(&proceedings);
    assert_eq!(ocs.len(), 3);
    assert_eq!(
        ocs[0].formula.to_string(),
        "publisher.name = 'IEEE' implies ref? = true"
    );
    assert_eq!(
        ocs[1].formula.to_string(),
        "ref? = true implies rating >= 7"
    );
    assert_eq!(
        ocs[2].formula.to_string(),
        "publisher.name = 'ACM' implies rating >= 6"
    );
    // dbl: forall p in Publisher exists i in Item | i.publisher = p
    assert_eq!(db.catalog.database_constraints().len(), 1);
    assert_eq!(
        classify_db(&db.catalog.database_constraints()[0]),
        ConstraintKind::Database
    );
    assert_eq!(db.catalog.len(), 6);
}

#[test]
fn print_parse_round_trip_both_databases() {
    for src in [CSLIBRARY_TM, BOOKSELLER_TM] {
        let first = parse_database(src).unwrap();
        let printed = print_database(&first);
        let second = parse_database(&printed).unwrap();
        assert_eq!(first.schema, second.schema);
        assert_eq!(first.catalog.len(), second.catalog.len());
        assert_eq!(print_database(&first), print_database(&second));
    }
}

#[test]
fn paper_spec_parses_with_five_rules_and_five_propeqs() {
    let local = parse_database(CSLIBRARY_TM).unwrap();
    let remote = parse_database(BOOKSELLER_TM).unwrap();
    let spec = parse_spec(PAPER_SPEC, &local.schema, &remote.schema).unwrap();
    assert_eq!(spec.rules.len(), 5);
    assert_eq!(spec.propeqs.len(), 5);
    assert_eq!(spec.equality_rules().count(), 1);
    assert_eq!(spec.similarity_rules().count(), 3);
    assert_eq!(spec.descriptivity_rules().count(), 1);
}

#[test]
fn range_types_match_figure1() {
    use db_interop::model::{AttrName, Type};
    let local = parse_database(CSLIBRARY_TM).unwrap();
    let remote = parse_database(BOOKSELLER_TM).unwrap();
    let (_, l) = local
        .schema
        .resolve_attr(&ClassName::new("ScientificPubl"), &AttrName::new("rating"))
        .unwrap();
    assert_eq!(l.ty, Type::Range(1, 5));
    let (_, r) = remote
        .schema
        .resolve_attr(&ClassName::new("Proceedings"), &AttrName::new("rating"))
        .unwrap();
    assert_eq!(r.ty, Type::Range(1, 10));
}
