//! Pipeline-level incremental-vs-scratch property suite: random source
//! mutation sequences — inserts, updates, deletes, **null flips on the
//! propeq-covered attributes the store's composite index also covers**,
//! failed ops, and multi-op transactions that roll back — are driven
//! through [`Store`]s wrapping both source databases. After every step
//! the store's touched-id log feeds
//! [`db_interop::core::IncrementalPipeline`], and the patched view must
//! equal a from-scratch conform → merge rebuild **byte-for-byte**
//! (`Debug` rendering), with the patched counters re-counted against the
//! view (non-negativity and no drift) and the inferred hierarchy still
//! acyclic after every patch.
//!
//! The local store additionally keeps an admitted composite index over
//! the `(grade, price)` pair hot, so the random null flips exercise the
//! composite delta path while the pipeline consumes the same mutations.

use db_interop::constraint::{CmpOp, Formula};
use db_interop::core::IncrementalPipeline;
use db_interop::merge::{merge, MergeOptions};
use db_interop::model::{ObjectId, Value};
use db_interop::storage::{CompositePolicy, Optimizer, Store, Transaction};
use interop_bench::{synthetic_fixture, SyntheticConfig};
use proptest::prelude::*;

/// One random source mutation. Values are raw generator output; `apply`
/// maps them onto the live object population.
#[derive(Clone, Debug)]
enum Op {
    /// Insert a fresh object (`side` false = local LProd, true = RProd).
    Insert { side: bool, price: i64 },
    /// Update `price` — negative values violate the enforced
    /// `price >= 0` constraint and must fail without a trace.
    UpdatePrice { side: bool, target: u8, price: i64 },
    /// Null-flip `grade` or `price` (both propeq-governed, and the pair
    /// the local store's composite index covers).
    NullFlip { side: bool, target: u8, grade: bool },
    /// Remove an object.
    Delete { side: bool, target: u8 },
    /// A two-update transaction whose second update violates the price
    /// bound: applies, then undoes through the same mutators — the
    /// touched log records the id, the net source state is unchanged.
    RollbackTxn { side: bool, target: u8, good: i64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<bool>(), 1i64..50).prop_map(|(side, price)| Op::Insert { side, price }),
        (any::<bool>(), 0u8..24, -10i64..50).prop_map(|(side, target, price)| Op::UpdatePrice {
            side,
            target,
            price
        }),
        (any::<bool>(), 0u8..24, any::<bool>()).prop_map(|(side, target, grade)| Op::NullFlip {
            side,
            target,
            grade
        }),
        (any::<bool>(), 0u8..24).prop_map(|(side, target)| Op::Delete { side, target }),
        (any::<bool>(), 0u8..24, 1i64..50).prop_map(|(side, target, good)| Op::RollbackTxn {
            side,
            target,
            good
        }),
    ]
}

/// Applies `op` to the picked store; every mutation outcome (success,
/// constraint violation, rollback) is acceptable — the differential
/// check below only cares that the pipeline tracks whatever happened.
fn apply(op: &Op, lstore: &mut Store, rstore: &mut Store, fresh: &mut u64) {
    let (store, class) = if matches!(
        op,
        Op::Insert { side: false, .. }
            | Op::UpdatePrice { side: false, .. }
            | Op::NullFlip { side: false, .. }
            | Op::Delete { side: false, .. }
            | Op::RollbackTxn { side: false, .. }
    ) {
        (lstore, "LProd")
    } else {
        (rstore, "RProd")
    };
    let ids: Vec<ObjectId> = store.db().objects().map(|o| o.id).collect();
    let pick = |t: u8| -> Option<ObjectId> {
        if ids.is_empty() {
            None
        } else {
            Some(ids[t as usize % ids.len()])
        }
    };
    match op {
        Op::Insert { price, .. } => {
            *fresh += 1;
            let _ = store.create(
                class,
                vec![
                    ("key", Value::str(format!("fresh-{fresh}"))),
                    ("price", Value::real(*price as f64)),
                    ("score", Value::int(4)),
                    ("grade", Value::int(7)),
                ],
            );
        }
        Op::UpdatePrice { target, price, .. } => {
            if let Some(id) = pick(*target) {
                let _ = store.update(id, "price", Value::real(*price as f64));
            }
        }
        Op::NullFlip { target, grade, .. } => {
            if let Some(id) = pick(*target) {
                let attr = if *grade { "grade" } else { "price" };
                let _ = store.update(id, attr, Value::Null);
            }
        }
        Op::Delete { target, .. } => {
            if let Some(id) = pick(*target) {
                let _ = store.remove(id);
            }
        }
        Op::RollbackTxn { target, good, .. } => {
            if let Some(id) = pick(*target) {
                let txn = Transaction::new()
                    .update(id, "price", Value::real(*good as f64))
                    .update(id, "price", Value::real(-1.0));
                let _ = txn.commit(store);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn incremental_pipeline_tracks_scratch_rebuild(
        seed in 0u64..1_000,
        ops in prop::collection::vec(arb_op(), 1..16),
    ) {
        let fx = synthetic_fixture(SyntheticConfig {
            local_n: 10,
            remote_n: 10,
            match_ratio: 0.5,
            constraints_per_side: 2,
            seed,
        });
        let mut lstore = Store::new(fx.local_db.clone(), fx.local_catalog.clone());
        let mut rstore = Store::new(fx.remote_db.clone(), fx.remote_catalog.clone());
        lstore.track_touched(true);
        rstore.track_touched(true);
        // Admit and materialise the (grade, price) composite on the
        // local store so the null flips below hit its delta path.
        lstore.set_composite_policy(CompositePolicy {
            admit_after: 1,
            min_gain: 0.0,
            evict_after: u32::MAX,
        });
        let pair = Formula::cmp("grade", CmpOp::Eq, 7i64)
            .and(Formula::cmp("price", CmpOp::Eq, 3.0));
        for _ in 0..2 {
            let opt = Optimizer::new(&lstore, "LProd", vec![]);
            let _ = opt.execute(&lstore, &pair).expect("warm-up plans");
        }

        let opts = MergeOptions::default();
        let mut pipe = IncrementalPipeline::new(
            lstore.db(),
            &fx.local_catalog,
            rstore.db(),
            &fx.remote_catalog,
            &fx.spec,
            opts.clone(),
        )
        .expect("pipeline seeds");

        let mut fresh = 0u64;
        for op in &ops {
            let local = matches!(
                op,
                Op::Insert { side: false, .. }
                    | Op::UpdatePrice { side: false, .. }
                    | Op::NullFlip { side: false, .. }
                    | Op::Delete { side: false, .. }
                    | Op::RollbackTxn { side: false, .. }
            );
            apply(op, &mut lstore, &mut rstore, &mut fresh);
            let (store, touched) = if local {
                let t = lstore.take_touched();
                (&lstore, t)
            } else {
                let t = rstore.take_touched();
                (&rstore, t)
            };
            if local {
                pipe.apply_local(store.db(), &touched).expect("patch applies");
            } else {
                pipe.apply_remote(store.db(), &touched).expect("patch applies");
            }

            // Differential oracle: the patched view equals a full
            // conform → merge rebuild on the mutated sources.
            let conf = db_interop::conform::conform(
                lstore.db(),
                &fx.local_catalog,
                rstore.db(),
                &fx.remote_catalog,
                &fx.spec,
            )
            .expect("scratch conforms");
            let want = merge(&conf, &opts).expect("scratch merges");
            prop_assert_eq!(
                format!("{:?}", pipe.view()),
                format!("{want:?}"),
                "incremental view diverged from scratch after {:?}",
                op
            );
            // Counter and DAG invariants hold after every patch.
            if let Err(e) = pipe.check_invariants() {
                return Err(TestCaseError::fail(format!("invariant broken after {op:?}: {e}")));
            }
            // The maintained composite stays in lockstep with a scan.
            let opt = Optimizer::new(&lstore, "LProd", vec![]);
            let (mut hits, _) = opt.execute(&lstore, &pair).expect("probe plans");
            hits.sort_unstable();
            let mut oracle: Vec<ObjectId> = lstore
                .db()
                .objects()
                .filter(|o| {
                    o.class.as_str() == "LProd"
                        && o.attrs.get(&"grade".into()) == Some(&Value::int(7))
                        && o.attrs.get(&"price".into()) == Some(&Value::real(3.0))
                })
                .map(|o| o.id)
                .collect();
            oracle.sort_unstable();
            prop_assert_eq!(hits, oracle, "composite diverged after {:?}", op);
        }
    }
}
