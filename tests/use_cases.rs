//! End-to-end tests of the paper's two motivating use-cases (§1), wiring
//! the derivation engine's output into the storage substrate:
//!
//! * query optimisation — a subquery contradicting a *derived global
//!   constraint* is answered empty without scanning;
//! * update validation — a doomed subtransaction is rejected before
//!   submission.

use db_interop::constraint::{CmpOp, Formula};
use db_interop::core::fixtures;
use db_interop::core::{Integrator, IntegratorOptions};
use db_interop::model::{ClassName, Value};
use db_interop::storage::{OptimizeOutcome, Optimizer, Store, Transaction};

/// Builds a store over the *conformed remote* database so that derived
/// global constraints (phrased in conformed terms) apply directly.
fn conformed_remote_store(outcome: &db_interop::core::IntegrationOutcome) -> Store {
    Store::new(
        outcome.conformed.remote.db.clone(),
        outcome.conformed.remote.catalog.clone(),
    )
}

fn paper_outcome() -> db_interop::core::IntegrationOutcome {
    let fx = fixtures::paper_fixture();
    Integrator::new(
        fx.local_db,
        fx.local_catalog,
        fx.remote_db,
        fx.remote_catalog,
        fx.spec,
    )
    .with_options(IntegratorOptions {
        merge: fixtures::merge_options(),
        ..Default::default()
    })
    .run()
    .unwrap()
}

#[test]
fn derived_constraints_prune_contradictory_subqueries() {
    let outcome = paper_outcome();
    let store = conformed_remote_store(&outcome);
    // Global constraints valid for all Proceedings (pass-through
    // objective ones).
    let constraints: Vec<Formula> = outcome
        .global
        .formulas_for_class(&ClassName::new("Proceedings"))
        .into_iter()
        .cloned()
        .collect();
    assert!(!constraints.is_empty(), "objective pass-throughs exist");
    let opt = Optimizer::new(&store, "Proceedings", constraints);
    // oc1: publisher.name='IEEE' implies ref?=true holds globally; a
    // subquery asking for IEEE non-refereed proceedings contradicts it.
    let doomed = Formula::cmp("publisher.name", CmpOp::Eq, "IEEE").and(Formula::cmp(
        "ref?",
        CmpOp::Eq,
        false,
    ));
    let (hits, how) = opt.execute(&store, &doomed).unwrap();
    assert_eq!(how, OptimizeOutcome::PrunedEmpty);
    assert!(hits.is_empty());
    // A satisfiable query is still answered — the planner serves the
    // equality through a lazily built hash posting list.
    let ok = Formula::cmp("ref?", CmpOp::Eq, true);
    let (hits, how) = opt.execute(&store, &ok).unwrap();
    assert_eq!(how, OptimizeOutcome::IndexScan);
    assert_eq!(hits.len(), 2);
}

#[test]
fn type_bounds_alone_prune_impossible_ratings() {
    let outcome = paper_outcome();
    let store = conformed_remote_store(&outcome);
    let opt = Optimizer::new(&store, "Proceedings", vec![]);
    let (hits, how) = opt
        .execute(&store, &Formula::cmp("rating", CmpOp::Gt, 10i64))
        .unwrap();
    assert_eq!(how, OptimizeOutcome::PrunedEmpty);
    assert!(hits.is_empty());
}

#[test]
fn doomed_subtransactions_rejected_before_submit() {
    let outcome = paper_outcome();
    let store = conformed_remote_store(&outcome);
    // A refereed proceedings with rating 3 violates oc2 — prevalidation
    // rejects it without touching the store.
    let id = store
        .db()
        .extension(&ClassName::new("Proceedings"))
        .into_iter()
        .find(|&i| store.db().object(i).unwrap().get(&"ref?".into()) == &Value::Bool(true))
        .unwrap();
    let txn = Transaction::new().update(id, "rating", Value::Int(3));
    let (at, err) = txn.prevalidate(&store).unwrap_err();
    assert_eq!(at, 0);
    assert!(matches!(
        err,
        db_interop::storage::StoreError::ObjectConstraintViolated { .. }
    ));
    // The store is untouched.
    assert_ne!(
        store.db().object(id).unwrap().get(&"rating".into()),
        &Value::Int(3)
    );
}

#[test]
fn valid_subtransactions_pass_prevalidation_and_commit() {
    let outcome = paper_outcome();
    let mut store = conformed_remote_store(&outcome);
    let id = store
        .db()
        .extension(&ClassName::new("Proceedings"))
        .into_iter()
        .find(|&i| store.db().object(i).unwrap().get(&"ref?".into()) == &Value::Bool(true))
        .unwrap();
    let txn = Transaction::new().update(id, "rating", Value::Int(9));
    assert!(txn.prevalidate(&store).is_ok());
    match txn.commit(&mut store) {
        db_interop::storage::TxnOutcome::Committed { applied } => assert_eq!(applied, 1),
        other => panic!("expected commit: {other:?}"),
    }
    assert_eq!(
        store.db().object(id).unwrap().get(&"rating".into()),
        &Value::Int(9)
    );
}

#[test]
fn merged_scope_constraints_prune_on_the_integrated_view() {
    // The intro example's derived {12,17,22}: a global query for merged
    // employees with trav_reimb = 15 must be empty — provable without
    // touching data.
    let fx = fixtures::personnel_fixture();
    let outcome = Integrator::new(
        fx.local_db,
        fx.local_catalog,
        fx.remote_db,
        fx.remote_catalog,
        fx.spec,
    )
    .run()
    .unwrap();
    let merged_constraints: Vec<Formula> = outcome
        .global
        .object
        .iter()
        .filter(|d| matches!(d.scope, db_interop::core::derive::Scope::Merged(_, _)))
        .map(|d| d.formula.clone())
        .collect();
    assert!(!merged_constraints.is_empty());
    // Set up a store shaped like the merged view (conformed local schema).
    let store = Store::new(
        outcome.conformed.local.db.clone(),
        db_interop::constraint::Catalog::new(),
    );
    let opt = Optimizer::new(&store, "Employee", merged_constraints);
    let (_, how) = opt
        .execute(&store, &Formula::cmp("trav_reimb", CmpOp::Eq, 15i64))
        .unwrap();
    assert_eq!(how, OptimizeOutcome::PrunedEmpty);
    // 17 is a legal fused tariff: not prunable, answered via the
    // equality index.
    let (_, how) = opt
        .execute(&store, &Formula::cmp("trav_reimb", CmpOp::Eq, 17i64))
        .unwrap();
    assert_eq!(how, OptimizeOutcome::IndexScan);
}

#[test]
fn empty_databases_integrate_cleanly() {
    let fx = fixtures::paper_fixture_empty();
    let outcome = Integrator::new(
        fx.local_db,
        fx.local_catalog,
        fx.remote_db,
        fx.remote_catalog,
        fx.spec,
    )
    .with_options(IntegratorOptions {
        merge: fixtures::merge_options(),
        ..Default::default()
    })
    .run()
    .unwrap();
    // Derivation is purely intensional: the same constraints derive with
    // no data at all.
    assert!(outcome
        .global
        .object
        .iter()
        .any(|d| d.formula.to_string() == "publisher.name = 'ACM' implies rating >= 5"));
    assert!(outcome.view.objects.is_empty());
    // And no instance-level conflicts, trivially.
    assert!(!outcome.conflicts.iter().any(|c| matches!(
        c.kind,
        db_interop::core::conflict::ConflictKind::InstanceViolation { .. }
    )));
}

#[test]
fn integration_is_deterministic() {
    let a = paper_outcome();
    let b = paper_outcome();
    assert_eq!(a.global.object.len(), b.global.object.len());
    for (x, y) in a.global.object.iter().zip(&b.global.object) {
        assert_eq!(x.formula, y.formula);
        assert_eq!(x.scope, y.scope);
    }
    assert_eq!(a.conflicts.len(), b.conflicts.len());
    assert_eq!(
        a.view.objects.keys().collect::<Vec<_>>(),
        b.view.objects.keys().collect::<Vec<_>>()
    );
}

#[test]
fn fresh_database_satisfies_derived_constraints_on_load() {
    // Loading the conformed remote data into a store that *also* enforces
    // the derived objective constraints succeeds — deriving constraints
    // never invalidates data that satisfied the component constraints.
    let outcome = paper_outcome();
    let mut catalog = outcome.conformed.remote.catalog.clone();
    for d in &outcome.global.object {
        if let db_interop::core::derive::Scope::All(c) = &d.scope {
            if outcome.conformed.remote.db.schema.class(c).is_some()
                && d.origin == db_interop::core::derive::DerivationOrigin::ObjectivePassThrough
            {
                catalog.add_object(db_interop::constraint::ObjectConstraint::new(
                    d.id.clone(),
                    c.clone(),
                    d.formula.clone(),
                ));
            }
        }
    }
    let store = Store::new(outcome.conformed.remote.db.clone(), catalog);
    assert!(store.check_all().unwrap().is_empty());
}

#[test]
fn materialized_view_is_a_queryable_database() {
    // Figure 2 draws DBint as a database: materialize the integrated
    // view, load it into a store, and query it.
    let outcome = paper_outcome();
    let db = outcome.view.materialize("DBint", 50).expect("materializes");
    assert_eq!(db.len(), outcome.view.objects.len());
    // Every object landed in exactly one (most specific) extent.
    let total: usize = db.schema.class_names().map(|c| db.extent(c).len()).sum();
    assert_eq!(total, db.len());
    // Fused values survived materialisation, and references navigate
    // inside DBint.
    let merged = db
        .objects()
        .find(|o| o.get(&"isbn".into()) == &Value::str("111"))
        .expect("the VLDB proceedings");
    assert_eq!(merged.get(&"rating".into()), &Value::int(7));
    assert_eq!(merged.get(&"libprice".into()), &Value::real(26.0));
    let pubname = db
        .navigate(merged, &["publisher".into(), "name".into()])
        .expect("navigates");
    assert_eq!(pubname, Value::str("ACM"));
    // The materialized database is queryable through the store.
    let class = merged.class.clone();
    let store = Store::new(db, db_interop::constraint::Catalog::new());
    let hits = db_interop::storage::Query::new(class, Formula::cmp("ref?", CmpOp::Eq, true))
        .scan(&store)
        .expect("scans");
    assert!(!hits.is_empty());
}
