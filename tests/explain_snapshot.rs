//! Snapshot regression test for the planner's `EXPLAIN` surface: the
//! rendered [`db_interop::storage::Explain`] output is pinned
//! byte-for-byte on the paper fixtures and on a seeded synthetic store.
//! Pinning the text pins every cost-model decision — strategy choice,
//! per-conjunct classification, cardinality estimates, intersection
//! order, and demotion — so an estimator or ordering change cannot slip
//! through unreviewed.
//!
//! To regenerate after an *intended* planner change, run with
//! `UPDATE_SNAPSHOTS=1` and review the diff.

use db_interop::constraint::{CmpOp, Formula};
use db_interop::core::fixtures;
use db_interop::core::{Integrator, IntegratorOptions};
use db_interop::model::ClassName;
use db_interop::storage::{CompositePolicy, Optimizer, Store};
use interop_bench::synthetic_store;
use std::fmt::Write as _;

fn check(name: &str, rendered: &str) {
    let path = format!("{}/tests/snapshots/{name}.txt", env!("CARGO_MANIFEST_DIR"));
    if std::env::var("UPDATE_SNAPSHOTS").is_ok() {
        std::fs::create_dir_all(format!("{}/tests/snapshots", env!("CARGO_MANIFEST_DIR"))).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing snapshot {path}: {e}; run with UPDATE_SNAPSHOTS=1"));
    assert!(
        expected == rendered,
        "explain output diverged from pinned snapshot {path}.\n\
         --- expected ---\n{expected}\n--- actual ---\n{rendered}\n\
         If the change is intended, regenerate with UPDATE_SNAPSHOTS=1 and review."
    );
}

fn render(out: &mut String, title: &str, opt: &Optimizer, store: &Store, pred: &Formula) {
    writeln!(out, "-- {title} --").unwrap();
    writeln!(out, "predicate: {pred}").unwrap();
    write!(out, "{}", opt.explain(store, pred)).unwrap();
    writeln!(out).unwrap();
}

/// The §1 use-case store: the conformed remote (Bookseller) database
/// with the derived global constraints for `Proceedings`.
#[test]
fn paper_fixture_explain_output_pinned() {
    let fx = fixtures::paper_fixture();
    let outcome = Integrator::new(
        fx.local_db,
        fx.local_catalog,
        fx.remote_db,
        fx.remote_catalog,
        fx.spec,
    )
    .with_options(IntegratorOptions {
        merge: fixtures::merge_options(),
        ..Default::default()
    })
    .run()
    .expect("paper fixture integrates");
    let store = Store::new(
        outcome.conformed.remote.db.clone(),
        outcome.conformed.remote.catalog.clone(),
    );
    let constraints: Vec<Formula> = outcome
        .global
        .formulas_for_class(&ClassName::new("Proceedings"))
        .into_iter()
        .cloned()
        .collect();
    let opt = Optimizer::new(&store, "Proceedings", constraints);

    let mut out = String::new();
    render(
        &mut out,
        "contradicts derived oc1: pruned without a scan",
        &opt,
        &store,
        &Formula::cmp("publisher.name", CmpOp::Eq, "IEEE").and(Formula::cmp(
            "ref?",
            CmpOp::Eq,
            false,
        )),
    );
    render(
        &mut out,
        "type bound alone refutes the rating",
        &opt,
        &store,
        &Formula::cmp("rating", CmpOp::Gt, 10i64),
    );
    render(
        &mut out,
        "satisfiable equality served from a posting list",
        &opt,
        &store,
        &Formula::cmp("ref?", CmpOp::Eq, true),
    );
    render(
        &mut out,
        "conjunction with a residual disequality",
        &opt,
        &store,
        &Formula::cmp("ref?", CmpOp::Eq, true)
            .and(Formula::cmp("rating", CmpOp::Ge, 7i64))
            .and(Formula::cmp("isbn", CmpOp::Ne, "222")),
    );
    render(
        &mut out,
        "multi-segment path stays residual",
        &opt,
        &store,
        &Formula::cmp("publisher.name", CmpOp::Eq, "ACM"),
    );
    check("explain_paper", &out);
}

/// The synthetic 10k-item store the query-optimisation benchmarks use:
/// large enough for selectivity to matter, so ordering, demotion, and
/// the scan fallback all appear.
#[test]
fn synthetic_store_explain_output_pinned() {
    let store = synthetic_store(10_000, 42);
    let opt = Optimizer::new(
        &store,
        "Item",
        vec![Formula::cmp("rating", CmpOp::Ge, 5i64)],
    );

    let mut out = String::new();
    render(
        &mut out,
        "contradicts the derived constraint",
        &opt,
        &store,
        &Formula::cmp("rating", CmpOp::Lt, 5i64),
    );
    render(
        &mut out,
        "unique key probe",
        &opt,
        &store,
        &Formula::cmp("isbn", CmpOp::Eq, "isbn-5000"),
    );
    render(
        &mut out,
        "selective conjunction: equality before range",
        &opt,
        &store,
        &Formula::cmp("price", CmpOp::Le, 30.0).and(Formula::cmp("rating", CmpOp::Eq, 7i64)),
    );
    render(
        &mut out,
        "poor selectivity demotes to a scan",
        &opt,
        &store,
        &Formula::cmp("rating", CmpOp::Ge, 6i64),
    );
    render(
        &mut out,
        "selective range keeps the index",
        &opt,
        &store,
        &Formula::cmp("price", CmpOp::Le, 5.0),
    );
    render(
        &mut out,
        "implied-true conjunct dropped under coverage",
        &opt,
        &store,
        &Formula::cmp("rating", CmpOp::Eq, 9i64).and(Formula::cmp("rating", CmpOp::Ge, 5i64)),
    );
    render(
        &mut out,
        "disjunction stays residual",
        &opt,
        &store,
        &Formula::cmp("rating", CmpOp::Eq, 5i64).or(Formula::cmp("rating", CmpOp::Eq, 10i64)),
    );
    check("explain_synthetic", &out);
}

/// An empty (and then near-empty) class extension: every rendered
/// row-percentage and the `joint = est_a·est_b/N` selectivity math must
/// stay finite — no `NaN%`, no division by zero — and the estimates
/// pin to zero rows rather than garbage. Regression for the
/// empty-extension guards in `pct`/`est_rows`/composite noting.
#[test]
fn empty_extension_explain_output_pinned() {
    use db_interop::constraint::Catalog;
    use db_interop::model::{ClassDef, Database, Schema, Type};
    let schema = Schema::new(
        "Ghostly",
        vec![ClassDef::new("Ghost")
            .attr("name", Type::Str)
            .attr("rating", Type::Int)
            .attr("shelf", Type::Int)],
    )
    .unwrap();
    let mut store = Store::new(Database::new(schema, 1), Catalog::new());
    store.set_composite_policy(CompositePolicy {
        admit_after: 1,
        min_gain: 0.0,
        evict_after: u32::MAX,
    });
    let opt = Optimizer::new(&store, "Ghost", vec![]);
    let eq = Formula::cmp("rating", CmpOp::Eq, 7i64);
    let pair = Formula::cmp("rating", CmpOp::Eq, 7i64).and(Formula::cmp("shelf", CmpOp::Eq, 13i64));

    let mut out = String::new();
    render(
        &mut out,
        "equality over an empty extension",
        &opt,
        &store,
        &eq,
    );
    render(
        &mut out,
        "conjunct pair over an empty extension (joint estimate floored)",
        &opt,
        &store,
        &pair,
    );
    // Near-empty: a single object — percentages render against N = 1
    // and the joint estimate divides by the real extension size.
    store
        .create(
            "Ghost",
            vec![
                ("name", "only".into()),
                ("rating", 7i64.into()),
                ("shelf", 13i64.into()),
            ],
        )
        .unwrap();
    render(
        &mut out,
        "conjunct pair over a one-object extension",
        &opt,
        &store,
        &pair,
    );
    check("explain_empty", &out);
}

/// A duplicate-heavy minimum degenerates the histogram's first bucket
/// to a single point: `x < min` must estimate **zero** rows (the range
/// is provably empty), while `x <= min` still counts the whole point
/// bucket. Regression for the `est_range` floor that used to report
/// such ranges as ≥ 1 row.
#[test]
fn point_bucket_range_explain_output_pinned() {
    use db_interop::constraint::Catalog;
    use db_interop::model::{ClassDef, Database, Schema, Type};
    let schema = Schema::new(
        "Dup",
        vec![ClassDef::new("Dup")
            .attr("name", Type::Str)
            .attr("x", Type::Int)],
    )
    .unwrap();
    let mut store = Store::new(Database::new(schema, 1), Catalog::new());
    for (i, x) in [0i64, 0, 0, 0, 5, 9].iter().enumerate() {
        store
            .create(
                "Dup",
                vec![
                    ("name", format!("d{i}").as_str().into()),
                    ("x", (*x).into()),
                ],
            )
            .unwrap();
    }
    let opt = Optimizer::new(&store, "Dup", vec![]);

    let mut out = String::new();
    render(
        &mut out,
        "x < min over a duplicate-heavy minimum: provably empty",
        &opt,
        &store,
        &Formula::cmp("x", CmpOp::Lt, 0i64),
    );
    render(
        &mut out,
        "x <= min still counts the whole point bucket",
        &opt,
        &store,
        &Formula::cmp("x", CmpOp::Le, 0i64),
    );
    render(
        &mut out,
        "x > max is provably empty",
        &opt,
        &store,
        &Formula::cmp("x", CmpOp::Gt, 9i64),
    );
    check("explain_point_bucket", &out);
}

/// Composite admission on the 10k synthetic store: the recurring
/// `rating = r ∧ shelf = s` pair is planned as a two-way intersection
/// until the admission threshold, then as one composite lookup — the
/// pinned lines fix the admitted pair, the joint estimate, and the
/// replaced intersection byte-for-byte. A pair failing the gain gate
/// must keep intersecting forever.
#[test]
fn synthetic_store_composite_explain_output_pinned() {
    let mut store = synthetic_store(10_000, 42);
    store.set_composite_policy(CompositePolicy {
        admit_after: 2,
        min_gain: 2.0,
        evict_after: u32::MAX,
    });
    let opt = Optimizer::new(
        &store,
        "Item",
        vec![Formula::cmp("rating", CmpOp::Ge, 5i64)],
    );
    let pair = Formula::cmp("rating", CmpOp::Eq, 7i64)
        .and(Formula::cmp("shelf", CmpOp::Eq, 13i64))
        .and(Formula::cmp("isbn", CmpOp::Ne, "isbn-3"));

    let mut out = String::new();
    render(
        &mut out,
        "first sighting of the hot pair: two-way intersection",
        &opt,
        &store,
        &pair,
    );
    render(
        &mut out,
        "second sighting crosses the admission threshold: composite lookup",
        &opt,
        &store,
        &pair,
    );
    render(
        &mut out,
        "admitted composite is reused on every later plan",
        &opt,
        &store,
        &pair,
    );
    // price equalities are near-unique (est ≈ 1 row): the joint estimate
    // cannot beat the cheaper atom by the 2× gain factor, so this pair
    // is never even sketched — it keeps intersecting forever.
    let poor_gain =
        Formula::cmp("rating", CmpOp::Eq, 7i64).and(Formula::cmp("price", CmpOp::Eq, 30.5));
    for _ in 0..3 {
        let _ = opt.explain(&store, &poor_gain);
    }
    render(
        &mut out,
        "poor-gain pair keeps the intersection after three sightings",
        &opt,
        &store,
        &poor_gain,
    );
    assert!(out.contains("composite["), "composite strategy must appear");
    check("explain_composite_synthetic", &out);
}

/// Composite admission on the paper fixture's conformed remote store:
/// the `ref? = true ∧ rating = 8` pair over the three-object
/// `Proceedings` extension.
#[test]
fn paper_fixture_composite_explain_output_pinned() {
    let fx = fixtures::paper_fixture();
    let outcome = Integrator::new(
        fx.local_db,
        fx.local_catalog,
        fx.remote_db,
        fx.remote_catalog,
        fx.spec,
    )
    .with_options(IntegratorOptions {
        merge: fixtures::merge_options(),
        ..Default::default()
    })
    .run()
    .expect("paper fixture integrates");
    let mut store = Store::new(
        outcome.conformed.remote.db.clone(),
        outcome.conformed.remote.catalog.clone(),
    );
    store.set_composite_policy(CompositePolicy {
        admit_after: 2,
        min_gain: 1.0,
        evict_after: u32::MAX,
    });
    let constraints: Vec<Formula> = outcome
        .global
        .formulas_for_class(&ClassName::new("Proceedings"))
        .into_iter()
        .cloned()
        .collect();
    let opt = Optimizer::new(&store, "Proceedings", constraints);
    let pair = Formula::cmp("ref?", CmpOp::Eq, true).and(Formula::cmp("rating", CmpOp::Eq, 8i64));

    let mut out = String::new();
    render(
        &mut out,
        "first sighting: intersection of ref? and rating postings",
        &opt,
        &store,
        &pair,
    );
    render(
        &mut out,
        "recurring pair admitted: one composite lookup",
        &opt,
        &store,
        &pair,
    );
    assert!(out.contains("composite["), "composite strategy must appear");
    check("explain_composite_paper", &out);
}
