//! Experiment F3 — Figure 3: the methodology loop. The specification is
//! validated against local constraints; conflicts highlight errors in the
//! specification and suggested corrections repair it.

use db_interop::core::conflict::ConflictKind;
use db_interop::core::fixtures;
use db_interop::core::{Integrator, IntegratorOptions};
use db_interop::spec::RuleId;

fn integrator() -> Integrator {
    let fx = fixtures::paper_fixture();
    Integrator::new(
        fx.local_db,
        fx.local_catalog,
        fx.remote_db,
        fx.remote_catalog,
        fx.spec,
    )
    .with_options(IntegratorOptions {
        merge: fixtures::merge_options(),
        ..Default::default()
    })
}

#[test]
fn one_round_produces_constraints_conflicts_and_suggestions() {
    let outcome = integrator().run().unwrap();
    assert!(!outcome.global.object.is_empty());
    assert!(!outcome.conflicts.is_empty());
    // Every conflict except instance violations has at least one
    // suggested repair.
    for (c, r) in outcome.conflicts.iter().zip(&outcome.repairs) {
        if !matches!(c.kind, ConflictKind::InstanceViolation { .. }) {
            assert!(!r.is_empty(), "no repair for {c}");
        }
    }
}

#[test]
fn repair_loop_converges_on_paper_spec() {
    let mut integ = integrator();
    let outcomes = integ.run_with_repairs(5).unwrap();
    let last = outcomes.last().unwrap();
    // The two latent admission conflicts (r4, r5) are repaired by
    // strengthening the rules; the implicit risks are repaired by
    // demotion. Nothing repairable remains.
    assert!(
        last.conflicts
            .iter()
            .all(|c| matches!(c.kind, ConflictKind::InstanceViolation { .. })),
        "unrepaired conflicts remain: {:?}",
        last.conflicts
    );
    // The loop took more than one round and strengthened r4.
    assert!(outcomes.len() > 1);
    let r4 = integ
        .spec()
        .rules
        .iter()
        .find(|r| r.id == RuleId::new("r4"))
        .unwrap();
    assert!(
        r4.intra_subject.to_string().contains("rating"),
        "r4 must gain a rating condition: {}",
        r4.intra_subject
    );
}

#[test]
fn repaired_spec_keeps_paper_derivations() {
    let mut integ = integrator();
    let outcomes = integ.run_with_repairs(5).unwrap();
    let last = outcomes.last().unwrap();
    // The §5.2.1 ACM derivation survives the repairs.
    assert!(last
        .global
        .object
        .iter()
        .any(|d| d.formula.to_string() == "publisher.name = 'ACM' implies rating >= 5"));
    // And the §3 implied constraint still derives.
    assert!(last
        .implied
        .iter()
        .any(|i| i.formula.to_string() == "rating >= 7"));
}

#[test]
fn report_renders_full_loop_artifacts() {
    let outcome = integrator().run().unwrap();
    let text = db_interop::core::report::render(&outcome);
    for needle in [
        "Property subjectivity",
        "Derived global object constraints",
        "Conflicts",
        "option:",
        "Inferred hierarchy",
    ] {
        assert!(text.contains(needle), "report lacks '{needle}'");
    }
}
