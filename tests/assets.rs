//! The on-disk TM sources under `assets/` stay in sync with the
//! fixtures embedded in `interop-core`, and parse on their own.

use db_interop::core::fixtures::{BOOKSELLER_TM, CSLIBRARY_TM, PAPER_SPEC};
use db_interop::lang::{parse_database, parse_spec};

fn asset(name: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/assets/");
    std::fs::read_to_string(format!("{path}{name}")).expect("asset readable")
}

#[test]
fn assets_match_embedded_fixtures() {
    assert_eq!(asset("cslibrary.tm"), CSLIBRARY_TM);
    assert_eq!(asset("bookseller.tm"), BOOKSELLER_TM);
    assert_eq!(asset("paper_spec.tmspec"), PAPER_SPEC);
}

#[test]
fn assets_parse_standalone() {
    let local = parse_database(&asset("cslibrary.tm")).expect("parses");
    let remote = parse_database(&asset("bookseller.tm")).expect("parses");
    parse_spec(&asset("paper_spec.tmspec"), &local.schema, &remote.schema).expect("parses");
}
