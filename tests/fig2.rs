//! Experiment F2 — Figure 2: conformation and merging of the example
//! extents; the virtual subclass `RefereedProceedings` arises from the
//! partial overlap of `Proceedings` and `RefereedPubl`.

use db_interop::core::fixtures;
use db_interop::merge::merge;
use db_interop::model::{AttrName, ClassName, Value};

fn view() -> db_interop::merge::IntegratedView {
    let fx = fixtures::paper_fixture();
    let conf = db_interop::conform::conform(
        &fx.local_db,
        &fx.local_catalog,
        &fx.remote_db,
        &fx.remote_catalog,
        &fx.spec,
    )
    .unwrap();
    merge(&conf, &fixtures::merge_options()).unwrap()
}

#[test]
fn refereed_proceedings_virtual_subclass_arises() {
    let v = view();
    let inter = v
        .hierarchy
        .intersections
        .iter()
        .find(|i| i.name == ClassName::new("RefereedProceedings"))
        .expect("Figure 2's RefereedProceedings must arise from the extents");
    assert_eq!(
        inter.parents,
        (
            ClassName::new("RefereedPubl"),
            ClassName::new("Proceedings")
        )
    );
    // Two members: the merged VLDB proceedings and the ICDE proceedings
    // admitted by r3.
    assert_eq!(inter.extension.len(), 2);
    assert!(v.hierarchy.is_direct_subclass(
        &ClassName::new("RefereedProceedings"),
        &ClassName::new("Proceedings")
    ));
    assert!(v.hierarchy.is_direct_subclass(
        &ClassName::new("RefereedProceedings"),
        &ClassName::new("RefereedPubl")
    ));
}

#[test]
fn conformation_objectifies_publishers() {
    let v = view();
    // The three bookseller publishers merge with the virtual local
    // publishers created from Publication.publisher values; North-Holland
    // exists only locally.
    let publishers = v.extension(&ClassName::new("VirtPublisher"));
    assert_eq!(publishers.len(), 4);
    let merged = publishers
        .iter()
        .filter(|g| g.local.is_some() && g.remote.is_some())
        .count();
    assert_eq!(merged, 3);
}

#[test]
fn merged_vldb_proceedings_fuses_values() {
    let v = view();
    // Local RefereedPubl 111 (ourprice 26, shopprice 29, rating 3→6) and
    // remote Proceedings 111 (libprice 22, shopprice 25, rating 8) merge:
    // trust(CSLibrary) keeps libprice 26, trust(Bookseller) keeps
    // shopprice 25, avg fuses rating to 7.
    let merged = v
        .objects
        .values()
        .find(|g| {
            g.local.is_some()
                && g.remote.is_some()
                && g.attrs.get(&AttrName::new("isbn")) == Some(&Value::str("111"))
        })
        .expect("isbn 111 merges");
    assert_eq!(v.attr(merged, "libprice"), Value::real(26.0));
    assert_eq!(v.attr(merged, "shopprice"), Value::real(25.0));
    assert_eq!(v.attr(merged, "rating"), Value::int(7));
    // union of editors and authors.
    assert_eq!(
        v.attr(merged, "authors"),
        Value::str_set(["Apers", "Vermeer"])
    );
}

#[test]
fn monograph_merges_with_scientific_publication() {
    let v = view();
    // 'Database Theory' exists as a local ScientificPubl and a remote
    // Monograph with the same isbn: the paper's point that Monograph ends
    // up related to ScientificPubl through object relationships.
    let merged = v
        .objects
        .values()
        .find(|g| g.attrs.get(&AttrName::new("isbn")) == Some(&Value::str("222")))
        .unwrap();
    assert!(merged.local.is_some() && merged.remote.is_some());
    assert!(merged.classes.contains(&ClassName::new("Monograph")));
    assert!(merged.classes.contains(&ClassName::new("ScientificPubl")));
}

#[test]
fn hierarchy_closes_over_both_schemas() {
    let v = view();
    let pubs = v.hierarchy.extension(&ClassName::new("Publication"));
    let items = v.hierarchy.extension(&ClassName::new("Item"));
    // Every merged object is in both hierarchies' roots.
    for g in v.objects.values() {
        if g.local.is_some()
            && g.remote.is_some()
            && g.classes
                .iter()
                .any(|c| c.as_str() != "Publisher" && c.as_str() != "VirtPublisher")
        {
            assert!(pubs.contains(&g.id), "{} not in Publication", g.id);
            assert!(items.contains(&g.id), "{} not in Item", g.id);
        }
    }
}

#[test]
fn similarity_classifies_remote_objects_locally() {
    let v = view();
    // r4: the non-refereed workshop notes land in NonRefereedPubl.
    let non_ref = v.hierarchy.extension(&ClassName::new("NonRefereedPubl"));
    assert_eq!(non_ref.len(), 2); // local 333 + remote 666
                                  // r3: both refereed proceedings land in RefereedPubl.
    let refd = v.hierarchy.extension(&ClassName::new("RefereedPubl"));
    assert_eq!(refd.len(), 3); // local 111 (merged), local 888, remote 555
}

#[test]
fn inferred_hierarchy_is_acyclic_on_paper_fixture() {
    // Invariant: the inferred `isa` edge set is a DAG — equal-extent
    // class pairs must produce a single canonical equivalence edge, never
    // the mutual pair (Kahn-style elimination finds any leftover cycle).
    let v = view();
    let edges = &v.hierarchy.edges;
    let mut alive: std::collections::BTreeSet<&ClassName> =
        edges.iter().flat_map(|(a, b)| [a, b]).collect();
    loop {
        let removable: Vec<&ClassName> = alive
            .iter()
            .filter(|n| {
                edges
                    .iter()
                    .filter(|(sub, _)| sub == **n)
                    .all(|(_, sup)| !alive.contains(sup))
            })
            .copied()
            .collect();
        if removable.is_empty() {
            break;
        }
        for n in removable {
            alive.remove(n);
        }
    }
    assert!(alive.is_empty(), "cycle among classes: {alive:?}");
}
