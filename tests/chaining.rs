//! Chained integration: the integrated view of DB1 and DB2, materialised
//! as a database, serves as the local side of a further integration with
//! a third database — extending the paper's pairwise methodology to
//! n-ary interoperation by iteration.

use db_interop::constraint::{Catalog, ConstraintId, Formula, ObjectConstraint};
use db_interop::core::fixtures;
use db_interop::core::{Integrator, IntegratorOptions};
use db_interop::model::{ClassDef, ClassName, Database, DbName, Schema, Type, Value};
use db_interop::spec::{ComparisonRule, Conversion, Decision, InterCond, PropEq, Side, Spec};

#[test]
fn personnel_view_integrates_with_a_third_department() {
    // Round 1: the paper's intro example.
    let fx = fixtures::personnel_fixture();
    let outcome1 = Integrator::new(
        fx.local_db,
        fx.local_catalog,
        fx.remote_db,
        fx.remote_catalog,
        fx.spec,
    )
    .run()
    .expect("round 1 integrates");
    let dbint = outcome1
        .view
        .materialize("DBint", 60)
        .expect("materializes");
    let merged_class = dbint
        .objects()
        .find(|o| o.get(&"ssn".into()) == &Value::str("100"))
        .expect("merged employee present")
        .class
        .clone();

    // Round 2: a third department's database joins.
    let db3_schema = Schema::new(
        "DB3",
        vec![ClassDef::new("Contractor")
            .attr("ssn", Type::Str)
            .attr("salary", Type::Real)
            .attr("trav_reimb", Type::Int)],
    )
    .expect("schema");
    let mut db3 = Database::new(db3_schema, 3);
    db3.create(
        "Contractor",
        vec![
            ("ssn", "100".into()),
            ("salary", 1100.0.into()),
            ("trav_reimb", 16i64.into()),
        ],
    )
    .expect("contractor");
    let mut cat3 = Catalog::new();
    cat3.add_object(ObjectConstraint::new(
        ConstraintId::new(&DbName::new("DB3"), &ClassName::new("Contractor"), "c1"),
        "Contractor",
        Formula::isin("trav_reimb", [16i64, 26]),
    ));

    let mut spec2 = Spec::new("DBint", "DB3");
    spec2.add_rule(ComparisonRule::equality(
        "r_chain",
        merged_class.clone(),
        "Contractor",
        vec![InterCond::eq("ssn", "ssn")],
    ));
    spec2.add_propeq(PropEq::named_after_remote(
        merged_class.as_str(),
        "trav_reimb",
        "Contractor",
        "trav_reimb",
        Conversion::Id,
        Conversion::Id,
        Decision::Avg,
    ));
    spec2.add_propeq(PropEq::named_after_remote(
        merged_class.as_str(),
        "salary",
        "Contractor",
        "salary",
        Conversion::Id,
        Conversion::Id,
        Decision::Trust(Side::Local),
    ));

    let outcome2 = Integrator::new(dbint, Catalog::new(), db3, cat3, spec2)
        .with_options(IntegratorOptions::default())
        .run()
        .expect("round 2 integrates");
    // The tri-department employee exists and carries a twice-fused tariff:
    // round 1 fused avg(10, 14) = 12; round 2 fuses avg(12, 16) = 14.
    let tri = outcome2
        .view
        .objects
        .values()
        .find(|g| g.local.is_some() && g.remote.is_some())
        .expect("chained merge happened");
    assert_eq!(
        outcome2.view.attr(tri, "trav_reimb"),
        Value::int(14),
        "tariff must fuse across both rounds"
    );
    // The materialised side carries no constraints, so DB3's tariff set
    // cannot tighten a merged-scope constraint (avg against an unbounded
    // integer is unbounded) — correctly, nothing unsound is derived and
    // the instance data never violates what was derived.
    assert!(!outcome2.conflicts.iter().any(|c| matches!(
        c.kind,
        db_interop::core::conflict::ConflictKind::InstanceViolation { .. }
    )));
    // DB3's rule still holds for its own unmerged contractors.
    assert!(outcome2.global.object.iter().any(|d| {
        matches!(&d.scope, db_interop::core::derive::Scope::RemoteOnly(c) if c.as_str() == "Contractor")
    }));
}

#[test]
fn chaining_the_paper_fixture_materializes_cleanly() {
    let fx = fixtures::paper_fixture();
    let outcome = Integrator::new(
        fx.local_db,
        fx.local_catalog,
        fx.remote_db,
        fx.remote_catalog,
        fx.spec,
    )
    .with_options(IntegratorOptions {
        merge: fixtures::merge_options(),
        ..Default::default()
    })
    .run()
    .expect("integrates");
    let dbint = outcome.view.materialize("DBint", 61).expect("materializes");
    // The materialised database is a valid model database: every object
    // typechecks against the inferred schema (insert already enforced it)
    // and navigation works across remapped references.
    assert_eq!(dbint.len(), outcome.view.objects.len());
    for obj in dbint.objects() {
        dbint
            .typecheck(obj)
            .expect("inferred schema admits its own objects");
    }
}
