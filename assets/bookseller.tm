database Bookseller

class Publisher
  attributes
    name : string
    location : string
end Publisher

class Item
  attributes
    title : string
    isbn : string
    publisher : Publisher
    authors : Pstring
    shopprice : real
    libprice : real
  object constraints
    oc1: libprice <= shopprice
  class constraints
    cc1: key isbn
end Item

class Proceedings isa Item
  attributes
    ref? : boolean
    rating : 1..10
  object constraints
    oc1: publisher.name = 'IEEE' implies ref? = true
    oc2: ref? = true implies rating >= 7
    oc3: publisher.name = 'ACM' implies rating >= 6
end Proceedings

class Monograph isa Item
  attributes
    subjects : Pstring
end Monograph

database constraints
  dbl: forall p in Publisher exists i in Item | i.publisher = p
