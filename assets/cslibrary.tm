database CSLibrary

const KNOWNPUBLISHERS = {'ACM', 'IEEE', 'Springer', 'North-Holland'}
const MAX = 10000

class Publication
  attributes
    title : string
    isbn : string
    publisher : string
    shopprice : real
    ourprice : real
  object constraints
    oc1: ourprice <= shopprice
    oc2: publisher in KNOWNPUBLISHERS
  class constraints
    cc1: key isbn
    cc2: (sum (collect x for x in self) over ourprice) < MAX
end Publication

class ScientificPubl isa Publication
  attributes
    editors : Pstring
    rating : 1..5
  class constraints
    cc1: (avg (collect x for x in self) over rating) < 4
end ScientificPubl

class RefereedPubl isa ScientificPubl
  attributes
    avgAccRate : real
  object constraints
    oc1: rating >= 2
end RefereedPubl

class NonRefereedPubl isa ScientificPubl
  attributes
    authAffil : string
  object constraints
    oc1: rating <= 3
end NonRefereedPubl

class ProfessionalPubl isa Publication
  attributes
    authors : Pstring
end ProfessionalPubl
