//! # db-interop
//!
//! Umbrella crate for the reproduction of Vermeer & Apers, *The Role of
//! Integrity Constraints in Database Interoperation* (VLDB 1996).
//!
//! The workspace implements the paper's instance-based
//! database-interoperation methodology end to end:
//!
//! * [`model`] — the object data model (schemas, `isa`, extents);
//! * [`constraint`] — the constraint language, domain algebra, and the
//!   satisfiability/implication solver;
//! * [`spec`] — integration specifications (comparison rules, property
//!   equivalences, conversion and decision functions);
//! * [`lang`] — the TM-dialect front-end (Figure 1 parses verbatim);
//! * [`storage`] — a constraint-enforcing object store with a
//!   cost-based query planner (statistics, `EXPLAIN`), incremental index
//!   maintenance, transaction pre-validation, write-ahead-log
//!   durability, and concurrent MVCC sessions checked by a black-box
//!   serializability oracle;
//! * [`conform`] — the §4 conformation phase;
//! * [`merge`] — the §2.3 merging phase with extent-based hierarchy
//!   inference;
//! * [`analyze`] — static spec analysis: pre-flight diagnostics
//!   (A001–A010) over schemas, catalogs and the spec before any data is
//!   touched;
//! * [`core`] — the paper's contribution: subjectivity analysis, global
//!   constraint derivation, conflict detection and repair (§3, §5).
//!
//! `ARCHITECTURE.md` at the repository root walks the full pipeline
//! phase by phase; each crate's own docs state the invariants it
//! guarantees to the layers above.
//!
//! ## Quickstart
//!
//! ```
//! use db_interop::core::fixtures;
//! use db_interop::core::{Integrator, IntegratorOptions};
//!
//! let fx = fixtures::paper_fixture();
//! let outcome = Integrator::new(
//!     fx.local_db,
//!     fx.local_catalog,
//!     fx.remote_db,
//!     fx.remote_catalog,
//!     fx.spec,
//! )
//! .with_options(IntegratorOptions {
//!     merge: fixtures::merge_options(),
//!     ..Default::default()
//! })
//! .run()
//! .expect("paper fixture integrates");
//! // The paper's §5.2.1 derivation appears among the global constraints:
//! assert!(outcome
//!     .global
//!     .object
//!     .iter()
//!     .any(|d| d.formula.to_string() == "publisher.name = 'ACM' implies rating >= 5"));
//! ```

pub use interop_analyze as analyze;
pub use interop_conform as conform;
pub use interop_constraint as constraint;
pub use interop_core as core;
pub use interop_lang as lang;
pub use interop_merge as merge;
pub use interop_model as model;
pub use interop_spec as spec;
pub use interop_storage as storage;
