//! Vendored offline shim for the subset of the `rand` 0.8 API used by this
//! workspace: `StdRng::seed_from_u64`, `Rng::gen_range` over integer and
//! float ranges, `gen`, and `gen_bool`.
//!
//! The build environment has no crates.io access, so this in-tree crate
//! stands in for the real dependency. The generator is xoshiro256++ seeded
//! via splitmix64 — deterministic for a given seed, which is all the
//! synthetic-workload generators in `interop_bench` require.

use std::ops::{Range, RangeInclusive};

/// Core 64-bit generator state (xoshiro256++).
#[derive(Clone, Debug)]
pub struct CoreRng {
    s: [u64; 4],
}

impl CoreRng {
    pub fn from_seed_u64(seed: u64) -> Self {
        // splitmix64 stream to fill the state, per the xoshiro authors'
        // recommendation.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        CoreRng { s }
    }

    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)` without modulo bias (Lemire's method would be
    /// overkill here; rejection sampling on the top bits is fine).
    pub fn next_below(&mut self, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }
}

/// Sampling from a range, mirroring `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut CoreRng) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut CoreRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                (self.start as $wide).wrapping_add(rng.next_below(span) as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut CoreRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as $wide).wrapping_add(rng.next_below(span + 1) as $wide) as $t
            }
        }
    )*};
}

impl_int_range!(
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut CoreRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample(self, rng: &mut CoreRng) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        // f32 rounding can push start + frac * span up to `end` even for
        // frac < 1; reject those draws to keep the range half-open.
        loop {
            let frac = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
            let v = self.start + frac * (self.end - self.start);
            if v < self.end {
                return v;
            }
        }
    }
}

/// Types producible by `Rng::gen`.
pub trait Standard: Sized {
    fn gen_standard(rng: &mut CoreRng) -> Self;
}

impl Standard for bool {
    fn gen_standard(rng: &mut CoreRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn gen_standard(rng: &mut CoreRng) -> Self {
        rng.next_f64()
    }
}
impl Standard for u64 {
    fn gen_standard(rng: &mut CoreRng) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn gen_standard(rng: &mut CoreRng) -> Self {
        rng.next_u64() as u32
    }
}
impl Standard for i64 {
    fn gen_standard(rng: &mut CoreRng) -> Self {
        rng.next_u64() as i64
    }
}

pub trait Rng {
    fn core(&mut self) -> &mut CoreRng;

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self.core())
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::gen_standard(self.core())
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        self.core().next_f64() < p
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::*;

    /// Deterministic stand-in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng(pub(crate) CoreRng);

    impl Rng for StdRng {
        fn core(&mut self) -> &mut CoreRng {
            &mut self.0
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng(CoreRng::from_seed_u64(seed))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000i64), b.gen_range(0..1000i64));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..8i64);
            assert!((3..8).contains(&v));
            let w = rng.gen_range(5..=10i64);
            assert!((5..=10).contains(&w));
            let f = rng.gen_range(1.0..500.0);
            assert!((1.0..500.0).contains(&f));
        }
    }

    #[test]
    fn seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<i64> = (0..16).map(|_| a.gen_range(0..1_000_000)).collect();
        let vb: Vec<i64> = (0..16).map(|_| b.gen_range(0..1_000_000)).collect();
        assert_ne!(va, vb);
    }
}
