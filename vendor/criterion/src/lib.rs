//! Vendored offline shim for the subset of the `criterion` API used by the
//! benches in `crates/bench` (the build environment has no crates.io access).
//!
//! It is a real, if simple, measurement harness: each benchmark is warmed up,
//! then timed over enough iterations to fill a small per-bench budget, and
//! the median ns/iter is reported on stdout. Environment knobs:
//!
//! * `CRITERION_JSON=<path>` — append one JSON line per benchmark
//!   (`{"bench": ..., "median_ns": ..., "samples": ...}`), used to record
//!   `BENCH_baseline.json`.
//! * `CRITERION_BUDGET_MS` — per-benchmark measurement budget (default 200).

use std::fmt;
use std::fmt::Write as _;
use std::fs::OpenOptions;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// A benchmark label: `BenchmarkId::new("phase", n)` renders as `phase/n`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

pub struct Bencher {
    /// Median ns/iter of the routine, filled in by the iter methods.
    median_ns: f64,
    samples: usize,
    budget: Duration,
}

impl Bencher {
    fn measure<F: FnMut() -> Duration>(&mut self, mut timed_pass: F) {
        // One untimed pass to warm caches and let lazy statics settle.
        let warm = timed_pass();
        // Aim for ~16 samples within the budget, at least 1 iter each.
        let per_sample = self.budget.as_secs_f64() / 16.0;
        let est = warm.as_secs_f64().max(1e-9);
        let iters_per_sample = (per_sample / est).clamp(1.0, 1e7) as u64;
        let deadline = Instant::now() + self.budget;
        let mut samples: Vec<f64> = Vec::new();
        loop {
            let mut total = Duration::ZERO;
            for _ in 0..iters_per_sample {
                total += timed_pass();
            }
            samples.push(total.as_secs_f64() * 1e9 / iters_per_sample as f64);
            if Instant::now() >= deadline || samples.len() >= 64 {
                break;
            }
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        self.median_ns = samples[samples.len() / 2];
        self.samples = samples.len();
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.measure(|| {
            let start = Instant::now();
            black_box(routine());
            start.elapsed()
        });
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.measure(|| {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            start.elapsed()
        });
    }

    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        self.measure(|| {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            start.elapsed()
        });
    }
}

fn budget() -> Duration {
    let ms = std::env::var("CRITERION_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(200);
    Duration::from_millis(ms)
}

fn record(name: &str, median_ns: f64, samples: usize, throughput: Option<Throughput>) {
    let mut line = format!("{name:<60} time: {}", format_ns(median_ns));
    if let Some(Throughput::Elements(n)) = throughput {
        if median_ns > 0.0 {
            let rate = n as f64 / (median_ns * 1e-9);
            let _ = write!(line, "  thrpt: {rate:.0} elem/s");
        }
    }
    println!("{line}");
    if let Ok(path) = std::env::var("CRITERION_JSON") {
        if let Ok(mut f) = OpenOptions::new().create(true).append(true).open(path) {
            let _ = writeln!(
                f,
                "{{\"bench\": \"{}\", \"median_ns\": {:.1}, \"samples\": {}}}",
                name.replace('"', "'"),
                median_ns,
                samples
            );
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            median_ns: 0.0,
            samples: 0,
            budget: budget(),
        };
        f(&mut b);
        record(name, b.median_ns, b.samples, None);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            throughput: None,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        // The shim sizes samples by time budget, not count.
        self
    }

    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            median_ns: 0.0,
            samples: 0,
            budget: budget(),
        };
        f(&mut b);
        record(
            &format!("{}/{}", self.name, id.id),
            b.median_ns,
            b.samples,
            self.throughput,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            median_ns: 0.0,
            samples: 0,
            budget: budget(),
        };
        f(&mut b, input);
        record(
            &format!("{}/{}", self.name, id.id),
            b.median_ns,
            b.samples,
            self.throughput,
        );
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
