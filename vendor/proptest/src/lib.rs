//! Vendored offline shim for the subset of the `proptest` API used by this
//! workspace's property-test suites.
//!
//! The build environment has no crates.io access, so this in-tree crate
//! stands in for the real dependency. It implements the `proptest!` macro,
//! `Strategy` with `prop_map` / `prop_recursive` / `boxed`, ranges and
//! tuples as strategies, regex-lite string strategies (`"[a-z]{0,6}"`),
//! `prop::collection::{vec, btree_set}`, `prop::sample::select`,
//! `prop_oneof!`, `any::<T>()`, and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! # Shrinking — and its limits
//!
//! Integer-range, `vec`, `btree_set` and tuple strategies shrink failing
//! cases by greedy binary search ([`strategy::Strategy::shrink`]
//! proposes candidates largest-jump-first; the runner keeps the first
//! candidate that still fails and iterates to a local minimum). Failures
//! therefore report a *minimal counterexample* instead of just the seed.
//!
//! **Known limitation:** composite strategies built with `prop_map` /
//! `prop_oneof!` (and anything layered on them, such as
//! `prop_recursive` or mapped `sample::select`) do **not** shrink — the
//! mapping is not invertible, so a shrunk pre-image cannot be recovered
//! from a failing mapped value. Their failures still report the
//! generated value and the seed, just not a minimum. The real
//! `proptest` crate shrinks through these combinators by keeping the
//! source value tree; this shim intentionally does not (see the
//! `ROADMAP.md` note on swapping the real crates back in if registry
//! access appears).
//!
//! ## Idiom: keep the failing input shrinkable
//!
//! New suites should generate **tuples of primitives** and apply the
//! mapping *inside the test body*, rather than baking it into the
//! strategy — the tuple shrinks component-wise, and the body re-derives
//! the composite value from each shrunk candidate:
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     # #![proptest_config(ProptestConfig::with_cases(8))]
//!     // In a real suite this fn carries #[test]; the doctest invokes
//!     // it directly instead.
//!     fn shrinkable((len, seed) in (0usize..32, 0u64..100)) {
//!         // Derive the composite inside the body: `(len, seed)` still
//!         // shrinks; a `prop_map`-built Vec<String> would not.
//!         let names: Vec<String> =
//!             (0..len).map(|i| format!("n{}", (seed + i as u64) % 7)).collect();
//!         prop_assert!(names.len() < 40);
//!     }
//! }
//! shrinkable();
//! ```
//!
//! Avoid `prop_filter_map`-style strategies entirely (the shim does not
//! provide them, deliberately): a filter-map is doubly un-shrinkable —
//! not invertible *and* partial. Express the constraint either in the
//! range itself (`1i64..80` instead of filtering `0..100`) or as a
//! `prop_assume!` in the body, which keeps rejection explicit and the
//! input shrinkable. `prop_oneof!` is fine for *enumerating operation
//! kinds* (as the storage invalidation suite does) when each arm's
//! payload is a primitive tuple — the payload still won't shrink, so
//! keep arm payloads small and meaningful.
//!
//! # Determinism
//!
//! Each generated `#[test]` derives its RNG seed from the test name
//! (FNV-1a) unless `PROPTEST_SEED` is set, so runs are reproducible and
//! CI time is stable for a pinned case count.

pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
        /// Upper bound on `prop_assume!` rejections before giving up.
        pub max_global_rejects: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    /// Why a single case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// The case was vacuous (`prop_assume!`); try another input.
        Reject,
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    /// Deterministic generator backing every strategy; a thin wrapper over
    /// the sibling vendored `rand` crate's core generator (real proptest
    /// also builds its `TestRng` on `rand`).
    #[derive(Clone, Debug)]
    pub struct TestRng(rand::CoreRng);

    impl TestRng {
        pub fn from_seed_u64(seed: u64) -> Self {
            TestRng(rand::CoreRng::from_seed_u64(seed))
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }

        /// Uniform in `[0, n)`, bias-free via rejection.
        pub fn below(&mut self, n: u64) -> u64 {
            self.0.next_below(n)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            self.0.next_f64()
        }
    }

    /// Derives a per-test seed: `PROPTEST_SEED` env override, else FNV-1a of
    /// the test path so distinct tests explore distinct streams.
    pub fn seed_for(name: &str) -> u64 {
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(v) = s.parse::<u64>() {
                return v;
            }
        }
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    /// Upper bound on candidate evaluations during one shrink search.
    pub const SHRINK_BUDGET: u32 = 4096;

    /// Greedily minimises a failing input: repeatedly asks the strategy
    /// for shrink candidates (largest jump first) and moves to the first
    /// candidate that still fails, until none fails or the budget runs
    /// out. Returns the minimal failing value, its failure message, and
    /// the number of accepted shrink steps.
    pub fn minimize<S, F>(
        strategy: &S,
        mut cur: S::Value,
        mut msg: String,
        run_one: &mut F,
    ) -> (S::Value, String, u32)
    where
        S: crate::strategy::Strategy,
        S::Value: Clone,
        F: FnMut(&S::Value) -> Result<(), TestCaseError>,
    {
        let mut budget = SHRINK_BUDGET;
        let mut steps = 0u32;
        'search: loop {
            for cand in strategy.shrink(&cur) {
                if budget == 0 {
                    break 'search;
                }
                budget -= 1;
                // A candidate that passes or is rejected by `prop_assume!`
                // is not a counterexample; keep looking.
                if let Err(TestCaseError::Fail(m)) = run_one(&cand) {
                    cur = cand;
                    msg = m;
                    steps += 1;
                    continue 'search;
                }
            }
            break;
        }
        (cur, msg, steps)
    }

    /// Drives one generated `#[test]` through the shrinking runner: the
    /// strategy generates whole cases, failures are minimised via
    /// [`minimize`] before panicking with the minimal counterexample.
    pub fn run_cases_shrinking<S, F>(
        name: &str,
        config: &ProptestConfig,
        strategy: &S,
        mut run_one: F,
    ) where
        S: crate::strategy::Strategy,
        S::Value: Clone + std::fmt::Debug,
        F: FnMut(&S::Value) -> Result<(), TestCaseError>,
    {
        let seed = seed_for(name);
        let mut rng = TestRng::from_seed_u64(seed);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < config.cases {
            let case = strategy.generate(&mut rng);
            match run_one(&case) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected > config.max_global_rejects {
                        panic!(
                            "proptest `{name}`: too many prop_assume! rejections \
                             ({rejected}) after {passed} passing cases \
                             (reproduce with PROPTEST_SEED={seed})"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    let (min, min_msg, steps) = minimize(strategy, case, msg, &mut run_one);
                    panic!(
                        "proptest `{name}` failed after {passed} passing cases: {min_msg}\n\
                         minimal counterexample: {min:?} \
                         (after {steps} shrink steps; reproduce with PROPTEST_SEED={seed})"
                    );
                }
            }
        }
    }

    /// Drives one generated `#[test]`: `run_one` generates inputs from the
    /// strategies and evaluates the body, returning per-case pass/fail/reject.
    /// No shrinking — kept for raw-closure harnesses that manage their own
    /// generation; the `proptest!` macro uses [`run_cases_shrinking`].
    pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut run_one: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let seed = seed_for(name);
        let mut rng = TestRng::from_seed_u64(seed);
        let mut passed = 0u32;
        let mut rejected = 0u32;
        while passed < config.cases {
            match run_one(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected > config.max_global_rejects {
                        panic!(
                            "proptest `{name}`: too many prop_assume! rejections \
                             ({rejected}) after {passed} passing cases \
                             (reproduce with PROPTEST_SEED={seed})"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest `{name}` failed after {passed} passing cases: {msg} \
                         (reproduce with PROPTEST_SEED={seed})"
                    )
                }
            }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A value generator with optional shrinking.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Proposes simpler candidates for a failing `value`, ordered
        /// largest-jump-first so the greedy runner binary-searches toward
        /// the minimum. The default (no candidates) disables shrinking,
        /// which is the right behaviour for non-invertible combinators
        /// like `prop_map`.
        fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
            Vec::new()
        }

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Builds `depth` levels of recursion: at each level the generator
        /// picks between the shallower strategy and `recurse` applied to it.
        /// `_desired_size` / `_expected_branch_size` are accepted for API
        /// compatibility but unused (no shrinking, so no size accounting).
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let mut strat = self.boxed();
            for _ in 0..depth {
                let deeper = recurse(strat.clone()).boxed();
                strat = Union::new(vec![strat, deeper]).boxed();
            }
            strat
        }
    }

    /// Object-safe view of `Strategy`, so strategies can be boxed.
    trait DynStrategy<T> {
        fn generate_dyn(&self, rng: &mut TestRng) -> T;
        fn shrink_dyn(&self, value: &T) -> Vec<T>;
    }

    impl<S: Strategy> DynStrategy<S::Value> for S {
        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
        fn shrink_dyn(&self, value: &S::Value) -> Vec<S::Value> {
            self.shrink(value)
        }
    }

    pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            self.0.shrink_dyn(value)
        }
    }

    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Clone for Union<T> {
        fn clone(&self) -> Self {
            Union {
                options: self.options.clone(),
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Binary-search shrink candidates for an integer `v` with minimum
    /// `start`: `[start, v - d/2, v - d/4, …, v - 1]` (largest jump
    /// first). Each accepted candidate re-enters the search, so the
    /// greedy runner converges to the smallest failing value in
    /// O(log span) accepted steps.
    fn shrink_int(start: i128, v: i128) -> Vec<i128> {
        if v <= start {
            return Vec::new();
        }
        let mut out = vec![start];
        let mut d = (v - start) / 2;
        while d > 0 {
            let cand = v - d;
            if !out.contains(&cand) {
                out.push(cand);
            }
            d /= 2;
        }
        out
    }

    macro_rules! impl_int_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    shrink_int(self.start as i128, *value as i128)
                        .into_iter()
                        .map(|c| c as $t)
                        .collect()
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "cannot sample empty range");
                    let span = (end as i128 - start as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (start as i128 + rng.below(span + 1) as i128) as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    shrink_int(*self.start() as i128, *value as i128)
                        .into_iter()
                        .map(|c| c as $t)
                        .collect()
                }
            }
        )*};
    }

    impl_int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "cannot sample empty range");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
        fn shrink(&self, value: &f64) -> Vec<f64> {
            // Binary search toward the range start, stopping once the
            // remaining distance is negligible at the range's scale.
            let eps = (self.end - self.start) * 1e-9;
            if *value - self.start <= eps {
                return Vec::new();
            }
            let mut out = vec![self.start];
            let mut d = (*value - self.start) / 2.0;
            while d > eps {
                out.push(*value - d);
                d /= 2.0;
            }
            out
        }
    }

    /// `&'static str` patterns act as regex-lite string strategies. Supported
    /// syntax: concatenations of literal characters and `[a-z]`-style classes,
    /// each optionally followed by `{n}`, `{m,n}`, `?`, `*` (≤8), or `+` (≤8).
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            let alphabet: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed character class in pattern {pattern:?}"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        assert!(lo <= hi, "bad range in pattern {pattern:?}");
                        set.extend((lo..=hi).filter_map(char::from_u32));
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else if chars[i] == '\\' && i + 1 < chars.len() {
                i += 2;
                vec![chars[i - 1]]
            } else {
                i += 1;
                vec![chars[i - 1]]
            };
            // Optional repetition suffix.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed repetition in pattern {pattern:?}"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<u64>().expect("bad repetition"),
                        n.trim().parse::<u64>().expect("bad repetition"),
                    ),
                    None => {
                        let n = body.trim().parse::<u64>().expect("bad repetition");
                        (n, n)
                    }
                }
            } else if i < chars.len() && chars[i] == '?' {
                i += 1;
                (0, 1)
            } else if i < chars.len() && chars[i] == '*' {
                i += 1;
                (0, 8)
            } else if i < chars.len() && chars[i] == '+' {
                i += 1;
                (1, 8)
            } else {
                (1, 1)
            };
            let count = lo + rng.below(hi - lo + 1);
            for _ in 0..count {
                let k = rng.below(alphabet.len() as u64) as usize;
                out.push(alphabet[k]);
            }
        }
        out
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+)
            where
                $($s::Value: Clone,)+
            {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    // Component-wise: shrink one position, hold the rest.
                    let mut out = Vec::new();
                    $(
                        for cand in self.$idx.shrink(&value.$idx) {
                            let mut next = value.clone();
                            next.$idx = cand;
                            out.push(next);
                        }
                    )+
                    out
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6)
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7)
    }

    /// Strategy produced by `any::<T>()`.
    pub struct Any<T>(PhantomData<T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    pub trait ArbitraryValue: Sized {
        fn generate_any(rng: &mut TestRng) -> Self;
    }

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::generate_any(rng)
        }
    }

    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }

    impl ArbitraryValue for bool {
        fn generate_any(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    impl ArbitraryValue for f64 {
        fn generate_any(rng: &mut TestRng) -> f64 {
            rng.unit_f64() * 2000.0 - 1000.0
        }
    }
    macro_rules! impl_arbitrary_int {
        ($($t:ty),* $(,)?) => {$(
            impl ArbitraryValue for $t {
                fn generate_any(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Clone> Clone for VecStrategy<S> {
        fn clone(&self) -> Self {
            VecStrategy {
                element: self.element.clone(),
                size: self.size.clone(),
            }
        }
    }

    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let min_len = self.size.start;
            let mut out: Vec<Vec<S::Value>> = Vec::new();
            // 1. Length reductions, biggest first: truncate to the
            //    minimum, then drop each half, then single elements.
            if value.len() > min_len {
                out.push(value[..min_len].to_vec());
                let half = value.len() / 2;
                if half > min_len {
                    out.push(value[..half].to_vec());
                    out.push(value[half..].to_vec());
                }
                for i in 0..value.len().min(32) {
                    let mut v = value.clone();
                    v.remove(i);
                    out.push(v);
                }
            }
            // 2. Element-wise shrinking at the current length.
            for (i, elem) in value.iter().enumerate().take(32) {
                for cand in self.element.shrink(elem).into_iter().take(8) {
                    let mut v = value.clone();
                    v[i] = cand;
                    out.push(v);
                }
            }
            out
        }
    }

    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Clone> Clone for BTreeSetStrategy<S> {
        fn clone(&self) -> Self {
            BTreeSetStrategy {
                element: self.element.clone(),
                size: self.size.clone(),
            }
        }
    }

    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord + Clone,
    {
        type Value = BTreeSet<S::Value>;
        fn shrink(&self, value: &BTreeSet<S::Value>) -> Vec<BTreeSet<S::Value>> {
            let min_len = self.size.start;
            let mut out = Vec::new();
            if value.len() > min_len {
                // Keep only the smallest `min_len` elements, then try
                // removing each element individually.
                out.push(value.iter().take(min_len).cloned().collect());
                for e in value.iter().take(32) {
                    let mut s = value.clone();
                    s.remove(e);
                    out.push(s);
                }
            }
            out
        }
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = self.size.clone().generate(rng);
            let mut out = BTreeSet::new();
            // Duplicates shrink the set below target; retry a bounded number
            // of times so small element domains still terminate.
            let mut attempts = 0;
            while out.len() < target && attempts < 64 + 16 * target {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Uniform choice from a fixed list (`prop::sample::select`).
    #[derive(Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires a non-empty list");
        Select(options)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].clone()
        }
    }
}

pub mod prelude {
    /// Mirrors real proptest's `prelude::prop` (a re-export of the crate
    /// root) so `prop::collection::vec` / `prop::sample::select` resolve.
    pub use crate as prop;
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} (at {}:{})", format!($($fmt)+), file!(), line!()),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__prop_lhs, __prop_rhs) = (&$a, &$b);
        $crate::prop_assert!(
            *__prop_lhs == *__prop_rhs,
            "assertion failed: {} == {}",
            stringify!($a),
            stringify!($b)
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__prop_lhs, __prop_rhs) = (&$a, &$b);
        $crate::prop_assert!(*__prop_lhs == *__prop_rhs, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__prop_lhs, __prop_rhs) = (&$a, &$b);
        $crate::prop_assert!(
            *__prop_lhs != *__prop_rhs,
            "assertion failed: {} != {}",
            stringify!($a),
            stringify!($b)
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__prop_lhs, __prop_rhs) = (&$a, &$b);
        $crate::prop_assert!(*__prop_lhs != *__prop_rhs, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// The `proptest! { ... }` block: expands each `fn name(arg in strategy, ...)`
/// into a zero-argument `#[test]` that generates inputs and runs the body for
/// the configured number of cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($config:expr); $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                // All argument strategies combine into one tuple strategy
                // so a failing case shrinks as a whole (component-wise).
                let __proptest_strategy = ($($strat,)+);
                $crate::test_runner::run_cases_shrinking(
                    concat!(module_path!(), "::", stringify!($name)),
                    &config,
                    &__proptest_strategy,
                    |__proptest_case| {
                        let ($($arg,)+) = ::core::clone::Clone::clone(__proptest_case);
                        let __proptest_result: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                            (|| { $body ::core::result::Result::Ok(()) })();
                        __proptest_result
                    },
                );
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::{run_cases, ProptestConfig, TestCaseError, TestRng};
    use std::cell::Cell;

    #[test]
    fn runs_exactly_the_configured_number_of_cases() {
        let count = Cell::new(0u32);
        run_cases("shim::count", &ProptestConfig::with_cases(37), |_rng| {
            count.set(count.get() + 1);
            Ok(())
        });
        assert_eq!(count.get(), 37);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_propagate_as_panics() {
        run_cases("shim::fail", &ProptestConfig::with_cases(8), |_rng| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    #[should_panic(expected = "too many prop_assume! rejections")]
    fn permanent_rejection_panics_rather_than_passing_vacuously() {
        run_cases("shim::reject", &ProptestConfig::with_cases(4), |_rng| {
            Err(TestCaseError::Reject)
        });
    }

    #[test]
    fn rejected_cases_are_retried_with_fresh_inputs() {
        let seen = Cell::new(0u32);
        run_cases("shim::retry", &ProptestConfig::with_cases(16), |rng| {
            seen.set(seen.get() + 1);
            // Reject roughly half the draws; the runner must still reach
            // 16 passing cases.
            if rng.next_u64() & 1 == 0 {
                return Err(TestCaseError::Reject);
            }
            Ok(())
        });
        assert!(seen.get() >= 16);
    }

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = TestRng::from_seed_u64(1);
        for _ in 0..500 {
            let v = (-50i32..50).generate(&mut rng);
            assert!((-50..50).contains(&v));
            let w = (5u8..=10).generate(&mut rng);
            assert!((5..=10).contains(&w));
        }
    }

    #[test]
    fn string_patterns_generate_matching_strings() {
        let mut rng = TestRng::from_seed_u64(2);
        for _ in 0..200 {
            let s = "[a-c]{1,3}".generate(&mut rng);
            assert!((1..=3).contains(&s.len()), "bad length: {s:?}");
            assert!(
                s.chars().all(|c| ('a'..='c').contains(&c)),
                "bad char: {s:?}"
            );
            let t = "[a-z]{0,6}".generate(&mut rng);
            assert!(t.len() <= 6, "bad length: {t:?}");
            assert!(t.chars().all(|c| c.is_ascii_lowercase()), "bad char: {t:?}");
        }
    }

    #[test]
    fn collections_honor_size_and_uniqueness() {
        let mut rng = TestRng::from_seed_u64(3);
        for _ in 0..100 {
            let v = crate::collection::vec(0i64..10, 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            let s = crate::collection::btree_set(0i64..100, 3..6).generate(&mut rng);
            assert!((3..6).contains(&s.len()));
        }
    }

    #[test]
    fn oneof_covers_every_arm_and_recursive_terminates() {
        #[derive(Clone, Debug, PartialEq)]
        enum T {
            Leaf(i64),
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(_) => 0,
                T::Node(kids) => 1 + kids.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = prop_oneof![(0i64..5).prop_map(T::Leaf), (5i64..10).prop_map(T::Leaf),]
            .prop_recursive(3, 24, 4, |inner| {
                crate::collection::vec(inner, 1..3).prop_map(T::Node)
            });
        let mut rng = TestRng::from_seed_u64(4);
        let mut saw_node = false;
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 3, "recursion exceeded depth bound: {t:?}");
            saw_node |= matches!(t, T::Node(_));
        }
        assert!(saw_node, "recursive arm never chosen");
    }

    #[test]
    fn integer_failure_shrinks_to_exact_boundary() {
        // Property "x < 37" first fails at some random x >= 37; binary
        // search must land on exactly 37 (the minimal counterexample).
        let strategy = 0i64..1000;
        let mut run = |v: &i64| {
            if *v >= 37 {
                Err(TestCaseError::fail(format!("{v} >= 37")))
            } else {
                Ok(())
            }
        };
        let seeded_failure = 612i64; // any failing start converges
        let (min, msg, steps) =
            crate::test_runner::minimize(&strategy, seeded_failure, "seed".into(), &mut run);
        assert_eq!(min, 37, "binary search must find the boundary");
        assert!(msg.contains("37 >= 37"));
        assert!(steps > 0 && steps <= 12, "log-bounded steps, got {steps}");
    }

    #[test]
    fn vec_failure_shrinks_to_minimal_vector() {
        // Property "len < 3" fails on any longer vector; the minimum is a
        // 3-element vector of minimal elements.
        let strategy = crate::collection::vec(0i64..100, 0..10);
        let mut run = |v: &Vec<i64>| {
            if v.len() >= 3 {
                Err(TestCaseError::fail(format!("len {} >= 3", v.len())))
            } else {
                Ok(())
            }
        };
        let (min, _, _) = crate::test_runner::minimize(
            &strategy,
            vec![71, 9, 33, 4, 55, 12, 80],
            "seed".into(),
            &mut run,
        );
        assert_eq!(min, vec![0, 0, 0], "minimal counterexample is [0, 0, 0]");
    }

    #[test]
    fn tuple_components_shrink_independently() {
        let strategy = (0i64..100, 0i64..100);
        let mut run = |&(a, b): &(i64, i64)| {
            if a + b >= 10 {
                Err(TestCaseError::fail("sum too big"))
            } else {
                Ok(())
            }
        };
        let (min, _, _) =
            crate::test_runner::minimize(&strategy, (60, 70), "seed".into(), &mut run);
        assert!(min.0 + min.1 >= 10, "minimum still fails");
        // One component collapses to 0, the other to the boundary.
        assert_eq!(min.0 + min.1, 10, "greedy shrink reaches the sum boundary");
    }

    #[test]
    fn rejected_candidates_do_not_count_as_shrinks() {
        // Candidates below 20 are rejected (prop_assume-style); the
        // minimiser must not walk through them to reach spurious minima.
        let strategy = 0i64..1000;
        let mut run = |v: &i64| {
            if *v < 20 {
                Err(TestCaseError::Reject)
            } else if *v >= 50 {
                Err(TestCaseError::fail("big"))
            } else {
                Ok(())
            }
        };
        let (min, _, _) = crate::test_runner::minimize(&strategy, 800, "seed".into(), &mut run);
        assert_eq!(min, 50);
    }

    #[test]
    #[should_panic(expected = "minimal counterexample: (37,")]
    fn macro_failure_reports_minimal_counterexample() {
        // End-to-end through the shrinking runner: the panic message
        // carries the shrunk value, not the raw seeded failure.
        let strategy = (0i64..1000,);
        crate::test_runner::run_cases_shrinking(
            "shim::shrink_e2e",
            &ProptestConfig::with_cases(64),
            &strategy,
            |&(x,): &(i64,)| {
                if x >= 37 {
                    Err(TestCaseError::fail("boundary"))
                } else {
                    Ok(())
                }
            },
        );
    }

    // Exercise the macro end to end, exactly as the workspace suites use it.
    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_asserts(x in 0i64..100, flag in any::<bool>()) {
            prop_assert!(x < 100, "x out of range: {}", x);
            prop_assert_eq!(flag, flag);
            prop_assert_ne!(x, x + 1);
            prop_assume!(x != 99);
            prop_assert!(x < 99);
        }

        #[test]
        fn macro_supports_tuples_and_select(
            (a, b) in (0u8..10, 0u8..10),
            pick in prop::sample::select(vec!["x", "y"]),
        ) {
            prop_assert!(a < 10 && b < 10);
            prop_assert!(pick == "x" || pick == "y");
        }
    }
}
